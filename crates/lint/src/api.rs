//! Phase 2, step 4: public-API snapshot gating (R14).
//!
//! The full `pub` surface of every workspace crate is serialized to one
//! canonical entry per item — `crate<TAB>kind<TAB>qualified-name<TAB>signature`
//! — and compared against the committed `scripts/api-baseline.txt`. Any
//! addition, removal, or signature change not reflected in the baseline is
//! an error, so API breaks become explicit diffs in review. The snapshot
//! is regenerated deliberately with `--write-api-baseline`.
//!
//! Entries are byte-sorted (the same order `LC_ALL=C sort` produces), so
//! the committed file is diff-stable and CI can cheaply self-check that it
//! is canonically ordered.

use crate::model::{Item, ItemKind, Vis, WorkspaceModel};
use crate::{Diagnostic, Rule};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// The live API snapshot: canonical entry line → `(file, line)` of the
/// defining item (for anchoring addition diagnostics).
pub type ApiEntries = BTreeMap<String, (String, usize)>;

/// Module path derived from a library file's location: `src/lib.rs` → ``,
/// `src/foo.rs` → `foo`, `src/foo/mod.rs` → `foo`, `src/foo/bar.rs` →
/// `foo::bar`.
fn module_path(file_path: &str) -> String {
    let Some(pos) = file_path.find("/src/") else { return String::new() };
    let rest = &file_path[pos + "/src/".len()..];
    let rest = rest.strip_suffix(".rs").unwrap_or(rest);
    let mut segments: Vec<&str> = rest.split('/').collect();
    if segments.last() == Some(&"lib") || segments.last() == Some(&"mod") {
        segments.pop();
    }
    segments.join("::")
}

/// Is this item part of the exported surface? `pub` items, plus methods
/// of `pub` traits (which inherit the trait's visibility without carrying
/// a `pub` keyword of their own).
fn is_api(item: &Item, pub_traits: &BTreeSet<String>) -> bool {
    if item.in_test || item.in_trait_impl || item.name.is_empty() || item.name == "_" {
        return false;
    }
    match item.vis {
        Vis::Pub => true,
        Vis::Restricted => false,
        Vis::Private => {
            item.kind == ItemKind::Fn && pub_traits.contains(&item.context)
        }
    }
}

/// Builds the live API snapshot from the workspace model. Only library
/// code contributes — binaries, tests, benches, and examples have no
/// exported surface.
pub fn api_entries(ws: &WorkspaceModel) -> ApiEntries {
    let mut entries = ApiEntries::new();
    for f in &ws.files {
        if !f.class.is_library || f.crate_name.is_empty() {
            continue;
        }
        // Full context paths of pub traits in this file, so their methods
        // inherit visibility.
        let mut pub_traits: BTreeSet<String> = BTreeSet::new();
        for item in &f.items {
            if item.kind == ItemKind::Trait && item.vis == Vis::Pub && !item.in_test {
                let path = if item.context.is_empty() {
                    item.name.clone()
                } else {
                    format!("{}::{}", item.context, item.name)
                };
                pub_traits.insert(path);
            }
        }
        let module = module_path(&f.path);
        for item in &f.items {
            if !is_api(item, &pub_traits) {
                continue;
            }
            let qualified = [module.as_str(), item.context.as_str(), item.name.as_str()]
                .iter()
                .filter(|s| !s.is_empty())
                .copied()
                .collect::<Vec<_>>()
                .join("::");
            let entry = format!(
                "{}\t{}\t{}\t{}",
                f.crate_name,
                item.kind.label(),
                qualified,
                item.signature
            );
            // First definition wins on collisions (path-sorted files, so
            // deterministic); identical re-definitions collapse anyway.
            entries.entry(entry).or_insert_with(|| (f.path.clone(), item.line));
        }
    }
    entries
}

/// Renders the snapshot as baseline-file content: a comment header plus
/// byte-sorted entries.
pub fn render_api_baseline(entries: &ApiEntries) -> String {
    let mut out = String::from(
        "# easytime-lint API baseline: one `crate<TAB>kind<TAB>path<TAB>signature` per line,\n\
         # byte-sorted (LC_ALL=C). Regenerate deliberately with --write-api-baseline after\n\
         # reviewing the diff: every change here is a public-API change.\n",
    );
    for entry in entries.keys() {
        out.push_str(entry);
        out.push('\n');
    }
    out
}

/// Runs R14: the committed baseline must byte-match the live surface and
/// be canonically sorted. Additions anchor at the defining item; stale
/// baseline entries anchor at their line in the baseline file.
pub fn check_api_baseline(
    entries: &ApiEntries,
    baseline_text: &str,
    baseline_path: &str,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut committed: BTreeMap<&str, usize> = BTreeMap::new();
    let mut prev: Option<&str> = None;
    for (idx, raw) in baseline_text.lines().enumerate() {
        let line = raw.trim_end_matches('\r');
        if line.trim().is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        if prev.is_some_and(|p| p >= line) {
            diags.push(Diagnostic::new(
                Path::new(baseline_path),
                idx + 1,
                Rule::ApiSnapshot,
                "API baseline is not in canonical (byte-sorted, duplicate-free) order; \
                 regenerate with --write-api-baseline"
                    .to_string(),
            ));
        }
        prev = Some(line);
        // Last occurrence wins for the line anchor; duplicates already
        // reported by the sort check above.
        committed.insert(line, idx + 1);
    }

    for (entry, (file, line)) in entries {
        if !committed.contains_key(entry.as_str()) {
            diags.push(Diagnostic::new(
                Path::new(file),
                *line,
                Rule::ApiSnapshot,
                format!(
                    "public API entry not in the committed baseline: `{}`; if this API \
                     change is intentional, regenerate {} with --write-api-baseline",
                    entry.replace('\t', " "),
                    baseline_path
                ),
            ));
        }
    }
    for (entry, line) in &committed {
        if !entries.contains_key(*entry) {
            diags.push(Diagnostic::new(
                Path::new(baseline_path),
                *line,
                Rule::ApiSnapshot,
                format!(
                    "baseline entry no longer matches any live public API: `{}`; if this \
                     removal or signature change is intentional, regenerate with \
                     --write-api-baseline",
                    entry.replace('\t', " ")
                ),
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{SourceEntry, WorkspaceModel};

    fn ws(files: &[(&str, &str)]) -> WorkspaceModel {
        let mut sources = vec![SourceEntry::new(
            "crates/demo/Cargo.toml",
            "[package]\nname = \"easytime-demo\"\n",
        )];
        for (path, text) in files {
            sources.push(SourceEntry::new(path.to_string(), text.to_string()));
        }
        WorkspaceModel::build(&sources)
    }

    #[test]
    fn snapshot_covers_pub_surface_only() {
        let model = ws(&[(
            "crates/demo/src/lib.rs",
            "/// Doc.\npub fn public(x: u32) -> u32 { x }\n\
             fn private() {}\n\
             pub(crate) fn internal() {}\n\
             /// Doc.\npub struct S;\n\
             impl S {\n\
             \x20   /// Doc.\n\
             \x20   pub fn method(&self) -> u32 { 0 }\n\
             \x20   fn helper(&self) {}\n\
             }\n\
             #[cfg(test)]\nmod tests { pub fn t() {} }\n",
        )]);
        let entries = api_entries(&model);
        let keys: Vec<&str> = entries.keys().map(String::as_str).collect();
        assert_eq!(
            keys,
            vec![
                "easytime-demo\tfn\tS::method\tpub fn method(&self) -> u32",
                "easytime-demo\tfn\tpublic\tpub fn public(x: u32) -> u32",
                "easytime-demo\tstruct\tS\tpub struct S",
            ]
        );
    }

    #[test]
    fn trait_methods_inherit_trait_visibility() {
        let model = ws(&[(
            "crates/demo/src/model.rs",
            "/// Doc.\npub trait Forecaster {\n\
             \x20   fn fit(&mut self, data: &[f64]);\n\
             }\n\
             trait Internal {\n\
             \x20   fn hidden(&self);\n\
             }\n",
        )]);
        let entries = api_entries(&model);
        let keys: Vec<&str> = entries.keys().map(String::as_str).collect();
        assert_eq!(
            keys,
            vec![
                "easytime-demo\tfn\tmodel::Forecaster::fit\tfn fit(&mut self, data: &[f64])",
                "easytime-demo\ttrait\tmodel::Forecaster\tpub trait Forecaster",
            ]
        );
    }

    #[test]
    fn module_paths_derive_from_file_location() {
        assert_eq!(module_path("crates/demo/src/lib.rs"), "");
        assert_eq!(module_path("crates/demo/src/foo.rs"), "foo");
        assert_eq!(module_path("crates/demo/src/foo/mod.rs"), "foo");
        assert_eq!(module_path("crates/demo/src/foo/bar.rs"), "foo::bar");
    }

    #[test]
    fn baseline_roundtrip_is_clean() {
        let model = ws(&[(
            "crates/demo/src/lib.rs",
            "/// Doc.\npub fn f(x: u32) -> u32 { x }\n",
        )]);
        let entries = api_entries(&model);
        let text = render_api_baseline(&entries);
        assert!(check_api_baseline(&entries, &text, "scripts/api-baseline.txt").is_empty());
    }

    #[test]
    fn additions_and_removals_are_both_flagged() {
        let model = ws(&[(
            "crates/demo/src/lib.rs",
            "/// Doc.\npub fn f(x: u32) -> u32 { x }\n",
        )]);
        let entries = api_entries(&model);
        let stale = "easytime-demo\tfn\tgone\tpub fn gone()\n";
        let diags = check_api_baseline(&entries, stale, "scripts/api-baseline.txt");
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.rule == Rule::ApiSnapshot));
        assert!(diags.iter().any(|d| d.message.contains("not in the committed baseline")
            && d.file.display().to_string() == "crates/demo/src/lib.rs"));
        assert!(diags.iter().any(|d| d.message.contains("no longer matches")
            && d.file.display().to_string() == "scripts/api-baseline.txt"));
    }

    #[test]
    fn unsorted_baseline_is_flagged() {
        let entries = ApiEntries::new();
        let text = "b\tfn\tx\tsig\na\tfn\ty\tsig\n";
        let diags = check_api_baseline(&entries, text, "scripts/api-baseline.txt");
        assert!(diags.iter().any(|d| d.message.contains("canonical")));
    }

    #[test]
    fn signature_changes_show_as_one_add_one_remove() {
        let model = ws(&[(
            "crates/demo/src/lib.rs",
            "/// Doc.\npub fn f(x: u64) -> u64 { x }\n",
        )]);
        let entries = api_entries(&model);
        let old = "easytime-demo\tfn\tf\tpub fn f(x: u32) -> u32\n";
        let diags = check_api_baseline(&entries, old, "scripts/api-baseline.txt");
        assert_eq!(diags.len(), 2);
    }
}
