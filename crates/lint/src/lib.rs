//! Token-level static analysis for the EasyTime workspace.
//!
//! `easytime-lint` lexes every workspace source into a real Rust token
//! stream ([`lexer`]), segments it into items ([`engine`]), and runs the
//! workspace invariant rules ([`rules`]) over it — no rustc plugin, no
//! external dependencies. Because rules see tokens rather than raw lines,
//! patterns inside string literals and comments can never false-positive,
//! and `#[cfg(test)]` exemption follows real item boundaries.
//!
//! The rules:
//!
//! * **R1 no-panic** — no `unwrap()` / `expect()` / `panic!`-family calls
//!   in library code. Tests, benches, examples, and binaries are exempt.
//! * **R2 dependency allowlist** — every `Cargo.toml` dependency must be a
//!   workspace crate; the build stays hermetic.
//! * **R3 lossy casts** — no lossy `as` casts in numeric hot paths
//!   (`linalg`, `eval/src/metrics.rs`, `models`).
//! * **R4 typed errors** — `pub fn` returning `Result` uses the crate's
//!   typed error, not `Box<dyn Error>`.
//! * **R5 no process exit** — `std::process::exit` only in binaries.
//! * **R6 NaN-safe ordering** — no `partial_cmp(..).unwrap()` /
//!   `.unwrap_or(Ordering::Equal)` comparators anywhere (tests included);
//!   float comparators must use `f64::total_cmp` so rankings stay
//!   deterministic under NaN.
//! * **R7 float equality** — no `==`/`!=` against non-zero float literals
//!   in the numeric crates (`linalg`, `models`, `eval`); zero guards
//!   (`x == 0.0`) are the accepted idiom.
//! * **R8 determinism** — no iteration over `HashMap`/`HashSet` in
//!   library code (order is nondeterministic; reports and SQL results must
//!   not depend on it), and no direct `Instant::now` / `SystemTime` reads
//!   outside the `easytime-clock` helper.
//! * **R9 pub-API docs** — every exported (`pub`) fn, struct, enum,
//!   trait, type, const, static, or union carries a `///` doc comment.
//! * **R11 no print macros** — no `println!` / `eprintln!` (or their
//!   non-newline forms) in library code; diagnostics go through
//!   `easytime-obs` events and console output belongs to `src/bin`.
//!   `easytime-obs` itself is exempt (it is the sanctioned sink).
//! * **R12 policy wildcard** — a `match` over a refit policy
//!   (scrutinee mentions `refit` / `refit_policy` / `RefitPolicy`) must
//!   not contain a top-level `_` arm: adding a `RefitPolicy` variant has
//!   to be a compile error at every dispatch site, not a silent
//!   fall-through into the wrong evaluation protocol.
//! * **R13 materialized transpose** — no `.transpose()` immediately feeding
//!   `.matmul(..)` / `.matvec(..)` in library code: the chain allocates and
//!   fills the transposed matrix only to stream through it once. Use the
//!   fused `Matrix::tr_matmul` / `Matrix::tr_matvec` kernels instead.
//!
//! The **semantic rules** (R14–R17) run over the cross-file workspace
//! [`model`] built in a second phase:
//!
//! * **R14 api-snapshot** — every crate's full `pub` surface is serialized
//!   to the committed `scripts/api-baseline.txt`; additions, removals, or
//!   signature changes not reflected there fail CI, so API breaks become
//!   explicit diffs in review. Regenerate deliberately with
//!   `--write-api-baseline`.
//! * **R15 crate-layering** — the declared layer policy (`rng`/`clock` at
//!   the bottom, the `easytime` facade at the top, `lint`/`bench` leaf-only)
//!   is enforced against the real Cargo dependency graph *and* against
//!   `easytime_*::` path tokens in library code, catching both manifest
//!   drift and path-qualified back-doors.
//! * **R16 lock-discipline** — lock-acquisition summaries are transitively
//!   closed over the call graph; any cycle between two lock identities and
//!   any lock held across a call that can reacquire the same lock is an
//!   error (the deadlock shapes a serving engine must never ship).
//! * **R17 dead-pub** — a `pub` item in a non-facade crate with zero
//!   cross-crate uses is a warning: demote it to `pub(crate)`, delete it,
//!   or annotate with `// lint: allow(dead-pub) — <why>`.
//!
//! The **effect rules** (R18–R20) run over per-function control-flow
//! sketches ([`cfg`]) and the interprocedural effect table ([`effects`])
//! in a third phase:
//!
//! * **R18 hot-path-alloc** — functions annotated `// lint: hot(<why>)`
//!   must not reach an allocating effect from loop position; one-time
//!   setup outside loops is exempt, and the hot list is bound to the
//!   runtime counting-allocator suites by a sync test.
//! * **R19 swallowed-result** — no discarded `Result` in library code:
//!   `let _ = call(…)`, whole-statement `….ok();`, and
//!   `call(…).unwrap_or_default()` on a `Result`-returning workspace call.
//! * **R20 lock-while-heavy** — no lock held across a call whose closed
//!   effect summary allocates or does file IO.
//!
//! Any rule can be waived for one statement with an escape-hatch comment
//! carrying a mandatory justification:
//!
//! ```text
//! // lint: allow(float-ordering) — SQL semantics: NaN comparisons yield NULL
//! ```
//!
//! A bare marker is itself a violation (R0). Diagnostics print as
//! `file:line: R# message`; `--format json` emits machine-readable records
//! and `--baseline` suppresses a committed set of known findings so CI
//! fails only on *new* violations (R10).

use std::fmt;
use std::path::{Path, PathBuf};

pub mod api;
pub mod cfg;
pub mod effects;
pub mod engine;
pub mod lexer;
pub mod locks;
pub mod model;
pub mod resolve;
pub mod rules;

/// Which invariant a diagnostic belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// R1: no panicking calls in library code.
    NoPanic,
    /// R2: dependencies restricted to workspace crates.
    DepAllowlist,
    /// R3: no lossy `as` casts in numeric hot paths.
    LossyCast,
    /// R4: public `Result` APIs use typed errors.
    TypedError,
    /// R5: `std::process::exit` only in binaries.
    ProcessExit,
    /// R6: no NaN-unsafe `partial_cmp` comparators; use `total_cmp`.
    FloatOrdering,
    /// R7: no float `==`/`!=` against non-zero literals in numeric crates.
    FloatEq,
    /// R8: no unordered hash-container iteration in library code.
    HashOrder,
    /// R8: wall-clock reads only inside the `easytime-clock` helper.
    WallClock,
    /// R9: exported items carry `///` docs.
    MissingDocs,
    /// R11: no `println!`/`eprintln!` in library code; use `easytime-obs`.
    PrintMacro,
    /// R12: no `_` arm in `match`es over a refit policy.
    PolicyWildcard,
    /// R13: no materialized `.transpose()` feeding `.matmul`/`.matvec`.
    MaterializedTranspose,
    /// R14: the committed API baseline matches the live `pub` surface.
    ApiSnapshot,
    /// R15: crate dependencies respect the declared layer policy.
    CrateLayering,
    /// R16: no lock-order cycles or same-lock reacquisition while held.
    LockDiscipline,
    /// R17: no `pub` items without any cross-crate user.
    DeadPub,
    /// R18: hot-path functions reach no allocation from loop position.
    HotPathAlloc,
    /// R19: no discarded `Result` in library code.
    SwallowedResult,
    /// R20: no lock held across an allocating or IO-doing call.
    LockWhileHeavy,
    /// A malformed escape-hatch annotation.
    BadAnnotation,
}

impl Rule {
    /// Short rule code used in diagnostics (`R1`…`R13`; `R0` for malformed
    /// annotations). `HashOrder` and `WallClock` are both facets of R8.
    pub fn code(self) -> &'static str {
        match self {
            Rule::NoPanic => "R1",
            Rule::DepAllowlist => "R2",
            Rule::LossyCast => "R3",
            Rule::TypedError => "R4",
            Rule::ProcessExit => "R5",
            Rule::FloatOrdering => "R6",
            Rule::FloatEq => "R7",
            Rule::HashOrder | Rule::WallClock => "R8",
            Rule::MissingDocs => "R9",
            Rule::PrintMacro => "R11",
            Rule::PolicyWildcard => "R12",
            Rule::MaterializedTranspose => "R13",
            Rule::ApiSnapshot => "R14",
            Rule::CrateLayering => "R15",
            Rule::LockDiscipline => "R16",
            Rule::DeadPub => "R17",
            Rule::HotPathAlloc => "R18",
            Rule::SwallowedResult => "R19",
            Rule::LockWhileHeavy => "R20",
            Rule::BadAnnotation => "R0",
        }
    }

    /// The name accepted by `// lint: allow(<name>)` for this rule.
    pub(crate) fn allow_name(self) -> &'static str {
        match self {
            Rule::NoPanic => "panic",
            Rule::DepAllowlist => "dependency",
            Rule::LossyCast => "lossy-cast",
            Rule::TypedError => "boxed-error",
            Rule::ProcessExit => "process-exit",
            Rule::FloatOrdering => "float-ordering",
            Rule::FloatEq => "float-eq",
            Rule::HashOrder => "hash-order",
            Rule::WallClock => "wall-clock",
            Rule::MissingDocs => "missing-docs",
            Rule::PrintMacro => "print",
            Rule::PolicyWildcard => "policy-wildcard",
            Rule::MaterializedTranspose => "materialized-transpose",
            Rule::ApiSnapshot => "api-snapshot",
            Rule::CrateLayering => "crate-layering",
            Rule::LockDiscipline => "lock-discipline",
            Rule::DeadPub => "dead-pub",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::SwallowedResult => "swallowed-result",
            Rule::LockWhileHeavy => "lock-while-heavy",
            Rule::BadAnnotation => "",
        }
    }
}

/// One row of the shared rule-documentation table: the single source both
/// `--explain <RULE>` and the README rule table are generated from, so the
/// binary and the docs cannot drift (a generator-check test asserts the
/// README contains exactly these rows).
#[derive(Debug, Clone, Copy)]
pub struct RuleDoc {
    /// Rule code (`R1` … `R17`).
    pub code: &'static str,
    /// Escape-hatch name accepted by `// lint: allow(<name>)`.
    pub allow: &'static str,
    /// One-line summary of what the rule enforces (README cell).
    pub enforces: &'static str,
    /// Why the rule exists (printed by `--explain`).
    pub rationale: &'static str,
    /// Where the rule applies (printed by `--explain`).
    pub scope: &'static str,
}

/// The rule-documentation table, ordered by rule number. R8 appears once
/// with both of its hatch names; R10 is the reporting layer itself and has
/// no row (it cannot be violated, only configured).
pub const RULE_DOCS: &[RuleDoc] = &[
    RuleDoc {
        code: "R1",
        allow: "panic",
        enforces: "no unwrap()/expect()/panic!-family calls in library code",
        rationale: "a forecasting library must surface failures as typed errors the caller can \
                    handle; a panic in one model aborts a whole evaluation sweep",
        scope: "library code (tests, benches, examples, and binaries are exempt)",
    },
    RuleDoc {
        code: "R2",
        allow: "dependency",
        enforces: "every Cargo.toml dependency is a workspace crate",
        rationale: "the build stays hermetic and std-only: no supply-chain drift, no version \
                    skew, reproducible from a clean checkout with no network",
        scope: "all dependency sections of every manifest, including [workspace.dependencies]",
    },
    RuleDoc {
        code: "R3",
        allow: "lossy-cast",
        enforces: "no lossy `as` casts in numeric hot paths",
        rationale: "silent truncation in kernel code corrupts forecasts; conversions must be \
                    explicit and checked at the boundary",
        scope: "linalg/src, models/src, and eval/src/metrics.rs library code",
    },
    RuleDoc {
        code: "R4",
        allow: "boxed-error",
        enforces: "pub fns returning Result use the crate's typed error, not Box<dyn Error>",
        rationale: "typed errors keep failure modes enumerable at crate boundaries so callers \
                    can match instead of string-inspecting",
        scope: "public functions in library code",
    },
    RuleDoc {
        code: "R5",
        allow: "process-exit",
        enforces: "std::process::exit only in binaries",
        rationale: "a library that exits the process steals the host's shutdown path and skips \
                    destructors; only a binary owns the exit code",
        scope: "library code (binaries are exempt)",
    },
    RuleDoc {
        code: "R6",
        allow: "float-ordering",
        enforces: "no NaN-unsafe partial_cmp(..).unwrap()-style comparators; use total_cmp",
        rationale: "one NaN in a ranking either panics or silently reorders results; \
                    f64::total_cmp keeps leaderboards deterministic",
        scope: "everywhere, tests included",
    },
    RuleDoc {
        code: "R7",
        allow: "float-eq",
        enforces: "no ==/!= against non-zero float literals in numeric crates",
        rationale: "exact float equality against computed values is almost always a logic bug; \
                    zero guards (x == 0.0) are the accepted idiom",
        scope: "linalg, models, and eval library code",
    },
    RuleDoc {
        code: "R8",
        allow: "hash-order / wall-clock",
        enforces: "no HashMap/HashSet iteration in library code; no direct wall-clock reads \
                   outside easytime-clock",
        rationale: "hash order and wall time are the two ambient nondeterminism sources; both \
                    must flow through deterministic choke points (BTree iteration, the Clock)",
        scope: "library code (easytime-clock itself is exempt from the clock facet)",
    },
    RuleDoc {
        code: "R9",
        allow: "missing-docs",
        enforces: "every exported (pub) item carries a /// doc comment",
        rationale: "the pub surface is the contract; an undocumented export is an API the next \
                    reader has to reverse-engineer",
        scope: "pub items in library code (pub(crate) and test items are exempt)",
    },
    RuleDoc {
        code: "R11",
        allow: "print",
        enforces: "no println!/eprintln! (or print!/eprint!) in library code",
        rationale: "console output belongs to binaries; diagnostics go through easytime-obs so \
                    they are capturable, filterable, and deterministic in tests",
        scope: "library code (easytime-obs itself is the sanctioned sink)",
    },
    RuleDoc {
        code: "R12",
        allow: "policy-wildcard",
        enforces: "no `_` arm in a match over a refit policy",
        rationale: "adding a RefitPolicy variant must be a compile error at every dispatch \
                    site, not a silent fall-through into the wrong evaluation protocol",
        scope: "matches whose scrutinee mentions refit / refit_policy / RefitPolicy",
    },
    RuleDoc {
        code: "R13",
        allow: "materialized-transpose",
        enforces: "no .transpose() immediately feeding .matmul(..)/.matvec(..)",
        rationale: "the chain allocates and fills a transposed matrix only to stream through it \
                    once; the fused tr_matmul/tr_matvec kernels skip the copy",
        scope: "library code",
    },
    RuleDoc {
        code: "R14",
        allow: "api-snapshot",
        enforces: "the committed scripts/api-baseline.txt matches the live pub surface",
        rationale: "API additions, removals, and signature changes become explicit diffs in \
                    review instead of silent drift; regenerate deliberately with \
                    --write-api-baseline",
        scope: "pub items in library code of every workspace crate",
    },
    RuleDoc {
        code: "R15",
        allow: "crate-layering",
        enforces: "crate dependencies respect the declared layer policy (rng/clock at the \
                   bottom, the easytime facade at the top, lint/bench leaf-only)",
        rationale: "layering is what keeps the dependency graph acyclic and the low layers \
                    reusable; both Cargo.toml edges and easytime_*:: path tokens are checked \
                    so manifest drift and path-qualified back-doors are caught alike",
        scope: "normal dependencies of every workspace crate plus library-code path tokens \
                (dev-dependencies are exempt: cargo permits dev cycles)",
    },
    RuleDoc {
        code: "R16",
        allow: "lock-discipline",
        enforces: "no cycles in the lock-order graph and no lock held across a call that can \
                   reacquire the same lock",
        rationale: "these are the two deadlock shapes a multi-tenant serving engine must never \
                    ship; the rule closes lock-acquisition summaries transitively over the \
                    call graph so the hold can be any number of calls away",
        scope: "non-test functions, with call resolution restricted to each crate's \
                transitive dependencies",
    },
    RuleDoc {
        code: "R17",
        allow: "dead-pub",
        enforces: "no pub item in a non-facade crate with zero cross-crate users",
        rationale: "an export nobody imports is surface area without a contract: demote it to \
                    pub(crate), delete it, or justify why it is deliberately speculative",
        scope: "pub items in library code of every crate except the easytime facade; uses in \
                the crate's own bins/tests/benches count",
    },
    RuleDoc {
        code: "R18",
        allow: "hot-path-alloc",
        enforces: "functions annotated `// lint: hot(<why>)` reach no allocating effect from \
                   loop position",
        rationale: "the steady-state serving loops must not allocate per iteration; the rule \
                    closes allocation effects over the call graph with loop-position \
                    granularity, so one-time setup outside loops stays legal while a \
                    Vec::new three calls deep inside the loop is caught — and a sync test \
                    binds the hot list to the runtime counting-allocator suites",
        scope: "non-test functions targeted by a `// lint: hot(<why>)` marker",
    },
    RuleDoc {
        code: "R19",
        allow: "swallowed-result",
        enforces: "no discarded Result in library code (`let _ =`, statement-position `.ok()`, \
                   `unwrap_or_default()` on a Result-returning call)",
        rationale: "a silently dropped Result turns a typed failure into a wrong answer; the \
                    rule resolves the discarded call against the workspace signature table so \
                    only real Result returns fire",
        scope: "library code (tests, benches, examples, and binaries are exempt)",
    },
    RuleDoc {
        code: "R20",
        allow: "lock-while-heavy",
        enforces: "no lock held across a call whose closed effect summary allocates or does \
                   file IO",
        rationale: "heap allocation and IO under a lock stretch the critical section by \
                    unbounded latency, starving every other tenant of the serving engine; \
                    the held-region analysis is the R16 one, the heaviness verdict comes \
                    from the transitive effect closure",
        scope: "non-test functions, with call resolution restricted to each crate's \
                transitive dependencies",
    },
];

/// Looks up the documentation row for a rule code (case-insensitive,
/// `R8` and `r8` both work).
pub fn rule_doc(code: &str) -> Option<&'static RuleDoc> {
    RULE_DOCS.iter().find(|d| d.code.eq_ignore_ascii_case(code))
}

/// Renders the README rule-table rows from [`RULE_DOCS`] — the generator
/// side of the docs-drift check (`--explain` and the README share it).
pub fn readme_rule_rows() -> String {
    let mut out = String::new();
    for d in RULE_DOCS {
        let allow = d
            .allow
            .split(" / ")
            .map(|a| format!("`{a}`"))
            .collect::<Vec<_>>()
            .join(" / ");
        let enforces = d.enforces.split_whitespace().collect::<Vec<_>>().join(" ");
        out.push_str(&format!("| {} | {} | {} |\n", d.code, allow, enforces));
    }
    out
}

/// How serious a diagnostic is. `Error` fails the build; `Warn` is
/// reported but does not affect the exit code (R10 severity config).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the build.
    Error,
    /// Reported, does not fail the build.
    Warn,
}

impl Severity {
    /// Lower-case name used in text and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
        }
    }

    /// Parses `error` / `warn` (case-insensitive).
    pub fn parse(s: &str) -> Option<Severity> {
        match s.to_ascii_lowercase().as_str() {
            "error" | "deny" => Some(Severity::Error),
            "warn" | "warning" => Some(Severity::Warn),
            _ => None,
        }
    }
}

/// One violation, anchored to a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// File the violation is in (workspace-relative where possible).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Violated rule.
    pub rule: Rule,
    /// Severity (defaults to `Error`; overridable via `--severity`).
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic with the default (error) severity.
    pub fn new(file: &Path, line: usize, rule: Rule, message: String) -> Diagnostic {
        Diagnostic { file: file.to_path_buf(), line, rule, severity: Severity::Error, message }
    }

    /// The baseline-suppression key: file, rule code, and message —
    /// deliberately excluding the line number so unrelated edits that
    /// shift lines do not invalidate a committed baseline.
    pub(crate) fn baseline_key(&self) -> String {
        format!(
            "{}\t{}\t{}",
            self.file.display().to_string().replace('\\', "/"),
            self.rule.code(),
            self.message
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {} {}", self.file.display(), self.line, self.rule.code(), self.message)
    }
}

/// How a source file is classified for rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Library code under `crates/<name>/src` (not a binary target).
    pub is_library: bool,
    /// Binary target (`src/bin/**` or `src/main.rs`).
    pub is_bin: bool,
    /// Test / bench / example target.
    pub is_test_like: bool,
    /// Numeric hot path subject to R3.
    pub is_hot_numeric: bool,
    /// Float-sensitive crate subject to R7 (`linalg`, `models`, `eval`).
    pub is_float_path: bool,
}

/// Classifies a workspace-relative path (`crates/<name>/...`).
pub fn classify(rel_path: &Path) -> FileClass {
    let p = rel_path.to_string_lossy().replace('\\', "/");
    let is_bin = p.contains("/src/bin/") || p.ends_with("/src/main.rs");
    let is_test_like =
        p.contains("/tests/") || p.contains("/benches/") || p.contains("/examples/");
    let is_library = p.contains("/src/") && !is_bin && !is_test_like;
    let is_hot_numeric = is_library
        && (p.starts_with("crates/linalg/src/")
            || p.starts_with("crates/models/src/")
            || p == "crates/eval/src/metrics.rs");
    let is_float_path = is_library
        && (p.starts_with("crates/linalg/src/")
            || p.starts_with("crates/models/src/")
            || p.starts_with("crates/eval/src/"));
    FileClass { is_library, is_bin, is_test_like, is_hot_numeric, is_float_path }
}

/// Runs all token-level rules (R1, R3–R9) over one Rust source file.
pub fn lint_rust_source(rel_path: &Path, source: &str) -> Vec<Diagnostic> {
    let class = classify(rel_path);
    let sf = engine::SourceFile::parse(source);
    let mut diags = rules::lint_tokens(rel_path, class, &sf);
    diags.sort_by(|a, b| (a.line, a.rule.code()).cmp(&(b.line, b.rule.code())));
    diags.dedup();
    diags
}

/// Runs R2 over one `Cargo.toml`. Every dependency in any dependency
/// section must be a workspace crate (`easytime*`).
pub(crate) fn lint_manifest(rel_path: &Path, source: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut in_dep_section = false;
    for (idx, raw) in source.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_dep_section = matches!(
                line,
                "[dependencies]"
                    | "[dev-dependencies]"
                    | "[build-dependencies]"
                    | "[workspace.dependencies]"
            ) || line.starts_with("[target.") && line.contains("dependencies");
            continue;
        }
        if !in_dep_section || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(name) = line.split(['=', '.', ' ']).next() else {
            continue;
        };
        let name = name.trim();
        if name.is_empty() {
            continue;
        }
        if !is_allowed_dependency(name) {
            diags.push(Diagnostic::new(
                rel_path,
                idx + 1,
                Rule::DepAllowlist,
                format!(
                    "external dependency `{name}` is not in the allowlist; the build must stay \
                     hermetic (std-only) — vendor the functionality into a workspace crate"
                ),
            ));
        }
    }
    diags
}

/// The dependency allowlist: workspace crates only. Extend deliberately —
/// each addition breaks the hermetic-build guarantee.
pub(crate) fn is_allowed_dependency(name: &str) -> bool {
    name.starts_with("easytime")
}

/// Reads every `.rs` and `Cargo.toml` file under `root/crates` plus the
/// root `Cargo.toml` (the `[workspace.dependencies]` chokepoint) into
/// path-sorted [`model::SourceEntry`] values — the single input both
/// analysis phases run from.
pub fn collect_workspace_sources(root: &Path) -> std::io::Result<Vec<model::SourceEntry>> {
    let mut files = Vec::new();
    collect_files(&root.join("crates"), &mut files)?;
    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        files.push(root_manifest);
    }
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for file in files {
        let rel = file.strip_prefix(root).unwrap_or(&file);
        let text = std::fs::read_to_string(&file)?;
        sources.push(model::SourceEntry::new(rel.to_string_lossy().into_owned(), text));
    }
    sources.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(sources)
}

/// Phase 1: runs the per-file rules (R1–R13) over in-memory sources.
/// Entries are processed in path order regardless of input order.
pub fn lint_sources(sources: &[model::SourceEntry]) -> Vec<Diagnostic> {
    let mut sorted: Vec<&model::SourceEntry> = sources.iter().collect();
    sorted.sort_by(|a, b| a.path.cmp(&b.path));
    let mut diags = Vec::new();
    for entry in sorted {
        let rel = Path::new(&entry.path);
        if entry.path.ends_with("Cargo.toml") {
            diags.extend(lint_manifest(rel, &entry.text));
        } else if entry.path.ends_with(".rs") {
            diags.extend(lint_rust_source(rel, &entry.text));
        }
    }
    diags
}

/// Size summary of the semantic pass, serialized to
/// `results/lint_semantic.json` by the CLI. Every count is derived from
/// the path-sorted workspace model, so the rendering is byte-identical
/// across runs and file-discovery orders.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SemanticStats {
    /// Workspace crates with a parsed manifest.
    pub crates: usize,
    /// Rust files in the model.
    pub files: usize,
    /// Item-table rows across all files.
    pub items: usize,
    /// `pub` (unrestricted) items in non-test library code.
    pub pub_items: usize,
    /// Entries in the live API snapshot.
    pub api_entries: usize,
    /// Workspace-internal `[dependencies]` edges.
    pub dep_edges: usize,
    /// Distinct crate→crate reference pairs from `easytime_*::` tokens.
    pub use_edges: usize,
    /// Call-name entries across all function summaries.
    pub call_sites: usize,
    /// Lock-acquisition sites across all function summaries.
    pub lock_sites: usize,
    /// Distinct lock identities (`crate.field`).
    pub lock_identities: usize,
    /// Edges in the transitively-closed lock-order graph.
    pub lock_order_edges: usize,
    /// Local effect sites across all function summaries.
    pub effect_sites: usize,
    /// Discarded-result candidate sites across all function summaries.
    pub discard_sites: usize,
    /// Functions targeted by a `// lint: hot(<why>)` marker.
    pub hot_fns: usize,
    /// Emitted diagnostics per semantic rule code (R0 included).
    pub rule_counts: Vec<(String, usize)>,
}

/// Renders [`SemanticStats`] as a stable JSON object. Schema version 2
/// added the phase-3 effect counts (`effect_sites`, `discard_sites`,
/// `hot_fns`) and the R18–R20 rule buckets.
pub fn semantic_stats_to_json(s: &SemanticStats) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema_version\": 2,\n");
    out.push_str(&format!("  \"crates\": {},\n", s.crates));
    out.push_str(&format!("  \"files\": {},\n", s.files));
    out.push_str(&format!("  \"items\": {},\n", s.items));
    out.push_str(&format!("  \"pub_items\": {},\n", s.pub_items));
    out.push_str(&format!("  \"api_entries\": {},\n", s.api_entries));
    out.push_str(&format!("  \"dep_edges\": {},\n", s.dep_edges));
    out.push_str(&format!("  \"use_edges\": {},\n", s.use_edges));
    out.push_str(&format!("  \"call_sites\": {},\n", s.call_sites));
    out.push_str(&format!("  \"lock_sites\": {},\n", s.lock_sites));
    out.push_str(&format!("  \"lock_identities\": {},\n", s.lock_identities));
    out.push_str(&format!("  \"lock_order_edges\": {},\n", s.lock_order_edges));
    out.push_str(&format!("  \"effect_sites\": {},\n", s.effect_sites));
    out.push_str(&format!("  \"discard_sites\": {},\n", s.discard_sites));
    out.push_str(&format!("  \"hot_fns\": {},\n", s.hot_fns));
    out.push_str("  \"rules\": {");
    for (i, (code, count)) in s.rule_counts.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {}", json_escape(code), count));
    }
    out.push_str("}\n}\n");
    out
}

/// Phase 2+3: builds the workspace model and runs the semantic rules
/// (R15–R17, plus R14 when `api_baseline` carries the committed baseline
/// text and its display path) and the effect rules (R18–R20). Returns the
/// diagnostics sorted by `(file, line, code, message)` and the size stats.
pub fn analyze_workspace(
    sources: &[model::SourceEntry],
    api_baseline: Option<(&str, &str)>,
) -> (Vec<Diagnostic>, SemanticStats) {
    let ws = model::WorkspaceModel::build(sources);
    let entries = api::api_entries(&ws);
    let graph = locks::build_lock_graph(&ws);
    let effect_table = effects::build_effect_table(&ws);

    let mut diags = Vec::new();
    diags.extend(resolve::check_layering(&ws));
    diags.extend(resolve::check_dead_pub(&ws));
    diags.extend(locks::check_locks(&ws, &graph));
    diags.extend(effects::check_effects(&ws, &effect_table));
    if let Some((path, text)) = api_baseline {
        diags.extend(api::check_api_baseline(&entries, text, path));
    }
    diags.sort_by(|a, b| {
        (a.file.display().to_string(), a.line, a.rule.code(), a.message.as_str()).cmp(&(
            b.file.display().to_string(),
            b.line,
            b.rule.code(),
            b.message.as_str(),
        ))
    });
    diags.dedup();

    let mut rule_counts: std::collections::BTreeMap<&str, usize> = [
        ("R14", 0),
        ("R15", 0),
        ("R16", 0),
        ("R17", 0),
        ("R18", 0),
        ("R19", 0),
        ("R20", 0),
        ("R0", 0),
    ]
    .into_iter()
    .collect();
    for d in &diags {
        *rule_counts.entry(d.rule.code()).or_insert(0) += 1;
    }
    let stats = SemanticStats {
        crates: ws.crates.len(),
        files: ws.files.len(),
        items: ws.item_count(),
        pub_items: ws.pub_item_count(),
        api_entries: entries.len(),
        dep_edges: resolve::dep_edge_count(&ws),
        use_edges: resolve::use_edge_count(&ws),
        call_sites: ws.files.iter().flat_map(|f| &f.fns).map(|f| f.calls.len()).sum(),
        lock_sites: ws.lock_site_count(),
        lock_identities: graph.identities.len(),
        lock_order_edges: graph.edges.len(),
        effect_sites: ws.files.iter().flat_map(|f| &f.fns).map(|f| f.effects.len()).sum(),
        discard_sites: ws.files.iter().flat_map(|f| &f.fns).map(|f| f.discards.len()).sum(),
        hot_fns: effect_table.fns.values().filter(|fe| fe.hot).count(),
        rule_counts: rule_counts.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
    };
    (diags, stats)
}

/// Phase 3 artifact: builds the workspace model and renders the closed
/// effect table as schema-versioned JSON (the `--effects-out` payload).
/// Input order does not matter — the model sorts sources by path and the
/// table is BTree-keyed, so the bytes are identical for any discovery
/// order.
pub fn workspace_effect_table_json(sources: &[model::SourceEntry]) -> String {
    let ws = model::WorkspaceModel::build(sources);
    effects::effect_table_to_json(&effects::build_effect_table(&ws))
}

fn collect_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_files(&path, out)?;
        } else if name == "Cargo.toml" || name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Applies `--severity CODE=LEVEL` overrides to a diagnostic batch.
/// Unknown codes are ignored (the CLI validates separately).
pub fn apply_severities(diags: &mut [Diagnostic], overrides: &[(String, Severity)]) {
    for d in diags.iter_mut() {
        for (code, sev) in overrides {
            if d.rule.code().eq_ignore_ascii_case(code) {
                d.severity = *sev;
            }
        }
    }
}

/// A committed set of known findings that CI tolerates: any diagnostic
/// whose [`Diagnostic::baseline_key`] appears here is suppressed, so only
/// *new* violations fail the build (R10).
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Remaining suppression keys (a multiset: one entry per tolerated
    /// occurrence).
    entries: Vec<String>,
}

impl Baseline {
    /// Parses the baseline file format: one [`Diagnostic::baseline_key`]
    /// per line; blank lines and `#` comments are ignored.
    pub fn parse(text: &str) -> Baseline {
        let entries = text
            .lines()
            .map(str::trim_end)
            .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
            .map(str::to_string)
            .collect();
        Baseline { entries }
    }

    /// Splits diagnostics into (kept, suppressed-count). Each baseline
    /// entry suppresses at most one matching diagnostic.
    pub fn apply(&self, diags: Vec<Diagnostic>) -> (Vec<Diagnostic>, usize) {
        let mut remaining = self.entries.clone();
        let mut kept = Vec::new();
        let mut suppressed = 0;
        for d in diags {
            let key = d.baseline_key();
            if let Some(pos) = remaining.iter().position(|e| *e == key) {
                remaining.swap_remove(pos);
                suppressed += 1;
            } else {
                kept.push(d);
            }
        }
        (kept, suppressed)
    }

    /// Renders diagnostics as baseline-file content (for `--write-baseline`).
    pub fn render(diags: &[Diagnostic]) -> String {
        let mut out = String::from(
            "# easytime-lint baseline: one `file<TAB>rule<TAB>message` key per line.\n\
             # Entries here are tolerated by CI; new violations still fail the build.\n",
        );
        for d in diags {
            out.push_str(&d.baseline_key());
            out.push('\n');
        }
        out
    }
}

/// Renders diagnostics as a JSON array of
/// `{file, line, rule, allow, severity, message}` records (R10,
/// `--format json`) for CI artifacts.
pub fn diagnostics_to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"allow\": \"{}\", \
             \"severity\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.file.display().to_string().replace('\\', "/")),
            d.line,
            d.rule.code(),
            d.rule.allow_name(),
            d.severity.as_str(),
            json_escape(&d.message)
        ));
    }
    out.push_str(if diags.is_empty() { "]\n" } else { "\n]\n" });
    out
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_path() -> PathBuf {
        PathBuf::from("crates/demo/src/lib.rs")
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<Rule> {
        diags.iter().map(|d| d.rule).collect()
    }

    // ---- R1 ----

    #[test]
    fn r1_flags_unwrap_expect_and_panic_in_library_code() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   \x20   let a = x.unwrap();\n\
                   \x20   let b = x.expect(\"present\");\n\
                   \x20   if a == 0 { panic!(\"zero\"); }\n\
                   \x20   a + b\n\
                   }\n";
        let diags = lint_rust_source(&lib_path(), src);
        assert_eq!(rules_of(&diags), vec![Rule::NoPanic, Rule::NoPanic, Rule::NoPanic]);
        assert_eq!(diags[0].line, 2);
        assert_eq!(diags[1].line, 3);
        assert_eq!(diags[2].line, 4);
    }

    #[test]
    fn r1_ignores_unwrap_or_variants_and_expect_err() {
        let src = "fn f(x: Option<u32>, r: Result<u32, ()>) -> u32 {\n\
                   \x20   r.expect_err(\"nope\");\n\
                   \x20   x.unwrap_or(1) + x.unwrap_or_else(|| 2) + x.unwrap_or_default()\n\
                   }\n";
        assert!(lint_rust_source(&lib_path(), src).is_empty());
    }

    #[test]
    fn r1_catches_multi_line_expect_calls() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   \x20   x.expect\n\
                   \x20       (\"present across lines\")\n\
                   }\n";
        let diags = lint_rust_source(&lib_path(), src);
        assert_eq!(rules_of(&diags), vec![Rule::NoPanic]);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn r1_skips_strings_comments_and_test_modules() {
        let src = "fn f() {\n\
                   \x20   let _s = \"contains .unwrap() and panic!\";\n\
                   \x20   // a comment mentioning .expect(\"x\") is fine\n\
                   \x20   /* block with panic!(\"boom\") */\n\
                   }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   \x20   #[test]\n\
                   \x20   fn t() { Some(1).unwrap(); panic!(\"fine in tests\"); }\n\
                   }\n";
        assert!(lint_rust_source(&lib_path(), src).is_empty());
    }

    #[test]
    fn r1_exempts_test_bench_example_and_bin_paths() {
        let src = "fn main() { Some(1).unwrap(); }\n";
        for p in [
            "crates/demo/tests/t.rs",
            "crates/demo/benches/b.rs",
            "crates/demo/examples/e.rs",
            "crates/demo/src/bin/tool.rs",
            "crates/demo/src/main.rs",
        ] {
            assert!(
                lint_rust_source(Path::new(p), src).is_empty(),
                "{p} should be exempt from R1"
            );
        }
    }

    #[test]
    fn r1_escape_hatch_with_justification_is_accepted() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   \x20   // lint: allow(panic) — x is checked non-empty two lines up\n\
                   \x20   x.unwrap()\n\
                   }\n";
        assert!(lint_rust_source(&lib_path(), src).is_empty());
    }

    #[test]
    fn r1_escape_hatch_spanning_a_comment_block_is_accepted() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   \x20   // lint: allow(panic) — the construction above\n\
                   \x20   // guarantees the option is populated.\n\
                   \x20   x.unwrap()\n\
                   }\n";
        assert!(lint_rust_source(&lib_path(), src).is_empty());
    }

    #[test]
    fn r1_bare_escape_hatch_without_justification_is_flagged() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   \x20   // lint: allow(panic)\n\
                   \x20   x.unwrap()\n\
                   }\n";
        let diags = lint_rust_source(&lib_path(), src);
        assert_eq!(rules_of(&diags), vec![Rule::BadAnnotation]);
    }

    // ---- R2 ----

    #[test]
    fn r2_accepts_workspace_only_manifests() {
        let toml = "[package]\nname = \"easytime-demo\"\n\n[dependencies]\n\
                    easytime-linalg.workspace = true\neasytime-data = { path = \"../data\" }\n";
        assert!(lint_manifest(Path::new("crates/demo/Cargo.toml"), toml).is_empty());
    }

    #[test]
    fn r2_flags_external_dependencies_in_any_section() {
        let toml = "[dependencies]\nrand = \"0.8\"\n\n[dev-dependencies]\nproptest = \"1\"\n\n\
                    [workspace.dependencies]\ncriterion = \"0.5\"\n";
        let diags = lint_manifest(Path::new("Cargo.toml"), toml);
        assert_eq!(rules_of(&diags), vec![Rule::DepAllowlist; 3]);
        assert!(diags[0].message.contains("rand"));
        assert!(diags[1].message.contains("proptest"));
        assert!(diags[2].message.contains("criterion"));
    }

    #[test]
    fn r2_ignores_non_dependency_sections() {
        let toml = "[package]\nname = \"x\"\n\n[features]\nextra = []\n\n[lints]\nworkspace = true\n";
        assert!(lint_manifest(Path::new("crates/demo/Cargo.toml"), toml).is_empty());
    }

    // ---- R3 ----

    #[test]
    fn r3_flags_lossy_casts_only_in_hot_paths() {
        let src = "fn f(x: f64, n: usize) -> usize {\n\
                   \x20   let a = x as usize;\n\
                   \x20   let b = n as f64;\n\
                   \x20   a + b as usize\n\
                   }\n";
        let hot = lint_rust_source(Path::new("crates/linalg/src/solve.rs"), src);
        assert_eq!(rules_of(&hot), vec![Rule::LossyCast, Rule::LossyCast]);
        assert_eq!(hot[0].line, 2);
        assert_eq!(hot[1].line, 4);
        // The same code outside a hot path is untouched by R3.
        let cold = lint_rust_source(Path::new("crates/qa/src/session.rs"), src);
        assert!(cold.is_empty());
    }

    #[test]
    fn r3_allows_widening_to_f64_and_honours_annotations() {
        let src = "fn f(n: usize) -> f64 {\n\
                   \x20   // lint: allow(lossy-cast) — index bounded by window length ≤ 2^32\n\
                   \x20   let small = n as u32;\n\
                   \x20   small as f64 + n as f64\n\
                   }\n";
        assert!(lint_rust_source(Path::new("crates/models/src/arima.rs"), src).is_empty());
    }

    // ---- R4 ----

    #[test]
    fn r4_flags_boxed_dyn_error_returns() {
        let src = "/// Documented, but badly typed.\n\
                   pub fn f() -> Result<u32, Box<dyn std::error::Error>> {\n\
                   \x20   Ok(1)\n\
                   }\n";
        let diags = lint_rust_source(&lib_path(), src);
        assert_eq!(rules_of(&diags), vec![Rule::TypedError]);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn r4_catches_multi_line_signatures_and_accepts_typed_errors() {
        let bad = "/// Documented.\n\
                   pub fn f(\n\
                   \x20   x: u32,\n\
                   ) -> Result<u32, Box<dyn std::error::Error + Send + Sync>>\n\
                   {\n\
                   \x20   Ok(x)\n\
                   }\n";
        assert_eq!(rules_of(&lint_rust_source(&lib_path(), bad)), vec![Rule::TypedError]);
        let good = "/// Documented.\n\
                    pub fn f() -> Result<u32, DemoError> { Ok(1) }\n\
                    fn private() -> Result<u32, Box<dyn std::error::Error>> { Ok(1) }\n";
        // Private helpers are out of scope for R4.
        assert!(lint_rust_source(&lib_path(), good).is_empty());
    }

    // ---- R5 ----

    #[test]
    fn r5_flags_process_exit_outside_binaries() {
        let src = "fn f() { std::process::exit(1); }\n";
        let diags = lint_rust_source(&lib_path(), src);
        assert_eq!(rules_of(&diags), vec![Rule::ProcessExit]);
        // Binaries may exit.
        assert!(lint_rust_source(Path::new("crates/demo/src/bin/tool.rs"), src).is_empty());
        assert!(lint_rust_source(Path::new("crates/demo/src/main.rs"), src).is_empty());
    }

    // ---- R6 ----

    #[test]
    fn r6_flags_nan_unsafe_comparators() {
        let src = "fn f(xs: &mut Vec<f64>) {\n\
                   \x20   xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
                   \x20   xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));\n\
                   \x20   xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or_else(|| Ordering::Equal));\n\
                   }\n";
        let diags = lint_rust_source(&lib_path(), src);
        // The `.unwrap()` comparator legitimately trips both R1 and R6.
        assert_eq!(
            rules_of(&diags),
            vec![Rule::NoPanic, Rule::FloatOrdering, Rule::FloatOrdering, Rule::FloatOrdering]
        );
        assert_eq!(diags[1].line, 2);
        assert_eq!(diags[2].line, 3);
        assert_eq!(diags[3].line, 4);
    }

    #[test]
    fn r6_accepts_bare_partial_cmp_and_total_cmp() {
        let src = "fn f(a: f64, b: f64) -> Option<std::cmp::Ordering> {\n\
                   \x20   let _sorted = |xs: &mut Vec<f64>| xs.sort_by(|x, y| x.total_cmp(y));\n\
                   \x20   a.partial_cmp(&b)\n\
                   }\n";
        assert!(lint_rust_source(&lib_path(), src).is_empty());
    }

    #[test]
    fn r6_applies_inside_tests_and_bins_too() {
        let src = "fn main() {\n\
                   \x20   let mut v = vec![1.0, f64::NAN];\n\
                   \x20   v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
                   }\n";
        for p in ["crates/demo/tests/t.rs", "crates/demo/src/bin/tool.rs"] {
            let diags = lint_rust_source(Path::new(p), src);
            assert_eq!(rules_of(&diags), vec![Rule::FloatOrdering], "{p}");
        }
    }

    #[test]
    fn r6_honours_escape_hatch_and_skips_unwrap_or_without_equal() {
        let src = "fn f(a: f64, b: f64) -> bool {\n\
                   \x20   // lint: allow(float-ordering) — SQL semantics want None on NaN\n\
                   \x20   let _ = a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal);\n\
                   \x20   a.partial_cmp(&b).map(|o| o.is_lt()).unwrap_or(false)\n\
                   }\n";
        assert!(lint_rust_source(&lib_path(), src).is_empty());
    }

    #[test]
    fn r6_ignores_occurrences_in_strings_and_comments() {
        let src = "fn f() {\n\
                   \x20   let _s = \"a.partial_cmp(b).unwrap()\";\n\
                   \x20   // a.partial_cmp(b).unwrap_or(Ordering::Equal)\n\
                   }\n";
        assert!(lint_rust_source(&lib_path(), src).is_empty());
    }

    // ---- R7 ----

    #[test]
    fn r7_flags_non_zero_float_equality_in_numeric_crates() {
        let src = "fn f(x: f64) -> bool {\n\
                   \x20   x == 1.5 || x != 2.0e3\n\
                   }\n";
        let diags = lint_rust_source(Path::new("crates/linalg/src/stats.rs"), src);
        assert_eq!(rules_of(&diags), vec![Rule::FloatEq, Rule::FloatEq]);
        // The same code outside linalg/models/eval is untouched.
        assert!(lint_rust_source(Path::new("crates/qa/src/answer.rs"), src).is_empty());
    }

    #[test]
    fn r7_accepts_zero_guards_and_annotated_sites() {
        let src = "fn f(x: f64) -> bool {\n\
                   \x20   let a = x == 0.0;\n\
                   \x20   let b = x != 0.0 && x != -0.0;\n\
                   \x20   // lint: allow(float-eq) — sentinel produced verbatim upstream\n\
                   \x20   let c = x == 99.5;\n\
                   \x20   a && b && c && x <= 1.5\n\
                   }\n";
        assert!(lint_rust_source(Path::new("crates/models/src/naive.rs"), src).is_empty());
    }

    // ---- R8 ----

    #[test]
    fn r8_flags_hash_container_iteration_in_library_code() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<String, u32>) -> u32 {\n\
                   \x20   let mut total = 0;\n\
                   \x20   for (_k, v) in m.iter() { total += v; }\n\
                   \x20   total\n\
                   }\n";
        let diags = lint_rust_source(&lib_path(), src);
        assert_eq!(rules_of(&diags), vec![Rule::HashOrder]);
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn r8_accepts_keyed_access_btree_and_annotated_iteration() {
        let src = "use std::collections::{BTreeMap, HashMap};\n\
                   fn f(m: &HashMap<String, u32>, b: &BTreeMap<String, u32>) -> u32 {\n\
                   \x20   let mut total = *m.get(\"x\").unwrap_or(&0);\n\
                   \x20   for (_k, v) in b.iter() { total += v; }\n\
                   \x20   // lint: allow(hash-order) — the sum below is order-independent\n\
                   \x20   for (_k, v) in m.iter() { total += v; }\n\
                   \x20   total\n\
                   }\n";
        assert!(lint_rust_source(&lib_path(), src).is_empty());
    }

    #[test]
    fn r8_flags_direct_wall_clock_reads_outside_the_clock_crate() {
        let src = "use std::time::Instant;\n\
                   fn f() -> std::time::Instant {\n\
                   \x20   Instant::now()\n\
                   }\n";
        let diags = lint_rust_source(&lib_path(), src);
        assert_eq!(rules_of(&diags), vec![Rule::WallClock]);
        // The designated helper and binaries are exempt.
        assert!(lint_rust_source(Path::new("crates/clock/src/lib.rs"), src).is_empty());
        assert!(lint_rust_source(Path::new("crates/demo/src/bin/tool.rs"), src).is_empty());
        let sys = "fn f() -> u64 { let _t = SystemTime::now(); 0 }\n";
        let diags = lint_rust_source(&lib_path(), sys);
        assert_eq!(rules_of(&diags), vec![Rule::WallClock]);
    }

    // ---- R9 ----

    #[test]
    fn r9_flags_undocumented_pub_items() {
        let src = "pub fn f() {}\n\
                   pub struct S;\n\
                   pub enum E { A }\n\
                   pub const C: u32 = 1;\n";
        let diags = lint_rust_source(&lib_path(), src);
        assert_eq!(rules_of(&diags), vec![Rule::MissingDocs; 4]);
        assert!(diags[0].message.contains("`f`"));
        assert!(diags[1].message.contains("`S`"));
    }

    #[test]
    fn r9_accepts_documented_restricted_and_annotated_items() {
        let src = "/// Documented.\n\
                   pub fn f() {}\n\
                   /// Documented struct.\n\
                   #[derive(Debug)]\n\
                   pub struct S;\n\
                   pub(crate) fn internal() {}\n\
                   #[doc = \"generated docs\"]\n\
                   pub struct G;\n\
                   // lint: allow(missing-docs) — exported for the macro below only\n\
                   pub struct M;\n\
                   pub use std::cmp::Ordering;\n\
                   fn private() {}\n";
        assert!(lint_rust_source(&lib_path(), src).is_empty());
    }

    #[test]
    fn r9_skips_struct_fields_and_test_items() {
        let src = "/// Documented.\n\
                   pub struct S {\n\
                   \x20   pub x: u32,\n\
                   \x20   pub y: u32,\n\
                   }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   \x20   pub fn helper() {}\n\
                   }\n";
        assert!(lint_rust_source(&lib_path(), src).is_empty());
    }

    // ---- R10: severity, baseline, JSON ----

    #[test]
    fn severity_overrides_apply_by_code() {
        let mut diags = vec![
            Diagnostic::new(&lib_path(), 1, Rule::MissingDocs, "m".into()),
            Diagnostic::new(&lib_path(), 2, Rule::NoPanic, "p".into()),
        ];
        apply_severities(&mut diags, &[("R9".into(), Severity::Warn)]);
        assert_eq!(diags[0].severity, Severity::Warn);
        assert_eq!(diags[1].severity, Severity::Error);
        assert_eq!(Severity::parse("warn"), Some(Severity::Warn));
        assert_eq!(Severity::parse("ERROR"), Some(Severity::Error));
        assert_eq!(Severity::parse("nope"), None);
    }

    #[test]
    fn baseline_suppresses_known_findings_once() {
        let d1 = Diagnostic::new(&lib_path(), 3, Rule::NoPanic, "first".into());
        let d2 = Diagnostic::new(&lib_path(), 9, Rule::NoPanic, "first".into());
        let d3 = Diagnostic::new(&lib_path(), 5, Rule::FloatEq, "other".into());
        let text = Baseline::render(&[d1.clone()]);
        let baseline = Baseline::parse(&text);
        let (kept, suppressed) = baseline.apply(vec![d1, d2, d3]);
        // The single entry suppresses one of the two identical findings
        // (line numbers are deliberately not part of the key).
        assert_eq!(suppressed, 1);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn empty_baseline_keeps_everything() {
        let baseline = Baseline::parse("# just comments\n\n");
        let d = Diagnostic::new(&lib_path(), 1, Rule::NoPanic, "m".into());
        let (kept, suppressed) = baseline.apply(vec![d]);
        assert_eq!((kept.len(), suppressed), (1, 0));
    }

    #[test]
    fn json_output_is_escaped_and_structured() {
        let d = Diagnostic::new(
            &lib_path(),
            7,
            Rule::FloatOrdering,
            "uses `partial_cmp(..)` with \"quotes\"\nand newline".into(),
        );
        let json = diagnostics_to_json(&[d]);
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"rule\": \"R6\""));
        assert!(json.contains("\"allow\": \"float-ordering\""));
        assert!(json.contains("\"severity\": \"error\""));
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\\n"));
        assert_eq!(diagnostics_to_json(&[]), "[]\n");
    }

    // ---- infrastructure ----

    #[test]
    fn classify_partitions_the_tree() {
        assert!(classify(Path::new("crates/linalg/src/solve.rs")).is_hot_numeric);
        assert!(classify(Path::new("crates/eval/src/metrics.rs")).is_hot_numeric);
        assert!(!classify(Path::new("crates/eval/src/pipeline.rs")).is_hot_numeric);
        assert!(classify(Path::new("crates/eval/src/pipeline.rs")).is_float_path);
        assert!(!classify(Path::new("crates/qa/src/session.rs")).is_float_path);
        assert!(classify(Path::new("crates/core/src/bin/easytime.rs")).is_bin);
        assert!(classify(Path::new("crates/core/tests/integration.rs")).is_test_like);
        assert!(classify(Path::new("crates/db/src/parser.rs")).is_library);
    }

    #[test]
    fn diagnostics_render_file_line_rule() {
        let d = Diagnostic::new(
            Path::new("crates/demo/src/lib.rs"),
            7,
            Rule::NoPanic,
            "`unwrap` in library code".into(),
        );
        assert_eq!(format!("{d}"), "crates/demo/src/lib.rs:7: R1 `unwrap` in library code");
    }
}
