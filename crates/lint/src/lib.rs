//! Std-only static analysis for the EasyTime workspace.
//!
//! `easytime-lint` parses the workspace's Rust sources line by line — no
//! rustc plugin, no external dependencies — and enforces the repo
//! invariants that keep the build hermetic and the library panic-free:
//!
//! * **R1 no-panic** — no `unwrap()` / `expect()` / `panic!` (or
//!   `unreachable!` / `todo!` / `unimplemented!`) in library code under
//!   `crates/*/src`. Tests, benches, examples, and binaries are exempt.
//! * **R2 dependency allowlist** — every `Cargo.toml` dependency must be a
//!   workspace crate; nothing external may sneak back in.
//! * **R3 lossy casts** — no lossy `as` casts in the numeric hot paths
//!   (`linalg`, `eval/src/metrics.rs`, `models`); `as f64` widening is
//!   allowed.
//! * **R4 typed errors** — every `pub fn` returning `Result` must use the
//!   crate's typed error, not `Box<dyn Error>`.
//! * **R5 no process exit** — `std::process::exit` only in binary targets.
//!
//! Any rule can be waived for one statement with an escape-hatch comment:
//!
//! ```text
//! // lint: allow(panic) — why this site provably cannot fire in practice
//! ```
//!
//! The marker must carry a justification (trailing text on the marker line
//! or the surrounding comment block); a bare marker is itself a violation.
//! Diagnostics are reported as `file:line: R# message` and the binary exits
//! non-zero when any violation is found.

use std::fmt;
use std::path::{Path, PathBuf};

/// Which invariant a diagnostic belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// R1: no panicking calls in library code.
    NoPanic,
    /// R2: dependencies restricted to workspace crates.
    DepAllowlist,
    /// R3: no lossy `as` casts in numeric hot paths.
    LossyCast,
    /// R4: public `Result` APIs use typed errors.
    TypedError,
    /// R5: `std::process::exit` only in binaries.
    ProcessExit,
    /// A malformed escape-hatch annotation.
    BadAnnotation,
}

impl Rule {
    /// Short rule code used in diagnostics (`R1`…`R5`).
    pub fn code(self) -> &'static str {
        match self {
            Rule::NoPanic => "R1",
            Rule::DepAllowlist => "R2",
            Rule::LossyCast => "R3",
            Rule::TypedError => "R4",
            Rule::ProcessExit => "R5",
            Rule::BadAnnotation => "R0",
        }
    }

    /// The name accepted by `// lint: allow(<name>)` for this rule.
    pub fn allow_name(self) -> &'static str {
        match self {
            Rule::NoPanic => "panic",
            Rule::DepAllowlist => "dependency",
            Rule::LossyCast => "lossy-cast",
            Rule::TypedError => "boxed-error",
            Rule::ProcessExit => "process-exit",
            Rule::BadAnnotation => "",
        }
    }
}

/// One violation, anchored to a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// File the violation is in (workspace-relative where possible).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Violated rule.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file.display(),
            self.line,
            self.rule.code(),
            self.message
        )
    }
}

/// How a source file is classified for rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Library code under `crates/<name>/src` (not a binary target).
    pub is_library: bool,
    /// Binary target (`src/bin/**` or `src/main.rs`).
    pub is_bin: bool,
    /// Test / bench / example target.
    pub is_test_like: bool,
    /// Numeric hot path subject to R3.
    pub is_hot_numeric: bool,
}

/// Classifies a workspace-relative path (`crates/<name>/...`).
pub fn classify(rel_path: &Path) -> FileClass {
    let p = rel_path.to_string_lossy().replace('\\', "/");
    let is_bin = p.contains("/src/bin/") || p.ends_with("/src/main.rs");
    let is_test_like =
        p.contains("/tests/") || p.contains("/benches/") || p.contains("/examples/");
    let is_library = p.contains("/src/") && !is_bin && !is_test_like;
    let is_hot_numeric = is_library
        && (p.starts_with("crates/linalg/src/")
            || p.starts_with("crates/models/src/")
            || p == "crates/eval/src/metrics.rs");
    FileClass { is_library, is_bin, is_test_like, is_hot_numeric }
}

/// One source line split into code and comment channels.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct LineInfo {
    /// Code with comments removed and string/char literal contents blanked.
    code: String,
    /// Comment text (both `//` and `/* */` bodies) on the line.
    comment: String,
}

/// Splits Rust source into per-line code/comment channels.
///
/// String and char literal *contents* are blanked (replaced by spaces) in
/// the code channel so pattern matching cannot trip on `".unwrap()"`
/// appearing inside a literal. Handles nested block comments, raw strings
/// (`r#"…"#`), byte strings, and lifetime-vs-char-literal ambiguity.
fn split_lines(source: &str) -> Vec<LineInfo> {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let mut out = Vec::new();
    let mut cur = LineInfo::default();
    let mut state = State::Code;
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            out.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    cur.code.push('"');
                    state = State::Str;
                    i += 1;
                    continue;
                }
                // Raw / byte string starts: r", r#", br", b".
                if (c == 'r' || c == 'b') && !prev_is_ident(&cur.code) {
                    let mut j = i;
                    if chars.get(j) == Some(&'b') && chars.get(j + 1) == Some(&'r') {
                        j += 2;
                    } else if c == 'r' || (c == 'b' && chars.get(j + 1) == Some(&'"')) {
                        j += 1;
                    } else {
                        j = usize::MAX;
                    }
                    if j != usize::MAX {
                        let mut hashes = 0;
                        while chars.get(j + hashes) == Some(&'#') {
                            hashes += 1;
                        }
                        if chars.get(j + hashes) == Some(&'"') {
                            for _ in i..=(j + hashes) {
                                cur.code.push(' ');
                            }
                            cur.code.push('"');
                            state = if c == 'b' && chars.get(i + 1) != Some(&'r') && hashes == 0 {
                                State::Str
                            } else {
                                State::RawStr(hashes)
                            };
                            i = j + hashes + 1;
                            continue;
                        }
                    }
                }
                if c == '\'' {
                    // Lifetime (`'a`) or char literal (`'x'`, `'\n'`)?
                    let is_char_lit = match chars.get(i + 1) {
                        Some('\\') => true,
                        Some(&n) => chars.get(i + 2) == Some(&'\'') && n != '\'',
                        None => false,
                    };
                    if is_char_lit {
                        cur.code.push('\'');
                        state = State::Char;
                        i += 1;
                        continue;
                    }
                    cur.code.push(c);
                    i += 1;
                    continue;
                }
                cur.code.push(c);
                i += 1;
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    cur.code.push(' ');
                    if chars.get(i + 1).is_some() {
                        cur.code.push(' ');
                    }
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        cur.code.push('"');
                        for _ in 0..hashes {
                            cur.code.push(' ');
                        }
                        state = State::Code;
                        i += 1 + hashes;
                        continue;
                    }
                }
                cur.code.push(' ');
                i += 1;
            }
            State::Char => {
                if c == '\\' {
                    cur.code.push(' ');
                    if chars.get(i + 1).is_some() {
                        cur.code.push(' ');
                    }
                    i += 2;
                } else if c == '\'' {
                    cur.code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        out.push(cur);
    }
    out
}

fn prev_is_ident(code: &str) -> bool {
    code.chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Marks lines inside `#[cfg(test)]` items (attribute through closing
/// brace). Returns one flag per line; `true` = exempt from library rules.
fn cfg_test_regions(lines: &[LineInfo]) -> Vec<bool> {
    let mut exempt = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let code = lines[i].code.trim();
        if code.starts_with("#[cfg(test)]") || code.contains("#[cfg(test)]") {
            exempt[i] = true;
            // Skip any further attributes, then exempt the annotated item.
            let mut j = i + 1;
            while j < lines.len() && lines[j].code.trim().starts_with("#[") {
                exempt[j] = true;
                j += 1;
            }
            // Find the item's opening brace (or a brace-less item's `;`).
            let mut depth: i64 = 0;
            let mut opened = false;
            while j < lines.len() {
                exempt[j] = true;
                for c in lines[j].code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                if !opened && lines[j].code.contains(';') {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    exempt
}

/// True when line `idx` (0-based) carries, or sits under, an escape-hatch
/// annotation for `rule`. A marker without justification text is reported
/// through `bad` instead.
fn allowed_by_annotation(
    lines: &[LineInfo],
    idx: usize,
    rule: Rule,
    file: &Path,
    bad: &mut Vec<Diagnostic>,
) -> bool {
    let marker = format!("lint: allow({})", rule.allow_name());
    // Gather the annotation block: the line itself plus the contiguous run
    // of comment-only lines immediately above.
    let mut block: Vec<(usize, &str)> = vec![(idx, lines[idx].comment.as_str())];
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        if l.code.trim().is_empty() && !l.comment.trim().is_empty() {
            block.push((j, l.comment.as_str()));
        } else {
            break;
        }
    }
    let marker_line = block.iter().find(|(_, c)| c.contains(&marker));
    let Some(&(mline, _)) = marker_line else {
        return false;
    };
    // Justification: any comment text in the block beyond the marker itself.
    let total: String = block.iter().map(|(_, c)| *c).collect::<Vec<_>>().join(" ");
    let rest = total.replacen(&marker, "", 1);
    let justification: String =
        rest.chars().filter(|c| c.is_alphanumeric()).collect();
    if justification.len() < 8 {
        bad.push(Diagnostic {
            file: file.to_path_buf(),
            line: mline + 1,
            rule: Rule::BadAnnotation,
            message: format!(
                "escape hatch `lint: allow({})` requires a written justification",
                rule.allow_name()
            ),
        });
    }
    true
}

/// Returns positions where a token appears in `code` *as a call* — i.e.
/// preceded by a non-identifier char and followed (after optional
/// whitespace) by an opening paren or end-of-line.
fn find_macro_calls(code: &str, name: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(name) {
        let start = from + pos;
        let before_ok = start == 0 || {
            let b = bytes[start - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok {
            return true;
        }
        from = start + name.len();
    }
    false
}

/// Checks whether `.expect` / `.unwrap` style method is called on a line,
/// tolerating the open paren landing on the next line.
fn method_call_spans_lines(code: &str, next_code: Option<&str>, method: &str) -> bool {
    let needle = format!(".{method}");
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(&needle) {
        let start = from + pos;
        let after = start + needle.len();
        // Reject longer identifiers, e.g. `.expect_err`, `.unwrap_or`.
        if bytes.get(after).is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_') {
            from = after;
            continue;
        }
        let tail = code[after..].trim_start();
        if tail.starts_with('(') {
            return true;
        }
        if tail.is_empty() {
            // Multi-line call: `.expect(` split across lines.
            if next_code.map(str::trim_start).is_some_and(|t| t.starts_with('(')) {
                return true;
            }
        }
        from = after;
    }
    false
}

const PANIC_MACROS: [&str; 4] = ["panic!", "unreachable!", "todo!", "unimplemented!"];
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

/// Integer and narrowing targets flagged by R3 (widening `as f64` is fine).
const LOSSY_TARGETS: [&str; 11] =
    ["f32", "usize", "isize", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8"];

/// Runs R1, R3, R4, and R5 over one Rust source file.
pub fn lint_rust_source(rel_path: &Path, source: &str) -> Vec<Diagnostic> {
    let class = classify(rel_path);
    let lines = split_lines(source);
    let test_region = cfg_test_regions(&lines);
    let mut diags = Vec::new();
    let mut bad_annotations = Vec::new();

    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if code.trim().is_empty() {
            continue;
        }
        let next_code = lines.get(idx + 1).map(|l| l.code.as_str());
        let in_test = test_region[idx];

        // R1 — no panicking constructs in library code.
        if class.is_library && !in_test {
            let mut hit: Option<&str> = None;
            for m in PANIC_MACROS {
                if find_macro_calls(code, m) {
                    hit = Some(m);
                    break;
                }
            }
            if hit.is_none() {
                for m in PANIC_METHODS {
                    if method_call_spans_lines(code, next_code, m) {
                        hit = Some(m);
                        break;
                    }
                }
            }
            if let Some(what) = hit {
                if !allowed_by_annotation(&lines, idx, Rule::NoPanic, rel_path, &mut bad_annotations)
                {
                    diags.push(Diagnostic {
                        file: rel_path.to_path_buf(),
                        line: idx + 1,
                        rule: Rule::NoPanic,
                        message: format!(
                            "`{what}` in library code; return the crate's typed error instead \
                             (or annotate with `// lint: allow(panic) — <why>`)"
                        ),
                    });
                }
            }
        }

        // R3 — lossy `as` casts in numeric hot paths.
        if class.is_hot_numeric && !in_test {
            if let Some(target) = lossy_cast_target(code) {
                if !allowed_by_annotation(
                    &lines,
                    idx,
                    Rule::LossyCast,
                    rel_path,
                    &mut bad_annotations,
                ) {
                    diags.push(Diagnostic {
                        file: rel_path.to_path_buf(),
                        line: idx + 1,
                        rule: Rule::LossyCast,
                        message: format!(
                            "potentially lossy `as {target}` cast in a numeric hot path; use a \
                             checked conversion or annotate with `// lint: allow(lossy-cast) — <why>`"
                        ),
                    });
                }
            }
        }

        // R5 — no process exit outside binaries.
        if !class.is_bin && code.contains("process::exit") {
            if !allowed_by_annotation(&lines, idx, Rule::ProcessExit, rel_path, &mut bad_annotations)
            {
                diags.push(Diagnostic {
                    file: rel_path.to_path_buf(),
                    line: idx + 1,
                    rule: Rule::ProcessExit,
                    message: "`std::process::exit` outside `src/bin`; return an error and let \
                              the binary decide the exit code"
                        .into(),
                });
            }
        }
    }

    // R4 — public Result-returning APIs must use typed errors. Signatures
    // may span lines, so join from `pub fn` to the body brace.
    if class.is_library {
        let mut idx = 0;
        while idx < lines.len() {
            if test_region[idx] {
                idx += 1;
                continue;
            }
            let code = lines[idx].code.trim_start();
            let is_pub_fn = code.starts_with("pub fn ")
                || code.starts_with("pub(crate) fn ")
                || code.starts_with("pub async fn ")
                || code.starts_with("pub const fn ");
            if is_pub_fn {
                let mut sig = String::new();
                let mut j = idx;
                while j < lines.len() && j < idx + 24 {
                    let c = &lines[j].code;
                    if let Some(brace) = c.find('{') {
                        sig.push_str(&c[..brace]);
                        break;
                    }
                    sig.push_str(c);
                    sig.push(' ');
                    if c.trim_end().ends_with(';') {
                        break;
                    }
                    j += 1;
                }
                if let Some(arrow) = sig.find("->") {
                    let ret = &sig[arrow..];
                    if ret.contains("Box<dyn") && ret.contains("Error") {
                        if !allowed_by_annotation(
                            &lines,
                            idx,
                            Rule::TypedError,
                            rel_path,
                            &mut bad_annotations,
                        ) {
                            diags.push(Diagnostic {
                                file: rel_path.to_path_buf(),
                                line: idx + 1,
                                rule: Rule::TypedError,
                                message: "public API returns `Box<dyn Error>`; use the crate's \
                                          typed error enum"
                                    .into(),
                            });
                        }
                    }
                }
            }
            idx += 1;
        }
    }

    diags.extend(bad_annotations);
    diags.sort_by(|a, b| a.line.cmp(&b.line));
    diags.dedup();
    diags
}

fn lossy_cast_target(code: &str) -> Option<&'static str> {
    let mut from = 0;
    while let Some(pos) = code[from..].find(" as ") {
        let start = from + pos;
        let after = &code[start + 4..];
        let target: String = after
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        for t in LOSSY_TARGETS {
            if target == t {
                return Some(t);
            }
        }
        from = start + 4;
    }
    None
}

/// Runs R2 over one `Cargo.toml`. Every dependency in any dependency
/// section must be a workspace crate (`easytime*`).
pub fn lint_manifest(rel_path: &Path, source: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut in_dep_section = false;
    for (idx, raw) in source.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_dep_section = matches!(
                line,
                "[dependencies]"
                    | "[dev-dependencies]"
                    | "[build-dependencies]"
                    | "[workspace.dependencies]"
            ) || line.starts_with("[target.") && line.contains("dependencies");
            continue;
        }
        if !in_dep_section || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(name) = line.split(['=', '.', ' ']).next() else {
            continue;
        };
        let name = name.trim();
        if name.is_empty() {
            continue;
        }
        if !is_allowed_dependency(name) {
            diags.push(Diagnostic {
                file: rel_path.to_path_buf(),
                line: idx + 1,
                rule: Rule::DepAllowlist,
                message: format!(
                    "external dependency `{name}` is not in the allowlist; the build must stay \
                     hermetic (std-only) — vendor the functionality into a workspace crate"
                ),
            });
        }
    }
    diags
}

/// The dependency allowlist: workspace crates only. Extend deliberately —
/// each addition breaks the hermetic-build guarantee.
pub fn is_allowed_dependency(name: &str) -> bool {
    name.starts_with("easytime")
}

/// Lints every `.rs` and `Cargo.toml` file under `root/crates`, returning
/// all diagnostics plus the number of files checked.
pub fn lint_workspace(root: &Path) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    let mut files = Vec::new();
    collect_files(&root.join("crates"), &mut files)?;
    files.sort();
    let mut diags = Vec::new();
    let mut checked = 0;
    for file in files {
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        let source = std::fs::read_to_string(&file)?;
        checked += 1;
        if rel.file_name().is_some_and(|n| n == "Cargo.toml") {
            diags.extend(lint_manifest(&rel, &source));
        } else {
            diags.extend(lint_rust_source(&rel, &source));
        }
    }
    Ok((diags, checked))
}

fn collect_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_files(&path, out)?;
        } else if name == "Cargo.toml" || name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_path() -> PathBuf {
        PathBuf::from("crates/demo/src/lib.rs")
    }

    fn rules(diags: &[Diagnostic]) -> Vec<Rule> {
        diags.iter().map(|d| d.rule).collect()
    }

    // ---- R1 ----

    #[test]
    fn r1_flags_unwrap_expect_and_panic_in_library_code() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n\
                   \x20   let a = x.unwrap();\n\
                   \x20   let b = x.expect(\"present\");\n\
                   \x20   if a == 0 { panic!(\"zero\"); }\n\
                   \x20   a + b\n\
                   }\n";
        let diags = lint_rust_source(&lib_path(), src);
        assert_eq!(rules(&diags), vec![Rule::NoPanic, Rule::NoPanic, Rule::NoPanic]);
        assert_eq!(diags[0].line, 2);
        assert_eq!(diags[1].line, 3);
        assert_eq!(diags[2].line, 4);
    }

    #[test]
    fn r1_ignores_unwrap_or_variants_and_expect_err() {
        let src = "pub fn f(x: Option<u32>, r: Result<u32, ()>) -> u32 {\n\
                   \x20   r.expect_err(\"nope\");\n\
                   \x20   x.unwrap_or(1) + x.unwrap_or_else(|| 2) + x.unwrap_or_default()\n\
                   }\n";
        assert!(lint_rust_source(&lib_path(), src).is_empty());
    }

    #[test]
    fn r1_catches_multi_line_expect_calls() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n\
                   \x20   x.expect\n\
                   \x20       (\"present across lines\")\n\
                   }\n";
        let diags = lint_rust_source(&lib_path(), src);
        assert_eq!(rules(&diags), vec![Rule::NoPanic]);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn r1_skips_strings_comments_and_test_modules() {
        let src = "pub fn f() {\n\
                   \x20   let _s = \"contains .unwrap() and panic!\";\n\
                   \x20   // a comment mentioning .expect(\"x\") is fine\n\
                   \x20   /* block with panic!(\"boom\") */\n\
                   }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   \x20   #[test]\n\
                   \x20   fn t() { Some(1).unwrap(); panic!(\"fine in tests\"); }\n\
                   }\n";
        assert!(lint_rust_source(&lib_path(), src).is_empty());
    }

    #[test]
    fn r1_exempts_test_bench_example_and_bin_paths() {
        let src = "fn main() { Some(1).unwrap(); }\n";
        for p in [
            "crates/demo/tests/t.rs",
            "crates/demo/benches/b.rs",
            "crates/demo/examples/e.rs",
            "crates/demo/src/bin/tool.rs",
            "crates/demo/src/main.rs",
        ] {
            assert!(
                lint_rust_source(Path::new(p), src).is_empty(),
                "{p} should be exempt from R1"
            );
        }
    }

    #[test]
    fn r1_escape_hatch_with_justification_is_accepted() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n\
                   \x20   // lint: allow(panic) — x is checked non-empty two lines up\n\
                   \x20   x.unwrap()\n\
                   }\n";
        assert!(lint_rust_source(&lib_path(), src).is_empty());
    }

    #[test]
    fn r1_escape_hatch_spanning_a_comment_block_is_accepted() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n\
                   \x20   // lint: allow(panic) — the construction above\n\
                   \x20   // guarantees the option is populated.\n\
                   \x20   x.unwrap()\n\
                   }\n";
        assert!(lint_rust_source(&lib_path(), src).is_empty());
    }

    #[test]
    fn r1_bare_escape_hatch_without_justification_is_flagged() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n\
                   \x20   // lint: allow(panic)\n\
                   \x20   x.unwrap()\n\
                   }\n";
        let diags = lint_rust_source(&lib_path(), src);
        assert_eq!(rules(&diags), vec![Rule::BadAnnotation]);
    }

    // ---- R2 ----

    #[test]
    fn r2_accepts_workspace_only_manifests() {
        let toml = "[package]\nname = \"easytime-demo\"\n\n[dependencies]\n\
                    easytime-linalg.workspace = true\neasytime-data = { path = \"../data\" }\n";
        assert!(lint_manifest(Path::new("crates/demo/Cargo.toml"), toml).is_empty());
    }

    #[test]
    fn r2_flags_external_dependencies_in_any_section() {
        let toml = "[dependencies]\nrand = \"0.8\"\n\n[dev-dependencies]\nproptest = \"1\"\n\n\
                    [workspace.dependencies]\ncriterion = \"0.5\"\n";
        let diags = lint_manifest(Path::new("Cargo.toml"), toml);
        assert_eq!(rules(&diags), vec![Rule::DepAllowlist; 3]);
        assert!(diags[0].message.contains("rand"));
        assert!(diags[1].message.contains("proptest"));
        assert!(diags[2].message.contains("criterion"));
    }

    #[test]
    fn r2_ignores_non_dependency_sections() {
        let toml = "[package]\nname = \"x\"\n\n[features]\nextra = []\n\n[lints]\nworkspace = true\n";
        assert!(lint_manifest(Path::new("crates/demo/Cargo.toml"), toml).is_empty());
    }

    // ---- R3 ----

    #[test]
    fn r3_flags_lossy_casts_only_in_hot_paths() {
        let src = "pub fn f(x: f64, n: usize) -> usize {\n\
                   \x20   let a = x as usize;\n\
                   \x20   let b = n as f64;\n\
                   \x20   a + b as usize\n\
                   }\n";
        let hot = lint_rust_source(Path::new("crates/linalg/src/solve.rs"), src);
        assert_eq!(rules(&hot), vec![Rule::LossyCast, Rule::LossyCast]);
        assert_eq!(hot[0].line, 2);
        assert_eq!(hot[1].line, 4);
        // The same code outside a hot path is untouched by R3.
        let cold = lint_rust_source(Path::new("crates/qa/src/session.rs"), src);
        assert!(cold.is_empty());
    }

    #[test]
    fn r3_allows_widening_to_f64_and_honours_annotations() {
        let src = "pub fn f(n: usize) -> f64 {\n\
                   \x20   // lint: allow(lossy-cast) — index bounded by window length ≤ 2^32\n\
                   \x20   let small = n as u32;\n\
                   \x20   small as f64 + n as f64\n\
                   }\n";
        assert!(lint_rust_source(Path::new("crates/models/src/arima.rs"), src).is_empty());
    }

    // ---- R4 ----

    #[test]
    fn r4_flags_boxed_dyn_error_returns() {
        let src = "pub fn f() -> Result<u32, Box<dyn std::error::Error>> {\n\
                   \x20   Ok(1)\n\
                   }\n";
        let diags = lint_rust_source(&lib_path(), src);
        assert_eq!(rules(&diags), vec![Rule::TypedError]);
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn r4_catches_multi_line_signatures_and_accepts_typed_errors() {
        let bad = "pub fn f(\n\
                   \x20   x: u32,\n\
                   ) -> Result<u32, Box<dyn std::error::Error + Send + Sync>>\n\
                   {\n\
                   \x20   Ok(x)\n\
                   }\n";
        assert_eq!(rules(&lint_rust_source(&lib_path(), bad)), vec![Rule::TypedError]);
        let good = "pub fn f() -> Result<u32, DemoError> { Ok(1) }\n\
                    fn private() -> Result<u32, Box<dyn std::error::Error>> { Ok(1) }\n";
        // Private helpers are out of scope for R4.
        assert!(lint_rust_source(&lib_path(), good).is_empty());
    }

    // ---- R5 ----

    #[test]
    fn r5_flags_process_exit_outside_binaries() {
        let src = "pub fn f() { std::process::exit(1); }\n";
        let diags = lint_rust_source(&lib_path(), src);
        assert_eq!(rules(&diags), vec![Rule::ProcessExit]);
        // Binaries may exit.
        assert!(lint_rust_source(Path::new("crates/demo/src/bin/tool.rs"), src).is_empty());
        assert!(lint_rust_source(Path::new("crates/demo/src/main.rs"), src).is_empty());
    }

    // ---- infrastructure ----

    #[test]
    fn classify_partitions_the_tree() {
        assert!(classify(Path::new("crates/linalg/src/solve.rs")).is_hot_numeric);
        assert!(classify(Path::new("crates/eval/src/metrics.rs")).is_hot_numeric);
        assert!(!classify(Path::new("crates/eval/src/pipeline.rs")).is_hot_numeric);
        assert!(classify(Path::new("crates/core/src/bin/easytime.rs")).is_bin);
        assert!(classify(Path::new("crates/core/tests/integration.rs")).is_test_like);
        assert!(classify(Path::new("crates/db/src/parser.rs")).is_library);
    }

    #[test]
    fn splitter_blanks_strings_and_separates_comments() {
        let lines = split_lines("let x = \"panic!\"; // note: .unwrap() here\n");
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].code.contains("panic!"));
        assert!(lines[0].comment.contains(".unwrap()"));
        let raw = split_lines("let r = r#\"has .unwrap() inside\"#;\n");
        assert!(!raw[0].code.contains("unwrap"));
        let lifetime = split_lines("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(lifetime[0].code.contains("<'a>"));
    }

    #[test]
    fn diagnostics_render_file_line_rule() {
        let d = Diagnostic {
            file: PathBuf::from("crates/demo/src/lib.rs"),
            line: 7,
            rule: Rule::NoPanic,
            message: "`unwrap` in library code".into(),
        };
        assert_eq!(format!("{d}"), "crates/demo/src/lib.rs:7: R1 `unwrap` in library code");
    }
}
