//! Property and fixture tests for the phase-3 effect analysis.
//!
//! Three invariant families:
//!
//! 1. **Totality + tiling** — [`file_cfgs`] never panics on seeded token
//!    soup, and every sketch it returns is a well-formed region tree:
//!    the root is the body, children nest strictly inside their parent,
//!    siblings never overlap, and statement boundaries belong to their
//!    innermost region.
//! 2. **Summary exactness** — small multi-crate fixtures produce exactly
//!    the direct / closed / loop-closed effect sets the source dictates,
//!    including convergence on call-graph cycles and the setup-versus-
//!    per-iteration distinction that gives R18 its teeth.
//! 3. **Rule behavior** — R18/R19/R20 fire on seeded violations through
//!    the public [`analyze_workspace`] entry point, and a justified
//!    `// lint: allow(<rule>) — <why>` hatch waives each one.

use easytime_lint::analyze_workspace;
use easytime_lint::cfg::{file_cfgs, CfgSketch, Region, RegionKind};
use easytime_lint::effects::{build_effect_table, Effect};
use easytime_lint::model::{SourceEntry, WorkspaceModel};
use easytime_rng::StdRng;

const CASES: u64 = 48;
const MASTER_SEED: u64 = 0x1E8E_0003;

fn rngs() -> impl Iterator<Item = StdRng> {
    (0..CASES).map(|i| StdRng::seed_from_u64(MASTER_SEED).derive(i))
}

/// Fragments biased toward control flow: loop heads, branch heads, match
/// arms, closures, statement runs, and unbalanced junk the sketcher must
/// clamp rather than choke on.
const FRAGMENTS: &[&str] = &[
    "fn f(x: u32) -> u32 { x }",
    "pub fn g() {",
    "}",
    "for i in 0..n {",
    "while cond() {",
    "loop {",
    "if a < b {",
    "} else if c {",
    "} else {",
    "match v {",
    "Some(x) => { use_it(x); }",
    "None => {}",
    "let s = items.iter().map(|x| { x + 1 }).sum::<u32>();",
    "let v = vec![1, 2, 3];",
    "buf.push(x);",
    "let g = self.state.lock();",
    "drop(g);",
    "return out;",
    "break;",
    "continue;",
    "a; b; c;",
    "{ { {",
    "} } )",
    "\"unterminated",
    "/* unterminated",
    "fn",
    "{",
    ";",
    "'a",
    "m!{ loop { } }",
];

fn soup(rng: &mut StdRng) -> String {
    let n = rng.gen_range(20..120);
    let mut out = String::new();
    for _ in 0..n {
        out.push_str(FRAGMENTS[rng.gen_range(0..FRAGMENTS.len())]);
        out.push(if rng.gen_bool(0.8) { '\n' } else { ' ' });
    }
    out
}

/// One region's local well-formedness inside its sketch.
fn assert_region_well_formed(sketch: &CfgSketch, i: usize, r: &Region, name: &str) {
    assert!(r.open <= r.close, "inverted region in `{name}`");
    if i == 0 {
        return;
    }
    let p = r
        .parent
        .unwrap_or_else(|| panic!("non-root region {i} of `{name}` has no parent"));
    assert!(p < i, "parent {p} of region {i} must open earlier");
    let parent = &sketch.regions[p];
    assert!(
        parent.open < r.open && r.close <= parent.close,
        "region {i} of `{name}` escapes its parent: \
         {}..{} outside {}..{}",
        r.open, r.close, parent.open, parent.close
    );
    // Siblings are disjoint: a later-opening same-parent region starts
    // after this one closes.
    for (j, other) in sketch.regions.iter().enumerate().skip(i + 1) {
        if other.parent == Some(p) && other.open > r.open {
            assert!(other.open > r.close, "siblings {i} and {j} of `{name}` overlap");
        }
    }
}

/// The whole-sketch tiling invariant: root is the body, every region is
/// well-formed, statement boundaries belong to their innermost region,
/// and `in_loop` agrees with the loop regions' extents.
fn assert_tiles(sketch: &CfgSketch, name: &str) {
    assert!(!sketch.regions.is_empty(), "sketch must have a body region");
    assert_eq!(sketch.regions[0].kind, RegionKind::Body);
    assert_eq!(sketch.regions[0].parent, None);
    for (i, r) in sketch.regions.iter().enumerate() {
        assert_region_well_formed(sketch, i, r, name);
        for &s in &r.stmts {
            assert!(r.open < s && s < r.close, "stmt {s} outside its region in `{name}`");
            assert_eq!(
                sketch.innermost(s),
                i,
                "stmt {s} of `{name}` belongs to a child region"
            );
        }
        if r.kind == RegionKind::Loop && r.close > r.open {
            for k in (r.open + 1)..r.close {
                assert!(sketch.in_loop(k), "index {k} inside loop region {i} of `{name}`");
            }
        }
    }
}

#[test]
fn file_cfgs_is_total_and_regions_tile_on_token_soup() {
    for mut rng in rngs() {
        let src = soup(&mut rng);
        for cfg in file_cfgs(&src) {
            assert_tiles(&cfg.sketch, &cfg.name);
        }
    }
}

#[test]
fn region_kinds_are_classified_from_their_headers() {
    let src = "fn demo(v: Option<u32>) {\n\
               \x20   for i in 0..3 {\n\
               \x20       while i < 2 {\n\
               \x20           step();\n\
               \x20       }\n\
               \x20   }\n\
               \x20   loop {\n\
               \x20       break;\n\
               \x20   }\n\
               \x20   if v.is_some() {\n\
               \x20       a();\n\
               \x20   } else {\n\
               \x20       b();\n\
               \x20   }\n\
               \x20   match v {\n\
               \x20       Some(x) => { use_it(x); }\n\
               \x20       None => {}\n\
               \x20   }\n\
               \x20   let f = |x: u32| { x + 1 };\n\
               }\n";
    let cfgs = file_cfgs(src);
    assert_eq!(cfgs.len(), 1);
    let count = |kind: RegionKind| {
        cfgs[0].sketch.regions.iter().filter(|r| r.kind == kind).count()
    };
    assert_eq!(count(RegionKind::Body), 1);
    assert_eq!(count(RegionKind::Loop), 3, "for + while + loop");
    assert_eq!(count(RegionKind::Branch), 2, "if + else");
    assert_eq!(count(RegionKind::Match), 1);
    // Arm blocks and the closure body are plain blocks.
    assert!(count(RegionKind::Block) >= 3);
}

/// A two-crate fixture: `easytime-a` has the allocating leaf and a
/// pass-through, `easytime-b` calls across the crate boundary.
fn two_crate_fixture(b_lib: &str) -> Vec<SourceEntry> {
    vec![
        SourceEntry::new(
            "crates/a/Cargo.toml",
            "[package]\nname = \"easytime-a\"\n\n[dependencies]\n",
        ),
        SourceEntry::new(
            "crates/a/src/lib.rs",
            "/// Doc.\n\
             pub fn leaf() -> Vec<u8> {\n\
             \x20   let v = vec![1u8];\n\
             \x20   v\n\
             }\n\
             \n\
             /// Doc.\n\
             pub fn mid() -> usize {\n\
             \x20   leaf().len()\n\
             }\n",
        ),
        SourceEntry::new(
            "crates/b/Cargo.toml",
            "[package]\nname = \"easytime-b\"\n\n[dependencies]\n\
             easytime-a = { path = \"../a\" }\n",
        ),
        SourceEntry::new("crates/b/src/lib.rs", b_lib),
    ]
}

fn table_for(sources: &[SourceEntry]) -> easytime_lint::effects::EffectTable {
    build_effect_table(&WorkspaceModel::build(sources))
}

fn effects_of<'a>(
    table: &'a easytime_lint::effects::EffectTable,
    krate: &str,
    name: &str,
) -> &'a easytime_lint::effects::FnEffects {
    table
        .fns
        .get(&(krate.to_string(), name.to_string()))
        .unwrap_or_else(|| panic!("no summary for {krate}::{name}"))
}

#[test]
fn allocation_closes_transitively_across_crates() {
    let sources = two_crate_fixture(
        "use easytime_a::mid;\n\
         \n\
         /// Doc.\n\
         pub fn top() -> usize {\n\
         \x20   mid()\n\
         }\n",
    );
    let table = table_for(&sources);
    let top = effects_of(&table, "easytime-b", "top");
    assert!(top.direct.is_empty(), "top allocates nothing itself: {:?}", top.direct);
    assert!(top.closed.contains(&Effect::Alloc), "closure must cross two call hops");
    let witness = top.witness.get(&Effect::Alloc).expect("alloc witness");
    assert!(
        witness.contains("crates/a/src/lib.rs"),
        "witness should point at the leaf's vec! site, got {witness}"
    );
}

#[test]
fn call_graph_cycles_converge_to_the_union() {
    let sources = vec![
        SourceEntry::new(
            "crates/c/Cargo.toml",
            "[package]\nname = \"easytime-c\"\n\n[dependencies]\n",
        ),
        SourceEntry::new(
            "crates/c/src/lib.rs",
            "/// Doc.\n\
             pub fn ping(n: u32) {\n\
             \x20   if n > 0 {\n\
             \x20       pong(n - 1);\n\
             \x20   }\n\
             }\n\
             \n\
             /// Doc.\n\
             pub fn pong(n: u32) {\n\
             \x20   let s = format!(\"{n}\");\n\
             \x20   drop(s);\n\
             \x20   if n > 0 {\n\
             \x20       ping(n - 1);\n\
             \x20   }\n\
             }\n",
        ),
    ];
    let table = table_for(&sources);
    for name in ["ping", "pong"] {
        let fe = effects_of(&table, "easytime-c", name);
        assert!(
            fe.closed.contains(&Effect::Alloc),
            "`{name}` sits on an allocating cycle: {:?}",
            fe.closed
        );
    }
    assert!(effects_of(&table, "easytime-c", "ping").direct.is_empty());
}

#[test]
fn loop_closure_separates_setup_from_per_iteration_work() {
    let sources = two_crate_fixture(
        "use easytime_a::{leaf, mid};\n\
         \n\
         /// Allocates every iteration.\n\
         pub fn per_iter() -> usize {\n\
         \x20   let mut total = 0;\n\
         \x20   for _ in 0..3 {\n\
         \x20       total += mid();\n\
         \x20   }\n\
         \x20   total\n\
         }\n\
         \n\
         /// Allocates once, before the loop.\n\
         pub fn setup_only() -> usize {\n\
         \x20   let buf = leaf();\n\
         \x20   let mut total = 0;\n\
         \x20   for b in &buf {\n\
         \x20       total += *b as usize;\n\
         \x20   }\n\
         \x20   total\n\
         }\n",
    );
    let table = table_for(&sources);
    let per_iter = effects_of(&table, "easytime-b", "per_iter");
    assert!(per_iter.loop_closed.contains(&Effect::Alloc), "in-loop call closes fully");
    let setup = effects_of(&table, "easytime-b", "setup_only");
    assert!(setup.closed.contains(&Effect::Alloc), "the setup alloc is still closed");
    assert!(
        !setup.loop_closed.contains(&Effect::Alloc),
        "straight-line setup must not count as per-iteration work: {:?}",
        setup.loop_closed
    );
}

fn diags_with(sources: &[SourceEntry], code: &str) -> Vec<String> {
    let (diags, _) = analyze_workspace(sources, None);
    diags
        .into_iter()
        .filter(|d| d.rule.code() == code)
        .map(|d| format!("{}:{}: {}", d.file.display(), d.line, d.message))
        .collect()
}

#[test]
fn r18_fires_on_hot_loops_and_justified_hatches_waive_it() {
    let hot_lib = |hatch: &str| {
        two_crate_fixture(&format!(
            "use easytime_a::mid;\n\
             \n\
             // lint: hot(steady-state window loop, pinned by a counting-allocator test)\n\
             /// Doc.\n\
             pub fn warm() -> usize {{\n\
             \x20   let mut total = 0;\n\
             \x20   for _ in 0..3 {{\n\
             {hatch}\
             \x20       total += mid();\n\
             \x20   }}\n\
             \x20   total\n\
             }}\n"
        ))
    };
    let bare = diags_with(&hot_lib(""), "R18");
    assert_eq!(bare.len(), 1, "{bare:?}");
    assert!(bare[0].contains("warm") && bare[0].contains("mid"), "{bare:?}");
    let hatched = hot_lib(
        "\x20       // lint: allow(hot-path-alloc) — cold fallback, measured elsewhere\n",
    );
    assert_eq!(diags_with(&hatched, "R18"), Vec::<String>::new());
}

#[test]
fn r19_fires_on_swallowed_results_and_hatches_waive_it() {
    let lib = |hatch: &str| {
        vec![
            SourceEntry::new(
                "crates/d/Cargo.toml",
                "[package]\nname = \"easytime-d\"\n\n[dependencies]\n",
            ),
            SourceEntry::new(
                "crates/d/src/lib.rs",
                format!(
                    "/// Doc.\n\
                     pub fn fallible() -> Result<u32, u8> {{\n\
                     \x20   Ok(1)\n\
                     }}\n\
                     \n\
                     /// Doc.\n\
                     pub fn caller() {{\n\
                     {hatch}\
                     \x20   let _ = fallible();\n\
                     }}\n"
                ),
            ),
        ]
    };
    let bare = diags_with(&lib(""), "R19");
    assert_eq!(bare.len(), 1, "{bare:?}");
    assert!(bare[0].contains("fallible"), "{bare:?}");
    let hatched =
        lib("\x20   // lint: allow(swallowed-result) — best-effort cache warm, failure is fine\n");
    assert_eq!(diags_with(&hatched, "R19"), Vec::<String>::new());
}

#[test]
fn r20_fires_on_locks_held_over_allocating_calls() {
    let lib = |hatch: &str| {
        two_crate_fixture(&format!(
            "use easytime_a::mid;\n\
             use std::sync::Mutex;\n\
             \n\
             /// Doc.\n\
             pub struct Registry {{\n\
             \x20   /// Doc.\n\
             \x20   pub state: Mutex<u32>,\n\
             }}\n\
             \n\
             impl Registry {{\n\
             \x20   /// Doc.\n\
             \x20   pub fn refresh(&self) -> usize {{\n\
             \x20       let g = self.state.lock();\n\
             {hatch}\
             \x20       let n = mid();\n\
             \x20       drop(g);\n\
             \x20       n\n\
             \x20   }}\n\
             }}\n"
        ))
    };
    let bare = diags_with(&lib(""), "R20");
    assert_eq!(bare.len(), 1, "{bare:?}");
    assert!(bare[0].contains("mid"), "{bare:?}");
    let hatched = lib(
        "\x20       // lint: allow(lock-while-heavy) — init-once path, contention-free by design\n",
    );
    assert_eq!(diags_with(&hatched, "R20"), Vec::<String>::new());
}
