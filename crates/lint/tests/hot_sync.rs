//! Hot-list sync: every `// lint: hot(<why>)` annotation in the workspace
//! must be *pinned* by one of the counting-allocator tests, and the set of
//! annotated functions must match the paths the R18 design names (the
//! rolling-evaluation window loop, the embedding path, the linalg kernels
//! plus the obs facade they report through, and the SQL index seek/probe
//! path).
//!
//! The static side (this file) keeps the annotation list honest: adding a
//! hot marker without wiring the function into an allocator-counting test
//! fails here, and deleting a pinned annotation fails here too. The dynamic
//! side lives in the tests named in [`SYNC`], which drive the entry
//! points under a counting global allocator and assert the steady state
//! performs zero allocations.

use easytime_lint::effects::{build_effect_table, reachable_from, Effect};
use easytime_lint::model::WorkspaceModel;
use easytime_lint::collect_workspace_sources;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// The exact set of `(crate, fn)` keys that must carry a hot annotation.
const EXPECTED_HOT: [(&str, &str); 26] = [
    ("easytime-db", "cmp_values"),
    ("easytime-db", "collect_range"),
    ("easytime-db", "probe_into"),
    ("easytime-eval", "warm_windows"),
    ("easytime-linalg", "axpy"),
    ("easytime-linalg", "conv_ppv_max"),
    ("easytime-linalg", "dot"),
    ("easytime-linalg", "gram"),
    ("easytime-linalg", "matmul"),
    ("easytime-linalg", "matvec"),
    ("easytime-linalg", "norm2"),
    ("easytime-linalg", "sum"),
    ("easytime-linalg", "tr_matmul"),
    ("easytime-linalg", "tr_matvec"),
    ("easytime-obs", "add"),
    ("easytime-obs", "add_labeled"),
    ("easytime-obs", "attr"),
    ("easytime-obs", "attr_u64"),
    ("easytime-obs", "count_alloc"),
    ("easytime-obs", "enabled"),
    ("easytime-obs", "observe"),
    ("easytime-obs", "prof_alloc_enabled"),
    ("easytime-obs", "span"),
    ("easytime-obs", "warn"),
    ("easytime-repr", "embed_into"),
    ("easytime-repr", "transform_into"),
];

/// The counting-allocator tests and the entry points each one drives.
const SYNC: [(&str, &[&str]); 4] = [
    (
        "crates/obs/tests/no_alloc.rs",
        &[
            "span",
            "attr",
            "attr_u64",
            "add",
            "add_labeled",
            "observe",
            "enabled",
            "warn",
            "count_alloc",
            "prof_alloc_enabled",
        ],
    ),
    ("crates/obs/tests/no_alloc_eval.rs", &["evaluate"]),
    ("crates/repr/tests/no_alloc_embed.rs", &["embed_into"]),
    ("crates/db/tests/no_alloc_seek.rs", &["probe_into", "collect_range"]),
];

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap().to_path_buf()
}

fn workspace_model() -> WorkspaceModel {
    let sources = collect_workspace_sources(&workspace_root()).expect("workspace sources");
    WorkspaceModel::build(&sources)
}

fn hot_keys(ws: &WorkspaceModel) -> BTreeSet<(String, String)> {
    build_effect_table(ws)
        .fns
        .iter()
        .filter(|(_, fe)| fe.hot)
        .map(|(k, _)| k.clone())
        .collect()
}

#[test]
fn hot_annotations_match_the_expected_set_exactly() {
    let ws = workspace_model();
    let got = hot_keys(&ws);
    let want: BTreeSet<(String, String)> =
        EXPECTED_HOT.iter().map(|(c, f)| (c.to_string(), f.to_string())).collect();
    let missing: Vec<_> = want.difference(&got).collect();
    let extra: Vec<_> = got.difference(&want).collect();
    assert!(
        missing.is_empty() && extra.is_empty(),
        "hot annotation drift — missing (annotate or update this list): {missing:?}; \
         extra (pin with an allocator-counting test and add here): {extra:?}"
    );
}

#[test]
fn sync_tests_exist_and_mention_their_entry_points() {
    let root = workspace_root();
    for (file, entries) in SYNC {
        let path = root.join(file);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("counting-allocator test {file} must exist: {e}"));
        for entry in entries {
            assert!(
                text.contains(entry),
                "{file} no longer drives `{entry}`; update SYNC or restore the call"
            );
        }
    }
}

/// Hot functions the allocator tests cannot reach by name: `matmul` and
/// `tr_matmul` are only invoked through `Matrix` operator sugar and the
/// linalg property tests. Their exemption is earned statically instead —
/// the test below proves their *loop-closed* effect summaries carry no
/// `Alloc`, i.e. nothing allocates per iteration (straight-line output
/// buffer construction in the `Matrix` wrappers is allowed, same as R18).
const STATICALLY_PINNED: [(&str, &str); 2] =
    [("easytime-linalg", "matmul"), ("easytime-linalg", "tr_matmul")];

#[test]
fn every_hot_function_is_pinned_at_runtime_or_statically() {
    let ws = workspace_model();
    let table = build_effect_table(&ws);
    let entries: Vec<&str> = SYNC.iter().flat_map(|(_, es)| es.iter().copied()).collect();
    let reachable = reachable_from(&ws, &entries);
    let unpinned: BTreeSet<(String, String)> =
        hot_keys(&ws).into_iter().filter(|k| !reachable.contains(k)).collect();
    let expected: BTreeSet<(String, String)> =
        STATICALLY_PINNED.iter().map(|(c, f)| (c.to_string(), f.to_string())).collect();
    assert_eq!(
        unpinned, expected,
        "hot functions outside allocator-test reach must be exactly the \
         statically-pinned pair; anything else is an unverified no-alloc claim"
    );
    for key in &expected {
        let fe = table.fns.get(key).unwrap_or_else(|| panic!("{key:?} missing from table"));
        assert!(
            !fe.loop_closed.contains(&Effect::Alloc),
            "{key:?} is exempt from runtime pinning only because nothing on \
             its per-iteration path allocates; it now reaches {:?}",
            fe.witness.get(&Effect::Alloc)
        );
    }
}

#[test]
fn each_sync_test_reaches_at_least_one_hot_function() {
    let ws = workspace_model();
    let hot = hot_keys(&ws);
    for (file, entries) in SYNC {
        let reachable = reachable_from(&ws, entries);
        assert!(
            reachable.iter().any(|k| hot.contains(k)),
            "{file} reaches no hot-annotated function from {entries:?}; \
             it no longer pins anything"
        );
    }
}
