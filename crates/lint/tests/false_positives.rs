//! Regression suite: rule patterns inside string literals and comments
//! must never fire.
//!
//! The v1 engine scanned raw lines with a hand-rolled "am I in a string?"
//! state machine and could be fooled by raw strings, escapes, and nested
//! block comments. The v2 engine lexes first, so these inputs — each of
//! which embeds a violation *textually* but not *syntactically* — must
//! produce zero diagnostics.

use easytime_lint::{lint_rust_source, Rule};
use std::path::Path;

fn lib() -> &'static Path {
    Path::new("crates/demo/src/lib.rs")
}

fn hot() -> &'static Path {
    Path::new("crates/linalg/src/solve.rs")
}

#[test]
fn r1_does_not_fire_inside_string_literals() {
    let srcs = [
        "fn f() -> &'static str { \"x.unwrap()\" }\n",
        "fn f() -> &'static str { \"panic!(\\\"boom\\\")\" }\n",
        "fn f() -> &'static str { r\"y.expect(msg)\" }\n",
        "fn f() -> &'static str { r#\"quote \" then .unwrap()\"# }\n",
        "fn f() -> &'static [u8] { br##\"# .expect(\"nested\") #\"## }\n",
        "fn f() -> char { '\\\"' } // an escaped-quote char, then .unwrap() in comment\n",
    ];
    for src in srcs {
        assert!(lint_rust_source(lib(), src).is_empty(), "false positive in {src:?}");
    }
}

#[test]
fn r1_does_not_fire_inside_comments() {
    let srcs = [
        "fn f() {} // trailing: x.unwrap() and panic!(\"no\")\n",
        "/// docs mentioning .expect(\"value\") are fine\nfn f() {}\n",
        "fn f() {} /* block .unwrap() */\n",
        "fn f() {} /* outer /* nested .unwrap() */ still comment: panic!() */\n",
        "//! module docs: todo!() unimplemented!() unreachable!()\nfn f() {}\n",
    ];
    for src in srcs {
        assert!(lint_rust_source(lib(), src).is_empty(), "false positive in {src:?}");
    }
}

#[test]
fn r1_still_fires_on_real_violations_next_to_decoys() {
    // A decoy in a string on the same line must not mask the real call.
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               \x20   let _msg = \"docs say: never call .unwrap()\"; x.unwrap()\n\
               }\n";
    let diags = lint_rust_source(lib(), src);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, Rule::NoPanic);
    assert_eq!(diags[0].line, 2);
}

#[test]
fn r3_does_not_fire_inside_strings_or_comments() {
    let srcs = [
        "fn f() -> &'static str { \"cast n as usize here\" }\n",
        "fn f() {} // lossy: x as u32\n",
        "fn f() {} /* value as f32 */\n",
        "fn f() -> &'static str { r#\"as usize\"# }\n",
    ];
    for src in srcs {
        assert!(lint_rust_source(hot(), src).is_empty(), "false positive in {src:?}");
    }
}

#[test]
fn r3_still_fires_on_real_casts_next_to_decoys() {
    let src = "fn f(x: f64) -> usize {\n\
               \x20   let _doc = \"x as usize\"; x as usize\n\
               }\n";
    let diags = lint_rust_source(hot(), src);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, Rule::LossyCast);
}

#[test]
fn r6_does_not_fire_inside_strings_or_comments() {
    let srcs = [
        "fn f() -> &'static str { \"a.partial_cmp(b).unwrap()\" }\n",
        "fn f() {} // a.partial_cmp(b).unwrap_or(Ordering::Equal)\n",
        "fn f() {} /* sort_by(|a, b| a.partial_cmp(b).unwrap()) */\n",
    ];
    for src in srcs {
        assert!(lint_rust_source(lib(), src).is_empty(), "false positive in {src:?}");
    }
}

#[test]
fn r8_allows_the_clock_crate_but_not_obs_internals() {
    // Non-`pub` so R9 (missing docs) stays out of the picture.
    let src = "fn origin() -> std::time::Instant { std::time::Instant::now() }\n";
    // Anywhere under crates/clock/src/ is the sanctioned wall-clock reader.
    assert!(lint_rust_source(Path::new("crates/clock/src/lib.rs"), src).is_empty());
    assert!(lint_rust_source(Path::new("crates/clock/src/manual.rs"), src).is_empty());
    // The obs crate gets no such pass: its span internals must route
    // through easytime-clock.
    let diags = lint_rust_source(Path::new("crates/obs/src/recorder.rs"), src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, Rule::WallClock);
}

#[test]
fn r8_does_not_fire_on_clock_mediated_timing() {
    // The pattern obs span internals actually use — Stopwatch/Clock from
    // easytime-clock — must stay clean in any library file.
    let src = "use easytime_clock::{Clock, Stopwatch};\n\
               fn t(clock: &Clock) -> u64 { clock.now_nanos() }\n\
               fn sw() -> f64 { Stopwatch::start().elapsed_ms() }\n";
    assert!(lint_rust_source(Path::new("crates/obs/src/recorder.rs"), src).is_empty());
    assert!(lint_rust_source(lib(), src).is_empty());
}

#[test]
fn r11_flags_print_macros_in_library_code_only() {
    let src = "fn f() { println!(\"status\"); }\n";
    let diags = lint_rust_source(lib(), src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, Rule::PrintMacro);

    let e = "fn f(x: u32) { eprintln!(\"bad {x}\"); }\n";
    assert_eq!(lint_rust_source(lib(), e)[0].rule, Rule::PrintMacro);

    // Exempt locations: the obs crate itself, binaries, tests, examples.
    for path in [
        "crates/obs/src/lib.rs",
        "crates/demo/src/bin/tool.rs",
        "crates/demo/tests/integration.rs",
        "crates/demo/examples/quickstart.rs",
    ] {
        assert!(
            lint_rust_source(Path::new(path), src).is_empty(),
            "R11 should not fire in {path}"
        );
    }
}

#[test]
fn r11_escape_hatch_and_decoys() {
    let annotated = "fn f() {\n\
                     \x20   // lint: allow(print) — progress output for operators\n\
                     \x20   println!(\"ok\");\n\
                     }\n";
    assert!(lint_rust_source(lib(), annotated).is_empty());

    // Print macros inside strings and comments never fire.
    let decoys = [
        "fn f() -> &'static str { \"println!(hello)\" }\n",
        "fn f() {} // eprintln!(\"in a comment\")\n",
        "fn f() {} /* print!(\"block\") */\n",
    ];
    for src in decoys {
        assert!(lint_rust_source(lib(), src).is_empty(), "false positive in {src:?}");
    }
}

#[test]
fn r12_flags_wildcard_arm_in_refit_policy_matches() {
    // `_` defeats exhaustiveness: adding a RefitPolicy variant would fall
    // through silently instead of failing to compile.
    let positives = [
        "fn f(c: &EvalConfig) { match c.refit { RefitPolicy::Always => a(), _ => b() } }\n",
        "fn f(refit: RefitPolicy) { match refit { RefitPolicy::WarmStart => w(), \
         _ if cold() => c(), RefitPolicy::Always => a() } }\n",
        "fn f(refit_policy: RefitPolicy) { match refit_policy { _ => b() } }\n",
    ];
    for src in positives {
        let diags = lint_rust_source(lib(), src);
        assert_eq!(diags.len(), 1, "R12 should fire once in {src:?}: {diags:?}");
        assert_eq!(diags[0].rule, Rule::PolicyWildcard);
    }
    // R12 guards the protocol dispatch everywhere, binaries included.
    let diags = lint_rust_source(Path::new("crates/demo/src/bin/tool.rs"), positives[0]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, Rule::PolicyWildcard);
}

#[test]
fn r12_leaves_exhaustive_and_unrelated_matches_alone() {
    let negatives = [
        // Exhaustive policy dispatch — the required idiom.
        "fn f(c: &EvalConfig) { match c.refit { RefitPolicy::Always => a(), \
         RefitPolicy::WarmStart => w() } }\n",
        // `RefitPolicy::parse`-style string match: the scrutinee has no
        // policy identifier, so the `_` arm is fine.
        "fn parse(s: &str) { match s.trim() { \"always\" => a(), _ => e() } }\n",
        // `_` nested inside a pattern is not a top-level wildcard arm.
        "fn f(c: &EvalConfig) { match (c.refit, 0) { (RefitPolicy::Always, _) => a(), \
         (RefitPolicy::WarmStart, _) => w() } }\n",
        // `_` at depth 2 belongs to an inner non-policy match.
        "fn f(refit: RefitPolicy) { match refit { RefitPolicy::Always => match x() { 1 => a(), \
         _ => b() }, RefitPolicy::WarmStart => w() } }\n",
        // A policy ident *inside the body* does not make a string match a
        // policy match.
        "fn g(s: &str) { match s { \"w\" => RefitPolicy::WarmStart, _ => RefitPolicy::Always }; }\n",
    ];
    for src in negatives {
        let diags = lint_rust_source(lib(), src);
        assert!(diags.is_empty(), "R12 false positive in {src:?}: {diags:?}");
    }

    let annotated = "fn f(c: &EvalConfig) {\n\
                     \x20   match c.refit {\n\
                     \x20       RefitPolicy::Always => a(),\n\
                     \x20       // lint: allow(policy-wildcard) — prototype shim, tracked in #42\n\
                     \x20       _ => b(),\n\
                     \x20   }\n\
                     }\n";
    assert!(lint_rust_source(lib(), annotated).is_empty());
}

#[test]
fn r13_flags_transpose_feeding_matrix_products_in_library_code() {
    let positives = [
        "fn f(a: &Matrix, b: &Matrix) -> Matrix { a.transpose().matmul(b) }\n",
        "fn f(a: &Matrix, v: &[f64]) -> Vec<f64> { a.transpose().matvec(v) }\n",
        // Still a materialized transpose when the receiver is an expression.
        "fn f(a: &Matrix, b: &Matrix) -> Matrix { (a.scale(2.0)).transpose().matmul(b) }\n",
    ];
    for src in positives {
        let diags = lint_rust_source(lib(), src);
        assert_eq!(diags.len(), 1, "R13 should fire once in {src:?}: {diags:?}");
        assert_eq!(diags[0].rule, Rule::MaterializedTranspose);
    }
    // Hot numeric crates are library code too.
    let diags = lint_rust_source(hot(), positives[0]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, Rule::MaterializedTranspose);
}

#[test]
fn r13_leaves_unfused_transposes_and_non_library_code_alone() {
    let negatives = [
        // A transpose that is *kept* (bound, returned, reused) is fine —
        // the rule only targets transpose-then-stream-once.
        "fn f(a: &Matrix) -> Matrix { a.transpose() }\n",
        "fn f(a: &Matrix, b: &Matrix) -> Matrix { let at = a.transpose(); at.matmul(b) }\n",
        // `Option::transpose` chains continue with `?`, not a product call.
        "fn f(x: Option<Result<u32, E>>) -> Result<u32, E> { Ok(x.transpose()?.unwrap_or(0)) }\n",
        // Other follow-on methods are not products.
        "fn f(a: &Matrix) -> usize { a.transpose().rows() }\n",
        // Patterns inside strings and comments never fire.
        "fn f() -> &'static str { \"a.transpose().matmul(b)\" }\n",
        "fn f() {} // a.transpose().matmul(b) in a comment\n",
    ];
    for src in negatives {
        let diags = lint_rust_source(lib(), src);
        assert!(
            diags.iter().all(|d| d.rule != Rule::MaterializedTranspose),
            "R13 false positive in {src:?}: {diags:?}"
        );
    }

    // Tests, benches, and binaries may materialize transposes freely (the
    // property tests do exactly this to build naive oracles).
    let src = "fn f(a: &Matrix, b: &Matrix) -> Matrix { a.transpose().matmul(b) }\n";
    for path in [
        "crates/linalg/tests/kernel_properties.rs",
        "crates/bench/src/bin/exp_kernels.rs",
        "crates/demo/examples/quickstart.rs",
    ] {
        assert!(
            lint_rust_source(Path::new(path), src).is_empty(),
            "R13 should not fire in {path}"
        );
    }

    // `#[cfg(test)]` regions inside library files are exempt.
    let in_test = "#[cfg(test)]\n\
                   mod tests {\n\
                   \x20   fn f(a: &Matrix, b: &Matrix) -> Matrix { a.transpose().matmul(b) }\n\
                   }\n";
    assert!(lint_rust_source(lib(), in_test).is_empty());
}

#[test]
fn r13_escape_hatch() {
    let annotated = "fn f(a: &Matrix, b: &Matrix) -> Matrix {\n\
                     \x20   // lint: allow(materialized-transpose) — b is reused mutably below\n\
                     \x20   a.transpose().matmul(b)\n\
                     }\n";
    assert!(lint_rust_source(lib(), annotated).is_empty());

    // A bare annotation with no justification is itself a violation.
    let bare = "fn f(a: &Matrix, b: &Matrix) -> Matrix {\n\
                \x20   // lint: allow(materialized-transpose)\n\
                \x20   a.transpose().matmul(b)\n\
                }\n";
    let diags = lint_rust_source(lib(), bare);
    assert!(
        diags.iter().any(|d| d.rule == Rule::BadAnnotation),
        "bare allow should be rejected: {diags:?}"
    );
}

#[test]
fn lifetimes_are_not_mistaken_for_char_literals() {
    // `'a` must lex as a lifetime, not open a character literal that
    // swallows the rest of the file (which would hide the real unwrap).
    let src = "fn f<'a>(x: &'a Option<u32>) -> u32 {\n\
               \x20   x.unwrap()\n\
               }\n";
    let diags = lint_rust_source(lib(), src);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, Rule::NoPanic);
    assert_eq!(diags[0].line, 2);
}

// ---------------------------------------------------------------------------
// Phase-2 consumers of the lexer: the workspace model reads identifier and
// path tokens that phase 1 never needed. These regressions pin down the
// constructs a cross-file analysis is most easily fooled by.
// ---------------------------------------------------------------------------

mod phase2 {
    use easytime_lint::model::{ItemKind, SourceEntry, Vis, WorkspaceModel};

    fn model(src: &str) -> WorkspaceModel {
        WorkspaceModel::build(&[
            SourceEntry::new("crates/demo/Cargo.toml", "[package]\nname = \"easytime-demo\"\n"),
            SourceEntry::new("crates/demo/src/lib.rs", src),
        ])
    }

    #[test]
    fn raw_identifiers_are_normalized_in_items_and_mentions() {
        let ws = model(
            "/// Doc.\npub fn r#match(r#type: u32) -> u32 { r#type }\n\
             fn caller() { let _ = r#match(1); }\n",
        );
        let f = &ws.files[0];
        // The item table stores the bare name, so `r#match` and a plain
        // `match`-named mention in another crate unify.
        assert_eq!(f.items[0].name, "match");
        assert!(f.mentions.contains("match"), "mentions: {:?}", f.mentions);
        assert!(!f.mentions.iter().any(|m| m.starts_with("r#")));
    }

    #[test]
    fn raw_identifiers_are_normalized_in_use_paths() {
        let ws = model("use easytime_rng::r#impl::thing;\nfn f() {}\n");
        let f = &ws.files[0];
        assert_eq!(f.uses.len(), 1);
        assert_eq!(f.uses[0].segments, vec!["easytime_rng", "impl", "thing"]);
    }

    #[test]
    fn crate_and_super_paths_do_not_register_external_refs() {
        // `crate::` and `super::` are workspace-internal navigation; only
        // `easytime_*::` tokens are cross-crate evidence for R15.
        let ws = model(
            "use crate::detail::helper;\n\
             use super::sibling;\n\
             fn f() { crate::detail::helper(); super::sibling(); }\n",
        );
        let f = &ws.files[0];
        assert!(f.ext_refs.is_empty(), "ext_refs: {:?}", f.ext_refs);
        assert_eq!(f.uses.len(), 2);
        assert_eq!(f.uses[0].segments[0], "crate");
        assert_eq!(f.uses[1].segments[0], "super");
    }

    #[test]
    fn multi_segment_self_references_are_not_external() {
        // A crate naming its *own* lib target path-qualified is not a
        // dependency edge.
        let ws = WorkspaceModel::build(&[
            SourceEntry::new("crates/demo/Cargo.toml", "[package]\nname = \"easytime-demo\"\n"),
            SourceEntry::new(
                "crates/demo/src/lib.rs",
                "pub fn f() {}\nfn g() { crate::f(); }\n",
            ),
            SourceEntry::new(
                "crates/demo/tests/it.rs",
                "fn main() { easytime_demo::f(); }\n",
            ),
        ]);
        let test_file = ws.files.iter().find(|f| f.path.ends_with("tests/it.rs")).unwrap();
        // Recorded, but marked by file class as a non-library target.
        assert_eq!(test_file.ext_refs.len(), 1);
        assert_eq!(test_file.ext_refs[0].lib_name, "easytime_demo");
    }

    #[test]
    fn restricted_visibility_is_neither_pub_nor_private() {
        let ws = model(
            "pub struct A;\n\
             pub(crate) struct B;\n\
             pub(in crate::detail) struct C;\n\
             pub(super) struct D;\n\
             struct E;\n",
        );
        let vises: Vec<(String, Vis)> =
            ws.files[0].items.iter().map(|i| (i.name.clone(), i.vis)).collect();
        assert_eq!(vises, vec![
            ("A".to_string(), Vis::Pub),
            ("B".to_string(), Vis::Restricted),
            ("C".to_string(), Vis::Restricted),
            ("D".to_string(), Vis::Restricted),
            ("E".to_string(), Vis::Private),
        ]);
    }

    #[test]
    fn pub_in_path_groups_do_not_swallow_the_item_name() {
        // The `(in crate::detail)` group must be skipped as a unit; the
        // item is still parsed with its real name and kind.
        let ws = model("pub(in crate::detail) fn tucked(x: u8) -> u8 { x }\n");
        let item = &ws.files[0].items[0];
        assert_eq!(item.kind, ItemKind::Fn);
        assert_eq!(item.name, "tucked");
        assert_eq!(item.vis, Vis::Restricted);
    }

    #[test]
    fn string_and_comment_paths_are_not_use_evidence() {
        // Path-shaped text inside literals and comments must not create
        // ext_refs — R15's token check would otherwise flag doc prose.
        let ws = model(
            "/// Mentions easytime_automl::search in docs.\n\
             // and easytime_qa::checks in a comment\n\
             pub fn f() -> &'static str { \"easytime_bench::run\" }\n",
        );
        assert!(ws.files[0].ext_refs.is_empty(), "ext_refs: {:?}", ws.files[0].ext_refs);
    }
}
