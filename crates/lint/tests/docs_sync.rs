//! Docs-drift check: the README rule table must be the exact output of
//! [`easytime_lint::readme_rule_rows`], the same table `--explain` reads.
//! If a rule is added or its summary reworded, regenerating the rows (or
//! editing `RULE_DOCS`) keeps the three surfaces in lockstep.

use std::path::Path;

#[test]
fn readme_rule_table_matches_rule_docs() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let readme = std::fs::read_to_string(root.join("README.md")).expect("read README.md");

    let begin = readme
        .find("<!-- rule-table:begin")
        .expect("README.md is missing the `<!-- rule-table:begin -->` marker");
    let end = readme
        .find("<!-- rule-table:end -->")
        .expect("README.md is missing the `<!-- rule-table:end -->` marker");
    let block = &readme[begin..end];

    // Everything between the header separator and the end marker must be
    // exactly the generated rows.
    let sep = "|---|---|---|\n";
    let rows_start = block.find(sep).expect("rule table is missing its header separator") + sep.len();
    let committed = &block[rows_start..];

    let generated = easytime_lint::readme_rule_rows();
    assert_eq!(
        committed, generated,
        "README rule table has drifted from easytime_lint::RULE_DOCS; \
         update RULE_DOCS or paste the generated rows back into README.md"
    );
}

#[test]
fn every_rule_doc_resolves_via_explain_lookup() {
    for doc in easytime_lint::RULE_DOCS {
        let found = easytime_lint::rule_doc(doc.code)
            .unwrap_or_else(|| panic!("rule_doc({}) returned None", doc.code));
        assert_eq!(found.code, doc.code);
        // Case-insensitive lookup, as the CLI promises.
        assert!(easytime_lint::rule_doc(&doc.code.to_lowercase()).is_some());
    }
    assert!(easytime_lint::rule_doc("R999").is_none());
}
