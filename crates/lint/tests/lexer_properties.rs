//! Property tests for the token-stream lexer, driven by the workspace's
//! deterministic RNG.
//!
//! Invariants under test, for randomly-assembled and adversarial inputs:
//!
//! 1. **Tiling** — concatenating every token's span reproduces the input
//!    byte-for-byte (no gaps, no overlaps, nothing dropped).
//! 2. **Monotone spans** — token boundaries are strictly increasing and
//!    land on `char` boundaries.
//! 3. **No panics** — the lexer is total; unterminated strings, stray
//!    quotes, lone backslashes, and nested comment soup all lex.
//! 4. **Line numbers** — a token's recorded line matches the number of
//!    newlines before its start.

use easytime_lint::lexer::{lex, TokenKind};
use easytime_rng::StdRng;

const CASES: u64 = 64;
const MASTER_SEED: u64 = 0x1E8E_0001;

fn cases() -> impl Iterator<Item = StdRng> {
    (0..CASES).map(|i| StdRng::seed_from_u64(MASTER_SEED).derive(i))
}

/// Plausible Rust fragments, including every construct the lexer special-
/// cases: raw strings, byte strings, char-vs-lifetime ambiguity, nested
/// block comments, doc flavours, numeric shapes, and multi-char operators.
const FRAGMENTS: &[&str] = &[
    "fn main() { }",
    "let x = 1.5e-3;",
    "let y: &'a mut Vec<u8> = v;",
    "'x'",
    "'\\n'",
    "b'q'",
    "'static",
    "r\"raw\"",
    "r#\"raw with \" quote\"#",
    "br##\"bytes \"# inner\"##",
    "\"str with \\\" escape\"",
    "\"unterminated",
    "/* outer /* nested */ still comment */",
    "/* unterminated",
    "// line comment with .unwrap() inside",
    "/// doc comment",
    "//! inner doc",
    "/**/",
    "0x_FF_u64",
    "0b1010_1010",
    "1.",
    "1..2",
    "1.max(2)",
    "1_000_000.25f64",
    "x.partial_cmp(&y)",
    "a::<B>()",
    "m!{ weird tokens @ # $ }",
    "#[cfg(test)]",
    "r#match",
    "\\",
    "\u{1F980} // non-ascii 🦀 in comment",
    "\"emoji \u{1F980} in string\"",
];

fn random_source(rng: &mut StdRng) -> String {
    let n = rng.gen_range(0..40);
    let mut out = String::new();
    for _ in 0..n {
        out.push_str(FRAGMENTS[rng.gen_range(0..FRAGMENTS.len())]);
        // Random separator: spaces, newlines, or nothing (gluing fragments
        // together produces exactly the pathological boundaries we want).
        match rng.gen_range(0..4) {
            0 => out.push(' '),
            1 => out.push('\n'),
            2 => out.push_str("\t\n  "),
            _ => {}
        }
    }
    out
}

fn assert_tiles(src: &str) {
    let tokens = lex(src);
    let mut rebuilt = String::with_capacity(src.len());
    let mut prev_end = 0;
    for t in &tokens {
        assert_eq!(t.start, prev_end, "gap/overlap before byte {} in {src:?}", t.start);
        assert!(t.end > t.start, "empty token at byte {} in {src:?}", t.start);
        assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
        rebuilt.push_str(t.text(src));
        prev_end = t.end;
    }
    assert_eq!(prev_end, src.len(), "trailing bytes unlexed in {src:?}");
    assert_eq!(rebuilt, src, "token concatenation must round-trip");
    // Line numbers agree with newline counts.
    for t in &tokens {
        let expected = 1 + src[..t.start].matches('\n').count();
        assert_eq!(t.line, expected, "line mismatch for token at byte {} in {src:?}", t.start);
    }
}

#[test]
fn random_fragment_concatenations_tile_the_input() {
    for mut rng in cases() {
        let src = random_source(&mut rng);
        assert_tiles(&src);
    }
}

#[test]
fn random_byte_soup_never_panics_and_tiles() {
    // Printable-ASCII soup with embedded quotes and slashes: inputs that
    // are almost never valid Rust, which is exactly the point.
    for mut rng in cases() {
        let len = rng.gen_range(0..200);
        let src: String =
            (0..len).map(|_| (b' ' + rng.gen_range(0..95) as u8) as char).collect();
        assert_tiles(&src);
    }
}

#[test]
fn adversarial_snippets_lex_without_panicking() {
    let nasty = [
        "",
        "'",
        "''",
        "'''",
        "r",
        "r#",
        "r#\"",
        "b",
        "br",
        "br#",
        "\"",
        "\\\"",
        "\"\\",
        "'\\",
        "/*",
        "*/",
        "/*/",
        "/* /* */",
        "//",
        "///",
        "//!",
        "0x",
        "0b",
        "1e",
        "1e+",
        "1.2.3",
        "'a'b'c",
        "r#\"\"#r#\"\"#",
        "🦀'🦀",
        "\u{0}\u{1}\u{7f}",
    ];
    for src in nasty {
        assert_tiles(src);
    }
}

#[test]
fn strings_and_comments_swallow_their_contents() {
    // Everything between the delimiters is one token — the foundation of
    // the "rules can't be fooled by strings/comments" guarantee.
    let src = "\"a.unwrap() as usize\" /* x.partial_cmp(y).unwrap() */";
    let tokens = lex(src);
    let code: Vec<&TokenKind> =
        tokens.iter().filter(|t| !t.is_trivia()).map(|t| &t.kind).collect();
    assert_eq!(code.len(), 1, "only the string literal is code");
    assert!(matches!(code[0], TokenKind::StrLit));
    assert!(tokens.iter().any(|t| matches!(t.kind, TokenKind::Comment { .. })));
}
