//! Integration tests for the phase-2 workspace model and semantic rules.
//!
//! Three invariant families:
//!
//! 1. **Totality** — `WorkspaceModel::build` and `analyze_workspace` never
//!    panic, whatever token soup the deterministic RNG assembles.
//! 2. **Exactness** — a small fixture workspace produces exactly the item
//!    tables, dependency edges, and use edges the source dictates, and the
//!    semantic rules fire on seeded violations (layering backdoors, lock
//!    cycles, dead pub items, API drift).
//! 3. **Determinism** — feeding the same sources in shuffled discovery
//!    orders yields byte-identical JSON for both the diagnostics and the
//!    semantic size stats.

use easytime_lint::model::{ItemKind, SourceEntry, Vis, WorkspaceModel};
use easytime_lint::{
    analyze_workspace, api, diagnostics_to_json, locks, resolve, semantic_stats_to_json,
    workspace_effect_table_json,
};
use easytime_rng::StdRng;

const CASES: u64 = 48;
const MASTER_SEED: u64 = 0x1E8E_0002;

fn rngs() -> impl Iterator<Item = StdRng> {
    (0..CASES).map(|i| StdRng::seed_from_u64(MASTER_SEED).derive(i))
}

/// Fragments biased toward the constructs phase 2 parses: items, impls,
/// visibility modifiers, lock calls, cross-crate paths, and junk that any
/// total parser must shrug off.
const FRAGMENTS: &[&str] = &[
    "pub fn f(x: u32) -> u32 { x }",
    "fn private() {}",
    "pub(crate) struct S { field: u64 }",
    "pub(in crate::detail) fn scoped() {}",
    "pub enum E { A, B(u8) }",
    "pub trait T { fn m(&self); }",
    "impl T for S { fn m(&self) {} }",
    "impl S { pub fn assoc() {} }",
    "pub mod inner {",
    "}",
    "pub use crate::other::Thing;",
    "use easytime_rng::StdRng;",
    "use super::super::thing;",
    "let g = self.state.lock();",
    "let g = STATE.lock_poisoned();",
    "drop(registry.entries.lock());",
    "easytime_obs::span!(\"x\");",
    "pub const C: u32 = { 1 + 2 };",
    "pub static S_: &str = \"easytime_eval::metrics\";",
    "pub type Alias = Vec<(u8, u8)>;",
    "#[cfg(test)] mod tests { fn t() { helper(); } }",
    "// lint: allow(dead-pub) — exercised downstream",
    "// lint: allow(unwrap)",
    "pub fn r#match(r#type: u32) -> u32 { r#type }",
    "macro_rules! m { () => {} }",
    "m!{ pub fn not_an_item() }",
    "fn generics<T: Clone, const N: usize>(t: [T; N]) {}",
    "{ { { }",
    "} } )",
    "\"unterminated",
    "/* unterminated",
    "pub",
    "fn",
    "impl",
    "::",
    "'a",
    "#![allow(dead_code)]",
];

fn soup(rng: &mut StdRng, min_frags: usize, max_frags: usize) -> String {
    let n = rng.gen_range(min_frags..max_frags);
    let mut out = String::new();
    for _ in 0..n {
        out.push_str(FRAGMENTS[rng.gen_range(0..FRAGMENTS.len())]);
        out.push(if rng.gen_bool(0.8) { '\n' } else { ' ' });
    }
    out
}

#[test]
fn model_build_is_total_on_token_soup() {
    for mut rng in rngs() {
        let mut sources = vec![SourceEntry::new(
            "crates/demo/Cargo.toml",
            "[package]\nname = \"easytime-demo\"\n",
        )];
        let files = rng.gen_range(1..5);
        for f in 0..files {
            sources.push(SourceEntry::new(
                format!("crates/demo/src/f{f}.rs"),
                soup(&mut rng, 1, 40),
            ));
        }
        // Must not panic, and every file must land in the model.
        let ws = WorkspaceModel::build(&sources);
        assert_eq!(ws.files.len(), files);
        let _ = ws.item_count() + ws.pub_item_count() + ws.lock_site_count();
        // The downstream analyses are total too.
        let graph = locks::build_lock_graph(&ws);
        let _ = locks::check_locks(&ws, &graph);
        let _ = resolve::check_layering(&ws);
        let _ = resolve::check_dead_pub(&ws);
        let entries = api::api_entries(&ws);
        let _ = api::check_api_baseline(&entries, "z\na\n", "scripts/api-baseline.txt");
    }
}

#[test]
fn analyze_workspace_is_total_on_mangled_manifests() {
    for mut rng in rngs() {
        let manifest = soup(&mut rng, 1, 10);
        let sources = vec![
            SourceEntry::new("crates/demo/Cargo.toml", manifest),
            SourceEntry::new("crates/demo/src/lib.rs", soup(&mut rng, 1, 30)),
        ];
        let (_diags, stats) = analyze_workspace(&sources, None);
        assert_eq!(stats.files, 1);
    }
}

/// A minimal two-crate fixture using real workspace crate names, so the
/// hard-coded layering table applies: `easytime-clock` (layer 0) and
/// `easytime-eval` (layer 4), with eval legitimately depending on clock.
fn fixture() -> Vec<SourceEntry> {
    vec![
        SourceEntry::new(
            "crates/clock/Cargo.toml",
            "[package]\nname = \"easytime-clock\"\n\n[dependencies]\n",
        ),
        SourceEntry::new(
            "crates/clock/src/lib.rs",
            "/// Doc.\n\
             pub struct Clock {\n\
             \x20   now: u64,\n\
             }\n\
             \n\
             impl Clock {\n\
             \x20   /// Doc.\n\
             \x20   pub fn now(&self) -> u64 {\n\
             \x20       self.now\n\
             \x20   }\n\
             }\n",
        ),
        SourceEntry::new(
            "crates/eval/Cargo.toml",
            "[package]\nname = \"easytime-eval\"\n\n[dependencies]\n\
             easytime-clock = { path = \"../clock\" }\n",
        ),
        SourceEntry::new(
            "crates/eval/src/lib.rs",
            "use easytime_clock::Clock;\n\
             \n\
             /// Doc.\n\
             pub fn score(c: &Clock) -> u64 {\n\
             \x20   c.now()\n\
             }\n",
        ),
        SourceEntry::new(
            "crates/eval/tests/smoke.rs",
            "fn main() { let _ = easytime_eval::score; }\n",
        ),
    ]
}

#[test]
fn fixture_yields_exact_items_and_edges() {
    let ws = WorkspaceModel::build(&fixture());
    assert_eq!(
        ws.crates.keys().cloned().collect::<Vec<_>>(),
        vec!["easytime-clock", "easytime-eval"]
    );
    let eval = &ws.crates["easytime-eval"];
    assert_eq!(eval.deps.iter().map(|(d, _)| d.as_str()).collect::<Vec<_>>(), vec![
        "easytime-clock"
    ]);
    assert_eq!(eval.lib_name, "easytime_eval");

    let clock_lib = ws.files.iter().find(|f| f.path == "crates/clock/src/lib.rs").unwrap();
    let described: Vec<(ItemKind, &str, &str, Vis)> = clock_lib
        .items
        .iter()
        .map(|i| (i.kind, i.name.as_str(), i.context.as_str(), i.vis))
        .collect();
    assert_eq!(described, vec![
        (ItemKind::Struct, "Clock", "", Vis::Pub),
        (ItemKind::Fn, "now", "Clock", Vis::Pub),
    ]);

    let eval_lib = ws.files.iter().find(|f| f.path == "crates/eval/src/lib.rs").unwrap();
    assert_eq!(eval_lib.crate_name, "easytime-eval");
    assert!(eval_lib.mentions.contains("Clock"));
    assert!(eval_lib.mentions.contains("score"));
    assert_eq!(
        eval_lib.ext_refs.iter().map(|r| r.lib_name.as_str()).collect::<Vec<_>>(),
        vec!["easytime_clock"]
    );
    assert_eq!(eval_lib.uses.len(), 1);
    assert_eq!(eval_lib.uses[0].segments, vec!["easytime_clock", "Clock"]);

    assert_eq!(resolve::dep_edge_count(&ws), 1);
    assert_eq!(resolve::use_edge_count(&ws), 1);
}

#[test]
fn fixture_is_semantically_clean() {
    let sources = fixture();
    let (diags, stats) = analyze_workspace(&sources, None);
    assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
    assert_eq!(stats.crates, 2);
    assert_eq!(stats.files, 3);
    assert_eq!(stats.dep_edges, 1);
    assert_eq!(stats.api_entries, 3);
    assert_eq!(stats.effect_sites, 0, "the fixture performs no effects");
    assert_eq!(stats.discard_sites, 0);
    assert_eq!(stats.hot_fns, 0);
}

#[test]
fn layering_violation_fires_on_inverted_dependency() {
    // clock (layer 0) declaring a dependency on eval (layer 4) inverts the
    // tower; the manifest edge and the path-qualified token are separate
    // findings.
    let mut sources = fixture();
    sources[0] = SourceEntry::new(
        "crates/clock/Cargo.toml",
        "[package]\nname = \"easytime-clock\"\n\n[dependencies]\n\
         easytime-eval = { path = \"../eval\" }\n",
    );
    sources[1] = SourceEntry::new(
        "crates/clock/src/lib.rs",
        "/// Doc.\npub fn now() -> u64 { easytime_eval::score as usize as u64 }\n",
    );
    let (diags, _) = analyze_workspace(&sources, None);
    let r15: Vec<_> = diags.iter().filter(|d| d.rule.code() == "R15").collect();
    assert_eq!(r15.len(), 2, "want manifest + token findings, got {r15:?}");
    assert!(r15.iter().any(|d| d.message.contains("must not depend on")
        && d.file.display().to_string() == "crates/clock/Cargo.toml"));
    assert!(r15.iter().any(|d| d.message.contains("path-qualified")
        && d.file.display().to_string() == "crates/clock/src/lib.rs"));
}

#[test]
fn lock_cycle_and_reacquisition_fire() {
    let sources = vec![
        SourceEntry::new(
            "crates/clock/Cargo.toml",
            "[package]\nname = \"easytime-clock\"\n",
        ),
        SourceEntry::new(
            "crates/clock/src/lib.rs",
            "fn ab(s: &State) {\n\
             \x20   let a = s.alpha.lock();\n\
             \x20   let b = s.beta.lock();\n\
             \x20   drop(b); drop(a);\n\
             }\n\
             fn ba(s: &State) {\n\
             \x20   let b = s.beta.lock();\n\
             \x20   let a = s.alpha.lock();\n\
             \x20   drop(a); drop(b);\n\
             }\n\
             fn twice(s: &State) {\n\
             \x20   let g = s.alpha.lock();\n\
             \x20   let h = s.alpha.lock();\n\
             \x20   drop(h); drop(g);\n\
             }\n",
        ),
    ];
    let ws = WorkspaceModel::build(&sources);
    let graph = locks::build_lock_graph(&ws);
    assert!(graph.identities.contains("easytime-clock.alpha"));
    assert!(graph.identities.contains("easytime-clock.beta"));
    let diags = locks::check_locks(&ws, &graph);
    assert!(
        diags.iter().any(|d| d.message.contains("lock-order cycle")),
        "no cycle diagnostic in {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.message.contains("acquired again while already held")),
        "no reacquisition diagnostic in {diags:?}"
    );
}

#[test]
fn dead_pub_fires_and_annotation_waives() {
    let mut sources = fixture();
    // An export nothing mentions outside clock's own library code.
    sources[1] = SourceEntry::new(
        "crates/clock/src/lib.rs",
        "/// Doc.\npub struct Clock { now: u64 }\n\
         impl Clock {\n\
         \x20   /// Doc.\n\
         \x20   pub fn now(&self) -> u64 { self.now }\n\
         }\n\
         /// Doc.\npub fn orphan() {}\n",
    );
    let (diags, _) = analyze_workspace(&sources, None);
    let r17: Vec<_> = diags.iter().filter(|d| d.rule.code() == "R17").collect();
    assert_eq!(r17.len(), 1, "want exactly the orphan, got {r17:?}");
    assert!(r17[0].message.contains("orphan"));

    // A justified hatch on the definition line waives it.
    sources[1] = SourceEntry::new(
        "crates/clock/src/lib.rs",
        "/// Doc.\npub struct Clock { now: u64 }\n\
         impl Clock {\n\
         \x20   /// Doc.\n\
         \x20   pub fn now(&self) -> u64 { self.now }\n\
         }\n\
         /// Doc.\n\
         // lint: allow(dead-pub) — reserved for the next milestone\n\
         pub fn orphan() {}\n",
    );
    let (diags, _) = analyze_workspace(&sources, None);
    assert!(
        !diags.iter().any(|d| d.rule.code() == "R17"),
        "hatch did not waive: {diags:?}"
    );
}

#[test]
fn api_baseline_roundtrip_through_analyze() {
    let sources = fixture();
    let ws = WorkspaceModel::build(&sources);
    let baseline = api::render_api_baseline(&api::api_entries(&ws));
    let (diags, stats) = analyze_workspace(&sources, Some(("scripts/api-baseline.txt", &baseline)));
    assert!(diags.is_empty(), "live surface should match its own snapshot: {diags:?}");
    assert_eq!(stats.api_entries, 3);

    // Drop one line: the removal surfaces as a live-entry addition.
    let pruned: String =
        baseline.lines().filter(|l| !l.contains("score")).map(|l| format!("{l}\n")).collect();
    let (diags, _) = analyze_workspace(&sources, Some(("scripts/api-baseline.txt", &pruned)));
    assert!(diags.iter().any(|d| d.rule.code() == "R14"
        && d.message.contains("not in the committed baseline")
        && d.message.contains("score")));
}

#[test]
fn output_is_byte_identical_under_shuffled_discovery_order() {
    let canonical = fixture();
    let ws = WorkspaceModel::build(&canonical);
    let baseline = api::render_api_baseline(&api::api_entries(&ws));
    let (ref_diags, ref_stats) =
        analyze_workspace(&canonical, Some(("scripts/api-baseline.txt", &baseline)));
    let ref_json = diagnostics_to_json(&ref_diags);
    let ref_stats_json = semantic_stats_to_json(&ref_stats);
    let ref_effects_json = workspace_effect_table_json(&canonical);

    for mut rng in rngs().take(12) {
        let mut shuffled = canonical.clone();
        rng.shuffle(&mut shuffled);
        let (diags, stats) =
            analyze_workspace(&shuffled, Some(("scripts/api-baseline.txt", &baseline)));
        assert_eq!(diagnostics_to_json(&diags), ref_json);
        assert_eq!(semantic_stats_to_json(&stats), ref_stats_json);
        assert_eq!(workspace_effect_table_json(&shuffled), ref_effects_json);
    }
}

#[test]
fn severity_overrides_and_baseline_treat_r14_to_r20_uniformly() {
    use easytime_lint::{apply_severities, Baseline, Diagnostic, Rule, Severity};
    use std::path::Path;

    let rules = [
        Rule::ApiSnapshot,
        Rule::CrateLayering,
        Rule::LockDiscipline,
        Rule::DeadPub,
        Rule::HotPathAlloc,
        Rule::SwallowedResult,
        Rule::LockWhileHeavy,
    ];
    let mut diags: Vec<Diagnostic> = rules
        .iter()
        .map(|r| {
            Diagnostic::new(
                Path::new("crates/x/src/lib.rs"),
                1,
                *r,
                format!("probe {}", r.code()),
            )
        })
        .collect();

    // `--severity CODE=LEVEL` must hit every semantic rule through the one
    // shared path, matching codes case-insensitively like the CLI does.
    let demote: Vec<(String, Severity)> =
        rules.iter().map(|r| (r.code().to_ascii_lowercase(), Severity::Warn)).collect();
    apply_severities(&mut diags, &demote);
    for d in &diags {
        assert_eq!(d.severity, Severity::Warn, "{} ignored the override", d.rule.code());
    }
    let promote: Vec<(String, Severity)> =
        rules.iter().map(|r| (r.code().to_string(), Severity::Error)).collect();
    apply_severities(&mut diags, &promote);
    for d in &diags {
        assert_eq!(d.severity, Severity::Error, "{} ignored the override", d.rule.code());
    }

    // `--baseline` suppression keys work for every semantic rule too: one
    // `file<TAB>code<TAB>message` line per tolerated finding.
    let baseline_text: String = rules
        .iter()
        .map(|r| format!("crates/x/src/lib.rs\t{}\tprobe {}\n", r.code(), r.code()))
        .collect();
    let (kept, suppressed) = Baseline::parse(&baseline_text).apply(diags);
    assert_eq!(suppressed, rules.len());
    assert!(kept.is_empty(), "unsuppressed: {kept:?}");
}

#[test]
fn duplicate_sources_collapse() {
    let mut sources = fixture();
    sources.extend(fixture());
    let ws = WorkspaceModel::build(&sources);
    assert_eq!(ws.files.len(), 3);
    assert_eq!(ws.crates.len(), 2);
}
