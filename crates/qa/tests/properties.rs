//! Property-style tests for the Q&A module, driven by the workspace's own
//! deterministic RNG. The headline property mirrors the paper's
//! verification guarantee: **every SQL statement the NL2SQL generator can
//! emit passes schema verification and executes** against the knowledge
//! schema.

use easytime_db::knowledge::create_knowledge_schema;
use easytime_db::Database;
use easytime_qa::intent::{CharacteristicFilter, HorizonClass, Intent, IntentKind};
use easytime_qa::nl2sql::{generate_sql, parse_question, Lexicon};
use easytime_rng::StdRng;

const CASES: u64 = 64;
const MASTER_SEED: u64 = 0x9A5E_ED01;

fn cases() -> impl Iterator<Item = StdRng> {
    (0..CASES).map(|i| StdRng::seed_from_u64(MASTER_SEED).derive(i))
}

fn knowledge_db() -> Database {
    let mut db = Database::new();
    create_knowledge_schema(&mut db).unwrap();
    db
}

fn word(rng: &mut StdRng, alphabet: &[u8], lo: usize, hi: usize) -> String {
    let len = rng.gen_range(lo..hi);
    (0..len).map(|_| alphabet[rng.gen_range(0..alphabet.len())] as char).collect()
}

fn ident(rng: &mut StdRng) -> String {
    word(rng, b"abcdefghijklmnopqrstuvwxyz_", 1, 13)
}

fn name_with_quote(rng: &mut StdRng) -> String {
    word(rng, b"abcdefghijklmnopqrstuvwxyz_'", 1, 13)
}

fn any_kind(rng: &mut StdRng) -> IntentKind {
    match rng.gen_range(0..9) {
        0 => IntentKind::TopMethods,
        1 => IntentKind::CompareMethods { a: ident(rng), b: ident(rng) },
        2 => IntentKind::CountDatasets,
        3 => IntentKind::CountMethods,
        4 => IntentKind::ListDomains,
        5 => IntentKind::MethodInfo { name: name_with_quote(rng) },
        6 => IntentKind::FastestMethods,
        7 => IntentKind::WorstMethods,
        _ => IntentKind::MethodProfile { name: name_with_quote(rng) },
    }
}

fn any_horizon(rng: &mut StdRng) -> Option<HorizonClass> {
    match rng.gen_range(0..4) {
        0 => None,
        1 => Some(HorizonClass::Short),
        2 => Some(HorizonClass::Long),
        _ => Some(HorizonClass::Exact(rng.gen_range(1..512))),
    }
}

fn any_characteristics(rng: &mut StdRng) -> Vec<CharacteristicFilter> {
    const COLS: [&str; 6] =
        ["seasonality", "trend", "transition", "shifting", "stationarity", "correlation"];
    (0..rng.gen_range(0..3))
        .map(|_| CharacteristicFilter {
            column: COLS[rng.gen_range(0..COLS.len())].into(),
            strong: rng.gen_bool(0.5),
        })
        .collect()
}

fn any_intent(rng: &mut StdRng) -> Intent {
    const METRICS: [&str; 6] = ["mae", "mse", "rmse", "smape", "mase", "r2"];
    const STRATEGIES: [&str; 2] = ["fixed", "rolling"];
    const FAMILIES: [&str; 3] = ["statistical", "machine_learning", "deep_learning"];
    Intent {
        kind: any_kind(rng),
        metric: METRICS[rng.gen_range(0..METRICS.len())].into(),
        top_n: rng.gen_range(1..20),
        horizon: any_horizon(rng),
        domain: rng
            .gen_bool(0.5)
            .then(|| word(rng, b"abcdefghijklmnopqrstuvwxyz", 3, 11)),
        characteristics: any_characteristics(rng),
        multivariate: rng.gen_bool(0.5).then(|| rng.gen_bool(0.5)),
        strategy: rng.gen_bool(0.5).then(|| STRATEGIES[rng.gen_range(0..2)].to_string()),
        family: rng.gen_bool(0.5).then(|| FAMILIES[rng.gen_range(0..3)].to_string()),
    }
}

/// The paper's two-step guarantee, as a machine-checked property: whatever
/// intent the parser produces, the generated SQL verifies and executes
/// against the knowledge schema.
#[test]
fn every_generated_sql_verifies_and_executes() {
    for mut rng in cases() {
        let intent = any_intent(&mut rng);
        let db = knowledge_db();
        let sql = generate_sql(&intent);
        let result = db.query(&sql);
        assert!(result.is_ok(), "generated SQL failed: {sql}\nerror: {:?}", result.err());
    }
}

/// Parsing never panics on arbitrary input; it either produces an intent
/// or a clean error.
#[test]
fn parser_is_total_on_arbitrary_text() {
    for mut rng in cases() {
        let len = rng.gen_range(0..80);
        let question: String =
            (0..len).map(|_| (b' ' + rng.gen_range(0..95) as u8) as char).collect();
        let lexicon = Lexicon {
            methods: vec!["naive".into(), "theta".into(), "seasonal_naive".into()],
            domains: vec!["web".into(), "traffic".into()],
        };
        let _ = parse_question(&question, &lexicon);
    }
}

/// Questions that do parse always yield SQL that verifies against the
/// schema — the end-to-end totality of the Figure-3 path.
#[test]
fn parsed_questions_yield_executable_sql() {
    const METRICS: [&str; 4] = ["mae", "rmse", "smape", "mase"];
    const DOMAINS: [&str; 3] = ["web", "traffic", "nature"];
    for mut rng in cases() {
        let n = rng.gen_range(1..12);
        let metric = METRICS[rng.gen_range(0..METRICS.len())];
        let domain = DOMAINS[rng.gen_range(0..DOMAINS.len())];
        let long = rng.gen_bool(0.5);
        let lexicon = Lexicon {
            methods: vec!["naive".into(), "theta".into()],
            domains: vec!["web".into(), "traffic".into(), "nature".into()],
        };
        let horizon = if long { "long-term" } else { "short-term" };
        let question =
            format!("top {n} methods by {metric} for {horizon} forecasting on {domain} data");
        let (intent, _) = parse_question(&question, &lexicon).unwrap();
        assert_eq!(intent.top_n, n);
        assert_eq!(intent.metric.as_str(), metric);
        assert_eq!(intent.domain.as_deref(), Some(domain));
        let db = knowledge_db();
        assert!(db.query(&generate_sql(&intent)).is_ok());
    }
}
