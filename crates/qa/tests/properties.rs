//! Property-based tests for the Q&A module. The headline property mirrors
//! the paper's verification guarantee: **every SQL statement the NL2SQL
//! generator can emit passes schema verification and executes** against
//! the knowledge schema.

use easytime_db::knowledge::create_knowledge_schema;
use easytime_db::Database;
use easytime_qa::intent::{CharacteristicFilter, HorizonClass, Intent, IntentKind};
use easytime_qa::nl2sql::{generate_sql, parse_question, Lexicon};
use proptest::prelude::*;

fn knowledge_db() -> Database {
    let mut db = Database::new();
    create_knowledge_schema(&mut db).unwrap();
    db
}

fn any_kind() -> impl Strategy<Value = IntentKind> {
    prop_oneof![
        Just(IntentKind::TopMethods),
        ("[a-z_]{1,12}", "[a-z_]{1,12}")
            .prop_map(|(a, b)| IntentKind::CompareMethods { a, b }),
        Just(IntentKind::CountDatasets),
        Just(IntentKind::CountMethods),
        Just(IntentKind::ListDomains),
        "[a-z_']{1,12}".prop_map(|name| IntentKind::MethodInfo { name }),
        Just(IntentKind::FastestMethods),
        Just(IntentKind::WorstMethods),
        "[a-z_']{1,12}".prop_map(|name| IntentKind::MethodProfile { name }),
    ]
}

fn any_horizon() -> impl Strategy<Value = Option<HorizonClass>> {
    prop_oneof![
        Just(None),
        Just(Some(HorizonClass::Short)),
        Just(Some(HorizonClass::Long)),
        (1usize..512).prop_map(|h| Some(HorizonClass::Exact(h))),
    ]
}

fn any_characteristics() -> impl Strategy<Value = Vec<CharacteristicFilter>> {
    let col = prop::sample::select(vec![
        "seasonality",
        "trend",
        "transition",
        "shifting",
        "stationarity",
        "correlation",
    ]);
    prop::collection::vec(
        (col, any::<bool>())
            .prop_map(|(c, strong)| CharacteristicFilter { column: c.into(), strong }),
        0..3,
    )
}

fn any_intent() -> impl Strategy<Value = Intent> {
    (
        any_kind(),
        prop::sample::select(vec!["mae", "mse", "rmse", "smape", "mase", "r2"]),
        1usize..20,
        any_horizon(),
        prop::option::of("[a-z]{3,10}"),
        any_characteristics(),
        prop::option::of(any::<bool>()),
        prop::option::of(prop::sample::select(vec!["fixed", "rolling"])),
        prop::option::of(prop::sample::select(vec![
            "statistical",
            "machine_learning",
            "deep_learning",
        ])),
    )
        .prop_map(
            |(kind, metric, top_n, horizon, domain, characteristics, multivariate, strategy, family)| {
                Intent {
                    kind,
                    metric: metric.into(),
                    top_n,
                    horizon,
                    domain,
                    characteristics,
                    multivariate,
                    strategy: strategy.map(String::from),
                    family: family.map(String::from),
                }
            },
        )
}

proptest! {
    /// The paper's two-step guarantee, as a machine-checked property:
    /// whatever intent the parser produces, the generated SQL verifies and
    /// executes against the knowledge schema.
    #[test]
    fn every_generated_sql_verifies_and_executes(intent in any_intent()) {
        let db = knowledge_db();
        let sql = generate_sql(&intent);
        let result = db.query(&sql);
        prop_assert!(result.is_ok(), "generated SQL failed: {sql}\nerror: {:?}", result.err());
    }

    /// Parsing never panics on arbitrary input; it either produces an
    /// intent or a clean error.
    #[test]
    fn parser_is_total_on_arbitrary_text(question in "[ -~]{0,80}") {
        let lexicon = Lexicon {
            methods: vec!["naive".into(), "theta".into(), "seasonal_naive".into()],
            domains: vec!["web".into(), "traffic".into()],
        };
        let _ = parse_question(&question, &lexicon);
    }

    /// Questions that do parse always yield SQL that verifies against the
    /// schema — the end-to-end totality of the Figure-3 path.
    #[test]
    fn parsed_questions_yield_executable_sql(
        n in 1usize..12,
        metric in prop::sample::select(vec!["mae", "rmse", "smape", "mase"]),
        domain in prop::sample::select(vec!["web", "traffic", "nature"]),
        long in any::<bool>(),
    ) {
        let lexicon = Lexicon {
            methods: vec!["naive".into(), "theta".into()],
            domains: vec!["web".into(), "traffic".into(), "nature".into()],
        };
        let horizon = if long { "long-term" } else { "short-term" };
        let question = format!("top {n} methods by {metric} for {horizon} forecasting on {domain} data");
        let (intent, _) = parse_question(&question, &lexicon).unwrap();
        prop_assert_eq!(intent.top_n, n);
        prop_assert_eq!(intent.metric.as_str(), metric);
        prop_assert_eq!(intent.domain.as_deref(), Some(domain));
        let db = knowledge_db();
        prop_assert!(db.query(&generate_sql(&intent)).is_ok());
    }
}
