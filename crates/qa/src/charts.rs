//! Chart payloads for query results.
//!
//! The paper's post-processing step returns "structured data outputs
//! compatible with various types of charts" (§II-D) and the frontend
//! renders "bar charts, line charts, pie charts, etc." (Figure 5, label 3).
//! [`ChartSpec`] is that structured payload: it serializes to JSON for a
//! frontend and renders as an ASCII bar chart for the terminal demo.

use easytime_db::{QueryResult, Value};

/// Chart type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// lint: allow(dead-pub) — reachable through a pub field of an exported type, which R17's item-signature scan does not cover
pub enum ChartKind {
    /// Categorical bars.
    Bar,
    /// Ordered line.
    Line,
    /// Share-of-total pie.
    Pie,
}

impl ChartKind {
    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ChartKind::Bar => "bar",
            ChartKind::Line => "line",
            ChartKind::Pie => "pie",
        }
    }
}

/// A renderable chart: labelled numeric points.
#[derive(Debug, Clone, PartialEq)]
// lint: allow(dead-pub) — reachable as a value through a pub field; R17's name-based liveness cannot see value flow
pub struct ChartSpec {
    /// Chart type.
    pub kind: ChartKind,
    /// Chart title.
    pub title: String,
    /// Label axis name (the text column).
    pub label_axis: String,
    /// Value axis name (the numeric column).
    pub value_axis: String,
    /// `(label, value)` points in result order.
    pub points: Vec<(String, f64)>,
}

impl ChartSpec {
    /// Builds a chart from a query result: the first text column provides
    /// labels and the first numeric column provides values. Returns `None`
    /// when the result has no such pair or no rows.
    pub(crate) fn from_result(title: &str, result: &QueryResult) -> Option<ChartSpec> {
        if result.rows.is_empty() {
            return None;
        }
        let ncols = result.columns.len();
        let mut label_col = None;
        let mut value_col = None;
        for c in 0..ncols {
            let first = &result.rows[0][c];
            match first {
                Value::Text(_) if label_col.is_none() => label_col = Some(c),
                Value::Int(_) | Value::Float(_) if value_col.is_none() => value_col = Some(c),
                _ => {}
            }
        }
        let (lc, vc) = (label_col?, value_col?);
        let points: Vec<(String, f64)> = result
            .rows
            .iter()
            .filter_map(|r| {
                let label = r[lc].as_str()?.to_string();
                let value = r[vc].as_f64()?;
                value.is_finite().then_some((label, value))
            })
            .collect();
        if points.is_empty() {
            return None;
        }
        // Heuristic (mirrors the paper's "bar charts, line charts, pie
        // charts, etc."): count-like columns over few categories are
        // share-of-total data → pie; many points → line; otherwise bars.
        let value_name = result.columns[vc].to_ascii_lowercase();
        let count_like = ["count", "datasets", "methods", "runs", "n"]
            .iter()
            .any(|k| value_name == *k || value_name.contains("count"))
            || value_name == "datasets"
            || value_name == "methods";
        let all_non_negative = points.iter().all(|(_, v)| *v >= 0.0);
        let kind = if points.len() > 12 {
            ChartKind::Line
        } else if count_like && all_non_negative && points.len() >= 2 {
            ChartKind::Pie
        } else {
            ChartKind::Bar
        };
        Some(ChartSpec {
            kind,
            title: title.to_string(),
            label_axis: result.columns[lc].clone(),
            value_axis: result.columns[vc].clone(),
            points,
        })
    }

    /// Serializes the spec to JSON (hand-rolled; the payload is small and
    /// flat, so no serde dependency is warranted).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let points: Vec<String> = self
            .points
            .iter()
            .map(|(l, v)| format!("{{\"label\":\"{}\",\"value\":{}}}", esc(l), v))
            .collect();
        format!(
            "{{\"kind\":\"{}\",\"title\":\"{}\",\"label_axis\":\"{}\",\"value_axis\":\"{}\",\"points\":[{}]}}",
            self.kind.name(),
            esc(&self.title),
            esc(&self.label_axis),
            esc(&self.value_axis),
            points.join(",")
        )
    }

    /// Renders the chart as ASCII (the terminal stand-in for the web
    /// frontend's charts). Bars and lines render as scaled horizontal
    /// bars; pies render as a share-of-total breakdown.
    pub fn render_ascii(&self, width: usize) -> String {
        let width = width.clamp(10, 200);
        let max_label = self.points.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let mut out = format!("{} ({} by {})\n", self.title, self.value_axis, self.label_axis);
        match self.kind {
            ChartKind::Pie => {
                let total: f64 = self.points.iter().map(|(_, v)| v).sum();
                for (label, value) in &self.points {
                    let share = if total > 0.0 { value / total } else { 0.0 };
                    let bar_len = (share * width as f64).round() as usize;
                    out.push_str(&format!(
                        "  {label:<max_label$} | {bar} {pct:.1}% ({value:.0})\n",
                        bar = "◼".repeat(bar_len.max(usize::from(share > 0.0))),
                        pct = share * 100.0,
                    ));
                }
            }
            ChartKind::Bar | ChartKind::Line => {
                let max_value =
                    self.points.iter().map(|(_, v)| v.abs()).fold(0.0_f64, f64::max);
                for (label, value) in &self.points {
                    let bar_len = if max_value > 0.0 {
                        ((value.abs() / max_value) * width as f64).round() as usize
                    } else {
                        0
                    };
                    out.push_str(&format!(
                        "  {label:<max_label$} | {bar} {value:.4}\n",
                        bar = "█".repeat(bar_len.max(usize::from(*value != 0.0))),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> QueryResult {
        QueryResult {
            columns: vec!["method".into(), "mean_mae".into(), "runs".into()],
            rows: vec![
                vec![Value::Text("theta".into()), Value::Float(1.25), Value::Int(40)],
                vec![Value::Text("naive".into()), Value::Float(2.5), Value::Int(40)],
            ],
        }
    }

    #[test]
    fn builds_bar_chart_from_result() {
        let chart = ChartSpec::from_result("Top methods", &result()).unwrap();
        assert_eq!(chart.kind, ChartKind::Bar);
        assert_eq!(chart.label_axis, "method");
        assert_eq!(chart.value_axis, "mean_mae");
        assert_eq!(chart.points.len(), 2);
        assert_eq!(chart.points[0], ("theta".to_string(), 1.25));
    }

    #[test]
    fn long_results_become_line_charts() {
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|i| vec![Value::Text(format!("m{i}")), Value::Float(i as f64)])
            .collect();
        let r = QueryResult { columns: vec!["m".into(), "v".into()], rows };
        let chart = ChartSpec::from_result("t", &r).unwrap();
        assert_eq!(chart.kind, ChartKind::Line);
    }

    #[test]
    fn count_results_become_pie_charts() {
        let r = QueryResult {
            columns: vec!["domain".into(), "datasets".into()],
            rows: vec![
                vec![Value::Text("web".into()), Value::Int(6)],
                vec![Value::Text("traffic".into()), Value::Int(3)],
                vec![Value::Text("nature".into()), Value::Int(1)],
            ],
        };
        let chart = ChartSpec::from_result("Domains", &r).unwrap();
        assert_eq!(chart.kind, ChartKind::Pie);
        let text = chart.render_ascii(20);
        assert!(text.contains("60.0%"), "{text}");
        assert!(text.contains("30.0%"));
        assert!(text.contains("10.0%"));
        assert!(text.contains('◼'));
    }

    #[test]
    fn metric_results_stay_bars() {
        let chart = ChartSpec::from_result("Top", &result()).unwrap();
        assert_eq!(chart.kind, ChartKind::Bar, "mean_mae is not count-like");
    }

    #[test]
    fn unplottable_results_return_none() {
        let no_rows = QueryResult { columns: vec!["a".into()], rows: vec![] };
        assert!(ChartSpec::from_result("t", &no_rows).is_none());
        let text_only = QueryResult {
            columns: vec!["a".into()],
            rows: vec![vec![Value::Text("x".into())]],
        };
        assert!(ChartSpec::from_result("t", &text_only).is_none());
        let numeric_only = QueryResult {
            columns: vec!["n".into()],
            rows: vec![vec![Value::Int(3)]],
        };
        assert!(ChartSpec::from_result("t", &numeric_only).is_none());
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut chart = ChartSpec::from_result("Top \"methods\"", &result()).unwrap();
        chart.points[0].0 = "the\\ta".into();
        let json = chart.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\\\"methods\\\""));
        assert!(json.contains("the\\\\ta"));
        assert!(json.contains("\"kind\":\"bar\""));
        assert!(json.contains("\"value\":1.25"));
    }

    #[test]
    fn ascii_render_scales_bars() {
        let chart = ChartSpec::from_result("Top", &result()).unwrap();
        let text = chart.render_ascii(20);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let bars: Vec<usize> =
            lines[1..].iter().map(|l| l.matches('█').count()).collect();
        // naive (2.5) should have the longer bar than theta (1.25).
        assert!(bars[1] > bars[0]);
        assert_eq!(bars[1], 20);
    }
}
