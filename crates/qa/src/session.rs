//! Multi-turn Q&A sessions.
//!
//! A [`QaSession`] owns the connection to the knowledge base and the
//! conversation history. Each `ask` runs the full Figure 3 pipeline —
//! parse → (history merge) → SQL generation → verification → execution →
//! answer + chart — and records the exchange so follow-up questions like
//! "and what about RMSE?" inherit the previous filters (the paper's
//! "pre-stored benchmark metadata, Q&A history" context).

use crate::answer::generate_answer;
use crate::charts::ChartSpec;
use crate::error::QaError;
use crate::intent::Intent;
use crate::nl2sql::{generate_sql, parse_question, Lexicon};
use easytime_db::{Database, QueryResult};
use easytime_clock::Stopwatch;

/// Everything returned for one question (Figure 5, labels 2–5).
#[derive(Debug, Clone, PartialEq)]
pub struct QaResponse {
    /// The original question.
    pub question: String,
    /// The resolved intent (after history merging).
    pub intent: Intent,
    /// The generated SQL statement.
    pub sql: String,
    /// The query planner's explain: chosen access path, join strategy, and
    /// sort treatment (deterministic for a given knowledge base).
    pub plan: String,
    /// The natural-language answer.
    pub answer: String,
    /// Chart payload, when the result is plottable.
    pub chart: Option<ChartSpec>,
    /// The raw result table.
    pub table: QueryResult,
    /// End-to-end latency in milliseconds.
    pub latency_ms: f64,
}

/// A Q&A session over a populated knowledge base.
#[derive(Debug)]
pub struct QaSession {
    db: Database,
    lexicon: Lexicon,
    history: Vec<(String, Intent)>,
}

impl QaSession {
    /// Opens a session, extracting the entity lexicon (method names and
    /// domains) from the knowledge base.
    pub fn new(db: Database) -> Result<QaSession, QaError> {
        let methods = db
            .query("SELECT name FROM methods")?
            .rows
            .into_iter()
            .filter_map(|r| r.into_iter().next().and_then(|v| v.as_str().map(str::to_string)))
            .collect();
        let domains = db
            .query("SELECT DISTINCT domain FROM datasets")?
            .rows
            .into_iter()
            .filter_map(|r| r.into_iter().next().and_then(|v| v.as_str().map(str::to_string)))
            .collect();
        Ok(QaSession { db, lexicon: Lexicon { methods, domains }, history: Vec::new() })
    }

    /// Read access to the underlying knowledge base (for direct SQL from
    /// power users, Figure 5 label 4).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The extracted entity lexicon.
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// Number of exchanges so far (test diagnostics).
    #[cfg(test)]
    pub(crate) fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Clears the conversation history (a "new chat" in the frontend);
    /// follow-up slot carry-over starts fresh afterwards.
    pub fn reset(&mut self) {
        self.history.clear();
    }

    /// Asks a question; runs the full pipeline.
    pub fn ask(&mut self, question: &str) -> Result<QaResponse, QaError> {
        let started = Stopwatch::start();
        let mut ask_span = easytime_obs::span("qa.ask");
        ask_span.attr_u64("history", self.history.len() as u64);

        // 1–2. NL2SQL with history context. Only elliptical follow-ups
        // (questions that do not restate an intent kind, e.g. "what about
        // sMAPE?") inherit the previous question's slots; a fully-formed
        // new question stands alone.
        let (parsed, explicit) = {
            let _sp = easytime_obs::span("qa.parse");
            parse_question(question, &self.lexicon)?
        };
        let intent = match self.history.last() {
            Some((_, previous)) if !explicit.kind => parsed.merged_into(previous, &explicit),
            _ => parsed,
        };
        let sql = {
            let _sp = easytime_obs::span("qa.nl2sql");
            generate_sql(&intent)
        };

        // 3. Retrieval: `Database::query_with_plan` verifies, plans, and
        // executes; the explain rides along for power users (Figure 5
        // label 4).
        let (table, plan) = {
            let mut sp = easytime_obs::span("qa.execute");
            let (table, plan) = self.db.query_with_plan(&sql)?;
            sp.attr_u64("rows", table.rows.len() as u64);
            (table, plan)
        };

        // 4–5. Generation + post-processing.
        let (answer, chart) = {
            let _sp = easytime_obs::span("qa.answer");
            (generate_answer(&intent, &table), ChartSpec::from_result(question, &table))
        };
        ask_span.attr_u64("rows", table.rows.len() as u64);

        self.history.push((question.to_string(), intent.clone()));
        Ok(QaResponse {
            question: question.to_string(),
            intent,
            sql,
            plan,
            answer,
            chart,
            table,
            latency_ms: started.elapsed_ms(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easytime_db::knowledge::{
        create_knowledge_schema, insert_dataset, insert_method, insert_result, DatasetRow,
        MethodRow, ResultRow,
    };

    fn knowledge_db() -> Database {
        let mut db = Database::new();
        create_knowledge_schema(&mut db).expect("schema creation succeeds on a fresh database");
        for (id, domain, trend, mv) in [
            ("web_01", "web", 0.8, false),
            ("web_02", "web", 0.7, true),
            ("eco_01", "economic", 0.2, false),
        ] {
            insert_dataset(
                &mut db,
                &DatasetRow {
                    id: id.into(),
                    domain: domain.into(),
                    length: 400,
                    frequency: "daily".into(),
                    channels: if mv { 3 } else { 1 },
                    seasonality: 0.5,
                    trend,
                    transition: 0.1,
                    shifting: 0.2,
                    stationarity: 0.3,
                    correlation: if mv { 0.7 } else { 0.0 },
                    period: 7,
                },
            )
            .expect("value is present");
        }
        for (name, family, desc) in [
            ("naive", "statistical", "repeat the last observation"),
            ("theta", "statistical", "the Theta method"),
            ("dlinear_32", "machine_learning", "decomposition linear model"),
        ] {
            insert_method(
                &mut db,
                &MethodRow { name: name.into(), family: family.into(), description: desc.into() },
            )
            .expect("insert_method succeeds");
        }
        let mut push = |dataset: &str, method: &str, horizon: i64, mae: f64, rt: f64| {
            insert_result(
                &mut db,
                &ResultRow {
                    dataset_id: dataset.into(),
                    method: method.into(),
                    strategy: "rolling".into(),
                    horizon,
                    mae: Some(mae),
                    mse: Some(mae * mae),
                    rmse: Some(mae),
                    smape: Some(mae * 10.0),
                    mase: Some(mae / 2.0),
                    r2: Some(1.0 - mae / 10.0),
                    runtime_ms: rt,
                    windows: 4,
                },
            )
            .expect("value is present");
        };
        for d in ["web_01", "web_02", "eco_01"] {
            push(d, "naive", 96, 3.0, 0.5);
            push(d, "theta", 96, 2.0, 2.0);
            push(d, "dlinear_32", 96, 2.5, 5.0);
            push(d, "naive", 24, 1.5, 0.5);
            push(d, "theta", 24, 1.0, 2.0);
            push(d, "dlinear_32", 24, 0.8, 5.0);
        }
        db
    }

    #[test]
    fn session_extracts_lexicon() {
        let session = QaSession::new(knowledge_db()).expect("construction succeeds with valid parameters");
        assert_eq!(session.lexicon().methods.len(), 3);
        assert!(session.lexicon().domains.contains(&"web".to_string()));
    }

    #[test]
    fn end_to_end_top_methods_question() {
        let mut session = QaSession::new(knowledge_db()).expect("construction succeeds with valid parameters");
        let r = session
            .ask("What are the top 3 methods ordered by MAE for long-term forecasting?")
            .expect("question is answered");
        assert!(r.sql.contains("r.horizon >= 96"));
        assert_eq!(r.table.rows.len(), 3);
        assert!(r.answer.contains("theta"), "answer: {}", r.answer);
        assert!(r.answer.contains("1. theta"));
        let chart = r.chart.expect("rankable result should chart");
        assert_eq!(chart.points[0].0, "theta");
        assert!(r.latency_ms >= 0.0);
    }

    #[test]
    fn follow_up_inherits_filters() {
        let mut session = QaSession::new(knowledge_db()).expect("construction succeeds with valid parameters");
        session
            .ask("Top 3 methods by MAE for long-term forecasting on web datasets?")
            .expect("question is answered");
        // Follow-up changes only the metric; the long-term + web filters
        // must carry over.
        let r = session.ask("what about smape?").expect("question is answered");
        assert!(r.sql.contains("smape"));
        assert!(r.sql.contains("r.horizon >= 96"), "sql: {}", r.sql);
        assert!(r.sql.contains("d.domain = 'web'"), "sql: {}", r.sql);
        assert_eq!(session.history_len(), 2);
    }

    #[test]
    fn comparison_and_info_questions() {
        let mut session = QaSession::new(knowledge_db()).expect("construction succeeds with valid parameters");
        let cmp = session.ask("Is theta better than naive by MAE?").expect("question is answered");
        assert!(cmp.answer.contains("theta outperforms naive"), "{}", cmp.answer);

        let info = session.ask("Tell me about dlinear").expect("question is answered");
        assert!(info.answer.contains("machine learning"), "{}", info.answer);
    }

    #[test]
    fn count_questions_hit_dataset_filters() {
        let mut session = QaSession::new(knowledge_db()).expect("construction succeeds with valid parameters");
        let r = session.ask("How many multivariate datasets are there?").expect("question is answered");
        assert!(r.answer.contains('1'), "{}", r.answer);
        let r = session.ask("How many datasets have strong trends?").expect("question is answered");
        assert!(r.answer.contains('2'), "{}", r.answer);
    }

    #[test]
    fn fastest_question_uses_runtime() {
        let mut session = QaSession::new(knowledge_db()).expect("construction succeeds with valid parameters");
        let r = session.ask("Which are the 2 fastest methods?").expect("question is answered");
        assert!(r.sql.contains("runtime_ms"));
        assert!(r.answer.starts_with("The fastest methods"));
        assert!(r.answer.contains("naive"), "{}", r.answer);
    }

    #[test]
    fn reset_clears_follow_up_context() {
        let mut session = QaSession::new(knowledge_db()).expect("construction succeeds with valid parameters");
        session.ask("top 3 methods by mae for long-term forecasting on web datasets").expect("question is answered");
        session.reset();
        assert_eq!(session.history_len(), 0);
        // Without history, the elliptical follow-up stands alone: no
        // long-term or web filters.
        let r = session.ask("what about smape?").expect("question is answered");
        assert!(!r.sql.contains("horizon"), "sql: {}", r.sql);
        assert!(!r.sql.contains("domain"), "sql: {}", r.sql);
    }

    #[test]
    fn worst_methods_and_profile_questions() {
        let mut session = QaSession::new(knowledge_db()).expect("construction succeeds with valid parameters");
        let worst = session.ask("which 2 methods struggle the most by mae?").expect("question is answered");
        assert!(worst.answer.contains("weakest"), "{}", worst.answer);
        // naive has the highest MAE in the fixture.
        assert!(worst.table.rows[0][0].to_string() == "naive");

        let profile = session.ask("where does theta perform best?").expect("question is answered");
        assert!(profile.answer.contains("performs best on"), "{}", profile.answer);
        assert!(profile.sql.contains("GROUP BY d.domain"));
        // Two domains in the fixture → two profile rows.
        assert_eq!(profile.table.rows.len(), 2);
    }

    #[test]
    fn unanswerable_question_errors_cleanly() {
        let mut session = QaSession::new(knowledge_db()).expect("construction succeeds with valid parameters");
        assert!(matches!(
            session.ask("sing me a song"),
            Err(QaError::UnparsableQuestion { .. })
        ));
        assert_eq!(session.history_len(), 0, "failed questions stay out of history");
    }
}
