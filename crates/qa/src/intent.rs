//! Typed meaning representation of a benchmark question.
//!
//! The semantic parser fills an [`Intent`]; the SQL generator compiles it.
//! Keeping the representation explicit (rather than going text-to-text)
//! gives the session layer clean slot carry-over for follow-up questions.

/// What the user wants to know.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntentKind {
    /// Ranked methods by a metric ("top-8 methods by MAE …").
    TopMethods,
    /// Head-to-head comparison of two named methods.
    CompareMethods {
        /// First method name.
        a: String,
        /// Second method name.
        b: String,
    },
    /// Count datasets matching the filters.
    CountDatasets,
    /// Count registered methods.
    CountMethods,
    /// List the domains in the corpus.
    ListDomains,
    /// Meta-information about one named method.
    MethodInfo {
        /// The method name.
        name: String,
    },
    /// Fastest methods by runtime.
    FastestMethods,
    /// Ranked methods by a metric, worst first ("which methods struggle…").
    WorstMethods,
    /// Per-domain performance profile of one named method.
    MethodProfile {
        /// The method name.
        name: String,
    },
}

/// Horizon filter classes used in questions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HorizonClass {
    /// "short-term": horizon ≤ 24.
    Short,
    /// "long-term": horizon ≥ 96.
    Long,
    /// An explicit horizon value.
    Exact(usize),
}

impl HorizonClass {
    /// SQL predicate over the `horizon` column.
    pub(crate) fn predicate(&self, column: &str) -> String {
        match self {
            HorizonClass::Short => format!("{column} <= 24"),
            HorizonClass::Long => format!("{column} >= 96"),
            HorizonClass::Exact(h) => format!("{column} = {h}"),
        }
    }
}

/// A dataset-characteristic filter ("with trends", "with strong
/// seasonality").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharacteristicFilter {
    /// Column in the `datasets` table (`trend`, `seasonality`, …).
    pub column: String,
    /// Whether the question asks for a *strong* (≥ 0.6) or weak (< 0.4)
    /// presence.
    pub strong: bool,
}

/// The full meaning representation.
#[derive(Debug, Clone, PartialEq)]
pub struct Intent {
    /// The question class.
    pub kind: IntentKind,
    /// Metric that orders results (`mae`, `rmse`, `smape`, …).
    pub metric: String,
    /// How many rows to return.
    pub top_n: usize,
    /// Horizon filter, when mentioned.
    pub horizon: Option<HorizonClass>,
    /// Domain filter, when mentioned.
    pub domain: Option<String>,
    /// Characteristic filters ("with trends").
    pub characteristics: Vec<CharacteristicFilter>,
    /// Multivariate/univariate filter.
    pub multivariate: Option<bool>,
    /// Evaluation-strategy filter (`fixed`/`rolling`).
    pub strategy: Option<String>,
    /// Method-family filter.
    pub family: Option<String>,
}

impl Default for Intent {
    fn default() -> Self {
        Intent {
            kind: IntentKind::TopMethods,
            metric: "mae".into(),
            top_n: 5,
            horizon: None,
            domain: None,
            characteristics: Vec::new(),
            multivariate: None,
            strategy: None,
            family: None,
        }
    }
}

impl Intent {
    /// Merges a follow-up intent over `self`: slots the follow-up filled
    /// explicitly win, everything else carries over from the session
    /// history (paper §II-D combines "Q&A history with the current user's
    /// natural language query").
    pub(crate) fn merged_into(self, previous: &Intent, explicit: &ExplicitSlots) -> Intent {
        Intent {
            kind: if explicit.kind { self.kind } else { previous.kind.clone() },
            metric: if explicit.metric { self.metric } else { previous.metric.clone() },
            top_n: if explicit.top_n { self.top_n } else { previous.top_n },
            horizon: if explicit.horizon { self.horizon } else { previous.horizon },
            domain: if explicit.domain { self.domain } else { previous.domain.clone() },
            characteristics: if explicit.characteristics {
                self.characteristics
            } else {
                previous.characteristics.clone()
            },
            multivariate: if explicit.multivariate {
                self.multivariate
            } else {
                previous.multivariate
            },
            strategy: if explicit.strategy { self.strategy } else { previous.strategy.clone() },
            family: if explicit.family { self.family } else { previous.family.clone() },
        }
    }
}

/// Tracks which slots a question filled explicitly (vs defaults), so
/// follow-ups only override what they mention.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExplicitSlots {
    /// The intent kind was stated.
    pub kind: bool,
    /// A metric was named.
    pub metric: bool,
    /// A result count was stated.
    pub top_n: bool,
    /// A horizon was mentioned.
    pub horizon: bool,
    /// A domain was named.
    pub domain: bool,
    /// Characteristics were mentioned.
    pub characteristics: bool,
    /// Uni/multivariate was mentioned.
    pub multivariate: bool,
    /// A strategy was named.
    pub strategy: bool,
    /// A family was named.
    pub family: bool,
}

impl ExplicitSlots {
    /// True when the question filled any slot at all (used to reject
    /// unintelligible input).
    pub fn any(&self) -> bool {
        self.kind
            || self.metric
            || self.top_n
            || self.horizon
            || self.domain
            || self.characteristics
            || self.multivariate
            || self.strategy
            || self.family
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_predicates() {
        assert_eq!(HorizonClass::Short.predicate("h"), "h <= 24");
        assert_eq!(HorizonClass::Long.predicate("r.horizon"), "r.horizon >= 96");
        assert_eq!(HorizonClass::Exact(48).predicate("horizon"), "horizon = 48");
    }

    #[test]
    fn merge_carries_previous_slots() {
        let previous = Intent {
            metric: "mae".into(),
            top_n: 8,
            horizon: Some(HorizonClass::Long),
            multivariate: Some(true),
            ..Intent::default()
        };
        // Follow-up only names a metric.
        let follow_up = Intent { metric: "rmse".into(), ..Intent::default() };
        let explicit = ExplicitSlots { metric: true, ..ExplicitSlots::default() };
        let merged = follow_up.merged_into(&previous, &explicit);
        assert_eq!(merged.metric, "rmse");
        assert_eq!(merged.top_n, 8);
        assert_eq!(merged.horizon, Some(HorizonClass::Long));
        assert_eq!(merged.multivariate, Some(true));
    }

    #[test]
    fn merge_respects_explicit_overrides() {
        let previous = Intent { top_n: 8, ..Intent::default() };
        let follow_up = Intent { top_n: 3, domain: Some("web".into()), ..Intent::default() };
        let explicit =
            ExplicitSlots { top_n: true, domain: true, ..ExplicitSlots::default() };
        let merged = follow_up.merged_into(&previous, &explicit);
        assert_eq!(merged.top_n, 3);
        assert_eq!(merged.domain.as_deref(), Some("web"));
    }

    #[test]
    fn explicit_slots_any() {
        assert!(!ExplicitSlots::default().any());
        assert!(ExplicitSlots { metric: true, ..ExplicitSlots::default() }.any());
    }
}
