//! Natural-language answer generation.
//!
//! Template-based rendering of query results into fluent answers — the
//! *Generation* / *Post-Processing* stages of Figure 3, with the LLM
//! substituted by deterministic templates keyed on the intent.

use crate::intent::{HorizonClass, Intent, IntentKind};
use easytime_db::QueryResult;

fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e12 {
        format!("{v:.0}")
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Describes the active filters in prose ("for long-term forecasting on
/// multivariate web datasets with strong trend, under rolling evaluation").
fn describe_filters(intent: &Intent) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some(h) = &intent.horizon {
        parts.push(match h {
            HorizonClass::Short => "for short-term forecasting (horizon ≤ 24)".into(),
            HorizonClass::Long => "for long-term forecasting (horizon ≥ 96)".into(),
            HorizonClass::Exact(n) => format!("at horizon {n}"),
        });
    }
    let mut dataset_bits: Vec<String> = Vec::new();
    if let Some(mv) = intent.multivariate {
        dataset_bits.push(if mv { "multivariate".into() } else { "univariate".into() });
    }
    if let Some(d) = &intent.domain {
        dataset_bits.push(d.clone());
    }
    if !dataset_bits.is_empty() {
        parts.push(format!("on {} datasets", dataset_bits.join(" ")));
    }
    if !intent.characteristics.is_empty() {
        let descs: Vec<String> = intent
            .characteristics
            .iter()
            .map(|c| {
                if c.strong {
                    format!("strong {}", c.column)
                } else {
                    format!("weak {}", c.column)
                }
            })
            .collect();
        parts.push(format!("with {}", descs.join(" and ")));
    }
    if let Some(s) = &intent.strategy {
        parts.push(format!("under {s} evaluation"));
    }
    if let Some(f) = &intent.family {
        parts.push(format!("among {} methods", f.replace('_', " ")));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!(" {}", parts.join(" "))
    }
}

/// Renders the natural-language answer for an intent's query result.
pub(crate) fn generate_answer(intent: &Intent, result: &QueryResult) -> String {
    if result.rows.is_empty() {
        return format!(
            "No benchmark results match your question{}. Try relaxing the filters.",
            describe_filters(intent)
        );
    }
    match &intent.kind {
        IntentKind::TopMethods => {
            let metric = intent.metric.to_uppercase();
            let filters = describe_filters(intent);
            if result.rows.len() == 1 {
                let method = result.rows[0][0].to_string();
                let score = result.rows[0][1].as_f64().map(fmt_num).unwrap_or_default();
                format!(
                    "The best method{filters} is {method}, with a mean {metric} of {score} \
                     across the matching benchmark runs."
                )
            } else {
                let mut out = format!(
                    "The top {} methods{filters}, ranked by mean {metric}, are:\n",
                    result.rows.len()
                );
                for (i, row) in result.rows.iter().enumerate() {
                    let score = row[1].as_f64().map(fmt_num).unwrap_or_default();
                    out.push_str(&format!("  {}. {} (mean {metric} {score})\n", i + 1, row[0]));
                }
                out.push_str(&format!(
                    "{} leads the ranking.",
                    result.rows[0][0]
                ));
                out
            }
        }
        IntentKind::CompareMethods { a, b } => {
            let metric = intent.metric.to_uppercase();
            let filters = describe_filters(intent);
            if result.rows.len() < 2 {
                let present = result.rows.first().map(|r| r[0].to_string());
                return match present {
                    Some(m) => format!(
                        "Only {m} has matching benchmark results{filters}; the other method has \
                         none, so no comparison is possible."
                    ),
                    None => format!("Neither {a} nor {b} has matching benchmark results{filters}."),
                };
            }
            let winner = &result.rows[0];
            let loser = &result.rows[1];
            let ws = winner[1].as_f64().unwrap_or(f64::NAN);
            let ls = loser[1].as_f64().unwrap_or(f64::NAN);
            let margin = if ws.is_finite() && ls.is_finite() && ws > 0.0 {
                format!(" ({:.1}% better)", (ls - ws) / ls * 100.0)
            } else {
                String::new()
            };
            format!(
                "{} outperforms {}{filters}: mean {metric} {} versus {}{margin}.",
                winner[0],
                loser[0],
                fmt_num(ws),
                fmt_num(ls)
            )
        }
        IntentKind::CountDatasets => {
            let n = result.rows[0][0].as_f64().unwrap_or(0.0);
            format!(
                "The benchmark contains {} matching dataset{}{}.",
                fmt_num(n),
                if n == 1.0 { "" } else { "s" },
                describe_filters(intent)
            )
        }
        IntentKind::CountMethods => {
            let n = result.rows[0][0].as_f64().unwrap_or(0.0);
            match &intent.family {
                Some(f) => format!(
                    "There are {} {} methods registered in the benchmark.",
                    fmt_num(n),
                    f.replace('_', " ")
                ),
                None => format!("There are {} methods registered in the benchmark.", fmt_num(n)),
            }
        }
        IntentKind::ListDomains => {
            let mut out = format!("The benchmark covers {} domains:\n", result.rows.len());
            for row in &result.rows {
                out.push_str(&format!(
                    "  - {} ({} datasets)\n",
                    row[0],
                    row[1].as_f64().map(fmt_num).unwrap_or_default()
                ));
            }
            out
        }
        IntentKind::MethodInfo { name } => {
            let row = &result.rows[0];
            format!(
                "{name} is a {} method: {}.",
                row[1].to_string().replace('_', " "),
                row[2]
            )
        }
        IntentKind::FastestMethods => {
            let filters = describe_filters(intent);
            let mut out = format!("The fastest methods{filters} by mean runtime are:\n");
            for (i, row) in result.rows.iter().enumerate() {
                out.push_str(&format!(
                    "  {}. {} ({} ms per evaluation)\n",
                    i + 1,
                    row[0],
                    row[1].as_f64().map(fmt_num).unwrap_or_default()
                ));
            }
            out
        }
        IntentKind::WorstMethods => {
            let metric = intent.metric.to_uppercase();
            let filters = describe_filters(intent);
            let mut out = format!(
                "The weakest {} methods{filters}, ranked by mean {metric} (worst first), are:\n",
                result.rows.len()
            );
            for (i, row) in result.rows.iter().enumerate() {
                let score = row[1].as_f64().map(fmt_num).unwrap_or_default();
                out.push_str(&format!("  {}. {} (mean {metric} {score})\n", i + 1, row[0]));
            }
            out
        }
        IntentKind::MethodProfile { name } => {
            let metric = intent.metric.to_uppercase();
            let best = &result.rows[0];
            let worst = &result.rows[result.rows.len() - 1];
            let mut out = format!(
                "{name} performs best on {} data (mean {metric} {}) and worst on {} data \
                 (mean {metric} {}). Full domain profile:\n",
                best[0],
                best[1].as_f64().map(fmt_num).unwrap_or_default(),
                worst[0],
                worst[1].as_f64().map(fmt_num).unwrap_or_default(),
            );
            for row in &result.rows {
                out.push_str(&format!(
                    "  - {}: mean {metric} {}\n",
                    row[0],
                    row[1].as_f64().map(fmt_num).unwrap_or_default()
                ));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intent::CharacteristicFilter;
    use easytime_db::Value;

    fn rows(data: Vec<Vec<Value>>) -> QueryResult {
        QueryResult {
            columns: vec!["method".into(), "mean_mae".into(), "runs".into()],
            rows: data,
        }
    }

    #[test]
    fn top_methods_answer_lists_ranking() {
        let intent = Intent {
            top_n: 2,
            horizon: Some(HorizonClass::Long),
            multivariate: Some(true),
            characteristics: vec![CharacteristicFilter { column: "trend".into(), strong: true }],
            ..Intent::default()
        };
        let result = rows(vec![
            vec![Value::Text("theta".into()), Value::Float(1.2), Value::Int(10)],
            vec![Value::Text("naive".into()), Value::Float(2.4), Value::Int(10)],
        ]);
        let answer = generate_answer(&intent, &result);
        assert!(answer.contains("top 2 methods"));
        assert!(answer.contains("long-term"));
        assert!(answer.contains("multivariate"));
        assert!(answer.contains("strong trend"));
        assert!(answer.contains("1. theta"));
        assert!(answer.contains("theta leads"));
    }

    #[test]
    fn single_best_method_gets_prose_answer() {
        let intent = Intent { top_n: 1, ..Intent::default() };
        let result =
            rows(vec![vec![Value::Text("theta".into()), Value::Float(1.234), Value::Int(4)]]);
        let answer = generate_answer(&intent, &result);
        assert!(answer.contains("best method"));
        assert!(answer.contains("theta"));
        assert!(answer.contains("1.234"));
    }

    #[test]
    fn comparison_reports_winner_and_margin() {
        let intent = Intent {
            kind: IntentKind::CompareMethods { a: "theta".into(), b: "naive".into() },
            ..Intent::default()
        };
        let result = rows(vec![
            vec![Value::Text("theta".into()), Value::Float(1.0), Value::Int(5)],
            vec![Value::Text("naive".into()), Value::Float(2.0), Value::Int(5)],
        ]);
        let answer = generate_answer(&intent, &result);
        assert!(answer.contains("theta outperforms naive"));
        assert!(answer.contains("50.0% better"));
    }

    #[test]
    fn comparison_with_missing_side_degrades() {
        let intent = Intent {
            kind: IntentKind::CompareMethods { a: "theta".into(), b: "ghost".into() },
            ..Intent::default()
        };
        let one = rows(vec![vec![Value::Text("theta".into()), Value::Float(1.0), Value::Int(5)]]);
        assert!(generate_answer(&intent, &one).contains("Only theta"));
        let none = rows(vec![]);
        assert!(generate_answer(&intent, &none).contains("No benchmark results"));
    }

    #[test]
    fn count_and_list_answers() {
        let count = QueryResult {
            columns: vec!["datasets".into()],
            rows: vec![vec![Value::Int(25)]],
        };
        let intent = Intent { kind: IntentKind::CountDatasets, ..Intent::default() };
        assert!(generate_answer(&intent, &count).contains("25 matching datasets"));

        let single = QueryResult {
            columns: vec!["datasets".into()],
            rows: vec![vec![Value::Int(1)]],
        };
        assert!(generate_answer(&intent, &single).contains("1 matching dataset."));

        let domains = QueryResult {
            columns: vec!["domain".into(), "datasets".into()],
            rows: vec![
                vec![Value::Text("web".into()), Value::Int(12)],
                vec![Value::Text("traffic".into()), Value::Int(8)],
            ],
        };
        let intent = Intent { kind: IntentKind::ListDomains, ..Intent::default() };
        let answer = generate_answer(&intent, &domains);
        assert!(answer.contains("covers 2 domains"));
        assert!(answer.contains("web (12 datasets)"));
    }

    #[test]
    fn method_info_answer() {
        let info = QueryResult {
            columns: vec!["name".into(), "family".into(), "description".into()],
            rows: vec![vec![
                Value::Text("theta".into()),
                Value::Text("statistical".into()),
                Value::Text("the Theta method (M3 winner)".into()),
            ]],
        };
        let intent =
            Intent { kind: IntentKind::MethodInfo { name: "theta".into() }, ..Intent::default() };
        let answer = generate_answer(&intent, &info);
        assert!(answer.contains("theta is a statistical method"));
        assert!(answer.contains("M3 winner"));
    }

    #[test]
    fn empty_results_suggest_relaxing_filters() {
        let intent = Intent { domain: Some("web".into()), ..Intent::default() };
        let answer = generate_answer(&intent, &rows(vec![]));
        assert!(answer.contains("No benchmark results"));
        assert!(answer.contains("web"));
        assert!(answer.contains("relaxing"));
    }
}
