//! Error type for the Q&A module.

use easytime_db::DbError;
use std::fmt;

/// Errors produced by the Q&A pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum QaError {
    /// The question could not be mapped to a supported intent.
    UnparsableQuestion {
        /// The original question.
        question: String,
        /// A hint about what the parser supports.
        hint: String,
    },
    /// Verification or execution against the knowledge base failed.
    Db(DbError),
}

impl fmt::Display for QaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QaError::UnparsableQuestion { question, hint } => {
                write!(f, "could not understand the question '{question}': {hint}")
            }
            QaError::Db(e) => write!(f, "knowledge-base error: {e}"),
        }
    }
}

impl std::error::Error for QaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QaError::Db(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DbError> for QaError {
    fn from(e: DbError) -> Self {
        QaError::Db(e)
    }
}
