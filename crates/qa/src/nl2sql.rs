//! NL2SQL: semantic parsing of benchmark questions and SQL generation.
//!
//! Substitutes the paper's LLM with a deterministic two-stage compiler:
//! a lexicon/pattern parser fills the typed [`Intent`], and a generator
//! emits SQL against the knowledge schema. Every emitted statement is
//! still routed through the SQL verifier before execution, mirroring the
//! paper's two-step retrieval design.

use crate::error::QaError;
use crate::intent::{CharacteristicFilter, ExplicitSlots, HorizonClass, Intent, IntentKind};

/// Entity lexicon extracted from the knowledge base at session start:
/// the registered method names and corpus domains.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Lexicon {
    /// Canonical method names (`naive`, `theta`, `dlinear_32`, …).
    pub methods: Vec<String>,
    /// Domain names (`traffic`, `web`, …).
    pub domains: Vec<String>,
}

/// Normalizes a question into matchable tokens: lowercase, punctuation
/// stripped (hyphens become spaces so "top-8" and "long-term" split).
fn normalize(question: &str) -> Vec<String> {
    question
        .to_ascii_lowercase()
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c
            } else {
                ' '
            }
        })
        .collect::<String>()
        .split_whitespace()
        .map(str::to_string)
        .collect()
}

fn word_number(w: &str) -> Option<usize> {
    match w {
        "one" => Some(1),
        "two" => Some(2),
        "three" => Some(3),
        "four" => Some(4),
        "five" => Some(5),
        "six" => Some(6),
        "seven" => Some(7),
        "eight" => Some(8),
        "nine" => Some(9),
        "ten" => Some(10),
        _ => w.parse().ok().filter(|&n| n > 0 && n <= 1000),
    }
}

fn contains_phrase(tokens: &[String], phrase: &[&str]) -> bool {
    if phrase.is_empty() || tokens.len() < phrase.len() {
        return false;
    }
    tokens.windows(phrase.len()).any(|w| w.iter().zip(phrase).all(|(t, p)| t == p))
}

/// Finds method-name mentions. Method names are matched on their
/// normalized token form, so "Holt Winters" matches `holt_winters` and
/// "DLinear" matches `dlinear_32` (prefix before the parameter suffix).
/// Longer names claim their tokens first, so "seasonal naive" does not
/// also register a spurious "naive" mention.
fn find_methods(tokens: &[String], lexicon: &Lexicon) -> Vec<String> {
    // (method, its match tokens), longest phrase first.
    let mut candidates: Vec<(String, Vec<String>)> = lexicon
        .methods
        .iter()
        .filter_map(|method| {
            let parts: Vec<String> = normalize(&method.replace('_', " "))
                .into_iter()
                .filter(|p| p.parse::<usize>().is_err() && !p.contains(char::is_numeric))
                .collect();
            (!parts.is_empty()).then(|| (method.clone(), parts))
        })
        .collect();
    candidates.sort_by_key(|(_, parts)| std::cmp::Reverse(parts.len()));

    let mut consumed = vec![false; tokens.len()];
    let mut found: Vec<(usize, String)> = Vec::new();
    for (method, parts) in candidates {
        let plen = parts.len();
        if tokens.len() < plen {
            continue;
        }
        for start in 0..=(tokens.len() - plen) {
            let window = &tokens[start..start + plen];
            let free = !consumed[start..start + plen].iter().any(|&c| c);
            if free && window.iter().zip(&parts).all(|(t, p)| t == p) {
                for c in consumed.iter_mut().skip(start).take(plen) {
                    *c = true;
                }
                found.push((start, method.clone()));
                break;
            }
        }
    }
    // Report mentions in question order.
    found.sort_by_key(|(pos, _)| *pos);
    found.into_iter().map(|(_, m)| m).collect()
}

/// Parses a question into an intent plus the explicit-slot mask.
pub fn parse_question(
    question: &str,
    lexicon: &Lexicon,
) -> Result<(Intent, ExplicitSlots), QaError> {
    let tokens = normalize(question);
    if tokens.is_empty() {
        return Err(QaError::UnparsableQuestion {
            question: question.to_string(),
            hint: "empty question".into(),
        });
    }
    let mut intent = Intent::default();
    let mut explicit = ExplicitSlots::default();

    // --- metric ---
    let metric_lexicon: [(&[&str], &str); 9] = [
        (&["mean", "absolute", "error"], "mae"),
        (&["mae"], "mae"),
        (&["mean", "squared", "error"], "mse"),
        (&["mse"], "mse"),
        (&["rmse"], "rmse"),
        (&["smape"], "smape"),
        (&["mape"], "smape"),
        (&["mase"], "mase"),
        (&["r2"], "r2"),
    ];
    for (phrase, metric) in metric_lexicon {
        if contains_phrase(&tokens, phrase) {
            intent.metric = metric.to_string();
            explicit.metric = true;
            break;
        }
    }

    // --- top-n ---
    for (i, t) in tokens.iter().enumerate() {
        // "top 8", "best five", "worst 3".
        if (t == "top" || t == "best" || t == "worst") && i + 1 < tokens.len() {
            if let Some(n) = word_number(&tokens[i + 1]) {
                intent.top_n = n;
                explicit.top_n = true;
            }
        }
        // "3 fastest methods", "the 5 best performers", "8 methods".
        if !explicit.top_n && i + 1 < tokens.len() {
            if let Some(n) = word_number(t) {
                if matches!(
                    tokens[i + 1].as_str(),
                    "fastest" | "quickest" | "best" | "worst" | "top" | "method" | "methods"
                ) {
                    intent.top_n = n;
                    explicit.top_n = true;
                }
            }
        }
    }
    // A singular "method" with an interrogative/superlative → exactly one
    // answer ("the best machine learning method", "which method …").
    if !explicit.top_n
        && tokens.iter().any(|t| t == "method")
        && tokens.iter().any(|t| matches!(t.as_str(), "best" | "which" | "what" | "fastest"))
    {
        intent.top_n = 1;
        explicit.top_n = true;
    }

    // --- horizon ---
    if contains_phrase(&tokens, &["long", "term"]) || contains_phrase(&tokens, &["long", "horizon"])
    {
        intent.horizon = Some(HorizonClass::Long);
        explicit.horizon = true;
    } else if contains_phrase(&tokens, &["short", "term"])
        || contains_phrase(&tokens, &["short", "horizon"])
    {
        intent.horizon = Some(HorizonClass::Short);
        explicit.horizon = true;
    } else {
        for (i, t) in tokens.iter().enumerate() {
            if t == "horizon" {
                // "horizon 48" or "horizon of 48".
                for j in [i + 1, i + 2] {
                    if let Some(n) = tokens.get(j).and_then(|w| word_number(w)) {
                        intent.horizon = Some(HorizonClass::Exact(n));
                        explicit.horizon = true;
                        break;
                    }
                }
            }
            if (t == "steps" || t == "step") && i >= 1 {
                if let Some(n) = word_number(&tokens[i - 1]) {
                    intent.horizon = Some(HorizonClass::Exact(n));
                    explicit.horizon = true;
                }
            }
        }
    }

    // --- domain ---
    for domain in &lexicon.domains {
        if tokens.iter().any(|t| t == domain) {
            intent.domain = Some(domain.clone());
            explicit.domain = true;
            break;
        }
    }

    // --- characteristics ---
    let mut chars = Vec::new();
    let has = |stems: &[&str]| tokens.iter().any(|t| stems.iter().any(|s| t.starts_with(s)));
    if has(&["trend"]) {
        chars.push(CharacteristicFilter { column: "trend".into(), strong: true });
    }
    if has(&["seasonal"]) {
        chars.push(CharacteristicFilter { column: "seasonality".into(), strong: true });
    }
    if contains_phrase(&tokens, &["non", "stationary"]) || has(&["nonstationary"]) {
        chars.push(CharacteristicFilter { column: "stationarity".into(), strong: false });
    } else if has(&["stationar"]) {
        chars.push(CharacteristicFilter { column: "stationarity".into(), strong: true });
    }
    if has(&["shift"]) {
        chars.push(CharacteristicFilter { column: "shifting".into(), strong: true });
    }
    if has(&["transition", "regime"]) {
        chars.push(CharacteristicFilter { column: "transition".into(), strong: true });
    }
    if has(&["correlat"]) {
        chars.push(CharacteristicFilter { column: "correlation".into(), strong: true });
    }
    if !chars.is_empty() {
        intent.characteristics = chars;
        explicit.characteristics = true;
    }

    // --- variate ---
    if tokens.iter().any(|t| t == "multivariate") {
        intent.multivariate = Some(true);
        explicit.multivariate = true;
    } else if tokens.iter().any(|t| t == "univariate") {
        intent.multivariate = Some(false);
        explicit.multivariate = true;
    }

    // --- strategy ---
    if tokens.iter().any(|t| t == "rolling") {
        intent.strategy = Some("rolling".into());
        explicit.strategy = true;
    } else if contains_phrase(&tokens, &["fixed", "window"]) || tokens.iter().any(|t| t == "fixed")
    {
        intent.strategy = Some("fixed".into());
        explicit.strategy = true;
    }

    // --- family ---
    if tokens.iter().any(|t| t == "statistical") {
        intent.family = Some("statistical".into());
        explicit.family = true;
    } else if contains_phrase(&tokens, &["machine", "learning"]) {
        intent.family = Some("machine_learning".into());
        explicit.family = true;
    } else if contains_phrase(&tokens, &["deep", "learning"]) || has(&["neural"]) {
        intent.family = Some("deep_learning".into());
        explicit.family = true;
    }

    // --- intent kind ---
    let mentioned = find_methods(&tokens, lexicon);
    let counting = tokens.iter().any(|t| t == "many" || t == "count");
    if counting && has(&["dataset", "series"]) {
        intent.kind = IntentKind::CountDatasets;
        explicit.kind = true;
    } else if counting && has(&["method", "model"]) {
        intent.kind = IntentKind::CountMethods;
        explicit.kind = true;
    } else if has(&["domain"]) && (has(&["which", "what", "list"]) || counting) {
        intent.kind = IntentKind::ListDomains;
        explicit.kind = true;
    } else if tokens.iter().any(|t| t == "fastest" || t == "quickest")
        || contains_phrase(&tokens, &["by", "runtime"])
    {
        intent.kind = IntentKind::FastestMethods;
        explicit.kind = true;
    } else if mentioned.len() >= 2
        && (has(&["compare", "versus", "vs", "better", "or"])
            || contains_phrase(&tokens, &["difference", "between"]))
    {
        intent.kind =
            IntentKind::CompareMethods { a: mentioned[0].clone(), b: mentioned[1].clone() };
        explicit.kind = true;
    } else if mentioned.len() == 1
        && (contains_phrase(&tokens, &["what", "is"])
            || contains_phrase(&tokens, &["tell", "me", "about"])
            || has(&["describe"]))
    {
        intent.kind = IntentKind::MethodInfo { name: mentioned[0].clone() };
        explicit.kind = true;
    } else if mentioned.len() == 1
        && (contains_phrase(&tokens, &["where", "does"])
            || has(&["profile", "breakdown"])
            || contains_phrase(&tokens, &["across", "domains"])
            || contains_phrase(&tokens, &["by", "domain"])
            || contains_phrase(&tokens, &["per", "domain"]))
    {
        intent.kind = IntentKind::MethodProfile { name: mentioned[0].clone() };
        explicit.kind = true;
    } else if has(&["worst", "struggle", "weakest"]) {
        intent.kind = IntentKind::WorstMethods;
        explicit.kind = true;
    } else if has(&["top", "best", "recommend", "rank", "method", "perform", "accura", "win"]) {
        intent.kind = IntentKind::TopMethods;
        explicit.kind = true;
    }

    if !explicit.any() {
        return Err(QaError::UnparsableQuestion {
            question: question.to_string(),
            hint: "try asking about top methods, comparisons, counts, domains, or runtimes; \
                   mention a metric (MAE/RMSE/sMAPE/…), a horizon, a domain, or dataset \
                   characteristics"
                .into(),
        });
    }
    Ok((intent, explicit))
}

/// Escapes a string literal for SQL embedding.
fn sql_str(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

/// Strong/weak characteristic thresholds (match
/// `Characteristics::STRONG` in the data layer).
const STRONG_THRESHOLD: f64 = 0.6;
const WEAK_THRESHOLD: f64 = 0.4;

/// Builds the WHERE conjuncts shared by result-ranking intents.
fn result_filters(intent: &Intent) -> Vec<String> {
    let mut out = Vec::new();
    if let Some(h) = &intent.horizon {
        out.push(h.predicate("r.horizon"));
    }
    if let Some(d) = &intent.domain {
        out.push(format!("d.domain = {}", sql_str(d)));
    }
    for c in &intent.characteristics {
        if c.strong {
            out.push(format!("d.{} >= {STRONG_THRESHOLD}", c.column));
        } else {
            out.push(format!("d.{} < {WEAK_THRESHOLD}", c.column));
        }
    }
    if let Some(mv) = intent.multivariate {
        out.push(format!("d.multivariate = {mv}"));
    }
    if let Some(s) = &intent.strategy {
        out.push(format!("r.strategy = {}", sql_str(s)));
    }
    if let Some(f) = &intent.family {
        out.push(format!("m.family = {}", sql_str(f)));
    }
    out
}

/// Compiles an intent to SQL against the knowledge schema.
pub fn generate_sql(intent: &Intent) -> String {
    let needs_family_join = intent.family.is_some();
    let joins = if needs_family_join {
        "JOIN datasets d ON r.dataset_id = d.id JOIN methods m ON r.method = m.name"
    } else {
        "JOIN datasets d ON r.dataset_id = d.id"
    };
    let where_clause = |filters: Vec<String>| {
        if filters.is_empty() {
            String::new()
        } else {
            format!(" WHERE {}", filters.join(" AND "))
        }
    };

    match &intent.kind {
        IntentKind::TopMethods => {
            let direction = if intent.metric == "r2" { "DESC" } else { "ASC" };
            format!(
                "SELECT r.method, AVG(r.{metric}) AS mean_{metric}, COUNT(*) AS runs \
                 FROM results r {joins}{w} GROUP BY r.method \
                 ORDER BY mean_{metric} {direction} LIMIT {n}",
                metric = intent.metric,
                w = where_clause(result_filters(intent)),
                n = intent.top_n,
            )
        }
        IntentKind::CompareMethods { a, b } => {
            let mut filters = result_filters(intent);
            filters.push(format!("r.method IN ({}, {})", sql_str(a), sql_str(b)));
            format!(
                "SELECT r.method, AVG(r.{metric}) AS mean_{metric}, COUNT(*) AS runs \
                 FROM results r {joins}{w} GROUP BY r.method ORDER BY mean_{metric} ASC",
                metric = intent.metric,
                w = where_clause(filters),
            )
        }
        IntentKind::CountDatasets => {
            // Dataset-only filters: strip the result-table conjuncts.
            let mut filters = Vec::new();
            if let Some(d) = &intent.domain {
                filters.push(format!("d.domain = {}", sql_str(d)));
            }
            for c in &intent.characteristics {
                if c.strong {
                    filters.push(format!("d.{} >= {STRONG_THRESHOLD}", c.column));
                } else {
                    filters.push(format!("d.{} < {WEAK_THRESHOLD}", c.column));
                }
            }
            if let Some(mv) = intent.multivariate {
                filters.push(format!("d.multivariate = {mv}"));
            }
            format!(
                "SELECT COUNT(*) AS datasets FROM datasets d{}",
                where_clause(filters)
            )
        }
        IntentKind::CountMethods => match &intent.family {
            Some(f) => format!(
                "SELECT COUNT(*) AS methods FROM methods m WHERE m.family = {}",
                sql_str(f)
            ),
            None => "SELECT COUNT(*) AS methods FROM methods m".to_string(),
        },
        IntentKind::ListDomains => "SELECT d.domain, COUNT(*) AS datasets FROM datasets d \
                                    GROUP BY d.domain ORDER BY datasets DESC"
            .to_string(),
        IntentKind::MethodInfo { name } => format!(
            "SELECT m.name, m.family, m.description FROM methods m WHERE m.name = {}",
            sql_str(name)
        ),
        IntentKind::FastestMethods => format!(
            "SELECT r.method, AVG(r.runtime_ms) AS mean_runtime_ms, COUNT(*) AS runs \
             FROM results r {joins}{w} GROUP BY r.method ORDER BY mean_runtime_ms ASC LIMIT {n}",
            w = where_clause(result_filters(intent)),
            n = intent.top_n,
        ),
        IntentKind::WorstMethods => {
            // Mirror image of TopMethods: the worst end of the ranking.
            let direction = if intent.metric == "r2" { "ASC" } else { "DESC" };
            format!(
                "SELECT r.method, AVG(r.{metric}) AS mean_{metric}, COUNT(*) AS runs \
                 FROM results r {joins}{w} GROUP BY r.method \
                 ORDER BY mean_{metric} {direction} LIMIT {n}",
                metric = intent.metric,
                w = where_clause(result_filters(intent)),
                n = intent.top_n,
            )
        }
        IntentKind::MethodProfile { name } => {
            let mut filters = result_filters(intent);
            filters.push(format!("r.method = {}", sql_str(name)));
            format!(
                "SELECT d.domain, AVG(r.{metric}) AS mean_{metric}, COUNT(*) AS runs \
                 FROM results r {joins}{w} GROUP BY d.domain ORDER BY mean_{metric} ASC",
                metric = intent.metric,
                w = where_clause(filters),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lexicon() -> Lexicon {
        Lexicon {
            methods: vec![
                "naive".into(),
                "seasonal_naive".into(),
                "theta".into(),
                "holt_winters".into(),
                "dlinear_32".into(),
                "arima_auto".into(),
            ],
            domains: vec!["traffic".into(), "web".into(), "economic".into()],
        }
    }

    #[test]
    fn parses_the_paper_question_verbatim() {
        // Figure 5, label 1.
        let (intent, _) = parse_question(
            "What are the top-8 methods (ordered by MAE) for long-term forecasting \
             on all multivariate datasets with trends?",
            &lexicon(),
        )
        .unwrap();
        assert_eq!(intent.kind, IntentKind::TopMethods);
        assert_eq!(intent.metric, "mae");
        assert_eq!(intent.top_n, 8);
        assert_eq!(intent.horizon, Some(HorizonClass::Long));
        assert_eq!(intent.multivariate, Some(true));
        assert_eq!(intent.characteristics.len(), 1);
        assert_eq!(intent.characteristics[0].column, "trend");

        let sql = generate_sql(&intent);
        assert!(sql.contains("AVG(r.mae)"));
        assert!(sql.contains("r.horizon >= 96"));
        assert!(sql.contains("d.multivariate = true"));
        assert!(sql.contains("d.trend >= 0.6"));
        assert!(sql.contains("LIMIT 8"));
    }

    #[test]
    fn parses_the_abstract_question() {
        // "Which method is best for long term forecasting on time series
        // with strong seasonality?"
        let (intent, _) = parse_question(
            "Which method is best for long term forecasting on time series with strong seasonality?",
            &lexicon(),
        )
        .unwrap();
        assert_eq!(intent.kind, IntentKind::TopMethods);
        assert_eq!(intent.top_n, 1);
        assert_eq!(intent.horizon, Some(HorizonClass::Long));
        assert_eq!(intent.characteristics[0].column, "seasonality");
    }

    #[test]
    fn parses_comparisons() {
        let (intent, _) = parse_question(
            "Is theta better than seasonal naive on economic data by sMAPE?",
            &lexicon(),
        )
        .unwrap();
        match &intent.kind {
            IntentKind::CompareMethods { a, b } => {
                let pair = [a.as_str(), b.as_str()];
                assert!(pair.contains(&"theta"));
                assert!(pair.contains(&"seasonal_naive"));
            }
            other => panic!("expected comparison, got {other:?}"),
        }
        assert_eq!(intent.metric, "smape");
        assert_eq!(intent.domain.as_deref(), Some("economic"));
        let sql = generate_sql(&intent);
        assert!(sql.contains("r.method IN ("));
        assert!(sql.contains("d.domain = 'economic'"));
    }

    #[test]
    fn parses_counts_lists_and_info() {
        let lex = lexicon();
        let (c, _) =
            parse_question("How many multivariate datasets are in the benchmark?", &lex).unwrap();
        assert_eq!(c.kind, IntentKind::CountDatasets);
        assert!(generate_sql(&c).contains("COUNT(*) AS datasets"));

        let (m, _) = parse_question("How many statistical methods are there?", &lex).unwrap();
        assert_eq!(m.kind, IntentKind::CountMethods);
        assert!(generate_sql(&m).contains("m.family = 'statistical'"));

        let (d, _) = parse_question("Which domains does the benchmark cover?", &lex).unwrap();
        assert_eq!(d.kind, IntentKind::ListDomains);

        let (i, _) = parse_question("Tell me about holt winters", &lex).unwrap();
        assert_eq!(i.kind, IntentKind::MethodInfo { name: "holt_winters".into() });
        assert!(generate_sql(&i).contains("m.name = 'holt_winters'"));
    }

    #[test]
    fn parses_runtime_and_strategy_and_horizon_variants() {
        let lex = lexicon();
        let (f, _) =
            parse_question("What are the three fastest methods under rolling evaluation?", &lex)
                .unwrap();
        assert_eq!(f.kind, IntentKind::FastestMethods);
        assert_eq!(f.strategy.as_deref(), Some("rolling"));
        let sql = generate_sql(&f);
        assert!(sql.contains("runtime_ms"));
        assert!(sql.contains("r.strategy = 'rolling'"));

        let (h, _) = parse_question("Best methods at horizon 48 by RMSE", &lex).unwrap();
        assert_eq!(h.horizon, Some(HorizonClass::Exact(48)));
        assert_eq!(h.metric, "rmse");

        let (s, _) = parse_question("best short-term methods for traffic", &lex).unwrap();
        assert_eq!(s.horizon, Some(HorizonClass::Short));
        assert_eq!(s.domain.as_deref(), Some("traffic"));
    }

    #[test]
    fn parses_word_numbers_and_top_variants() {
        let lex = lexicon();
        let (a, _) = parse_question("show the top five methods", &lex).unwrap();
        assert_eq!(a.top_n, 5);
        let (b, _) = parse_question("top 3 methods by mase", &lex).unwrap();
        assert_eq!(b.top_n, 3);
        assert_eq!(b.metric, "mase");
    }

    #[test]
    fn nonstationary_is_a_weak_filter() {
        let (intent, _) =
            parse_question("best methods on non-stationary series", &lexicon()).unwrap();
        let c = &intent.characteristics[0];
        assert_eq!(c.column, "stationarity");
        assert!(!c.strong);
        assert!(generate_sql(&intent).contains("d.stationarity < 0.4"));
    }

    #[test]
    fn gibberish_is_rejected_with_hint() {
        match parse_question("purple elephants dancing", &lexicon()) {
            Err(QaError::UnparsableQuestion { hint, .. }) => {
                assert!(hint.contains("top methods"));
            }
            other => panic!("expected unparsable, got {other:?}"),
        }
        assert!(parse_question("", &lexicon()).is_err());
    }

    #[test]
    fn sql_escapes_string_literals() {
        let intent = Intent {
            kind: IntentKind::MethodInfo { name: "o'brien".into() },
            ..Intent::default()
        };
        assert!(generate_sql(&intent).contains("'o''brien'"));
    }

    #[test]
    fn parses_worst_methods() {
        let (intent, _) =
            parse_question("Which 3 methods struggle most on web data by smape?", &lexicon())
                .unwrap();
        assert_eq!(intent.kind, IntentKind::WorstMethods);
        let sql = generate_sql(&intent);
        assert!(sql.contains("ORDER BY mean_smape DESC"), "{sql}");
        assert!(sql.contains("d.domain = 'web'"));
    }

    #[test]
    fn parses_method_profile() {
        let (intent, _) =
            parse_question("Where does theta perform best across domains?", &lexicon()).unwrap();
        assert_eq!(intent.kind, IntentKind::MethodProfile { name: "theta".into() });
        let sql = generate_sql(&intent);
        assert!(sql.contains("GROUP BY d.domain"), "{sql}");
        assert!(sql.contains("r.method = 'theta'"));

        let (p2, _) = parse_question("show the per domain breakdown for dlinear", &lexicon())
            .unwrap();
        assert_eq!(p2.kind, IntentKind::MethodProfile { name: "dlinear_32".into() });
    }

    #[test]
    fn r2_orders_descending() {
        let (intent, _) =
            parse_question("top 5 methods by r2 on web datasets", &lexicon()).unwrap();
        assert_eq!(intent.metric, "r2");
        let sql = generate_sql(&intent);
        assert!(sql.contains("ORDER BY mean_r2 DESC"));
    }
}
