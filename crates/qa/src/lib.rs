//! Natural-language Q&A over the benchmark knowledge base.
//!
//! Reproduces the workflow of Figure 3 (paper §II-D): the user asks a
//! natural-language question; it is compiled to SQL (*NL2SQL*), the SQL is
//! *verified* against the catalog before execution (*Retrieval*), the rows
//! are turned into a natural-language answer (*Generation*), and the
//! response carries charts, the SQL text, and the raw result table
//! (*Post-Processing* / *Output*, Figure 5 labels 2–5).
//!
//! The paper uses a hosted LLM for NL2SQL and answer generation. Per the
//! reproduction rules the LLM is substituted by a deterministic semantic
//! parser ([`nl2sql`]) over a domain lexicon plus template-based generation
//! ([`answer`]): the same pipeline stages, exactly reproducible, and — like
//! the paper's design — every generated statement still passes through the
//! SQL verifier rather than being trusted.
//!
//! * [`intent`] — the typed meaning representation of a question.
//! * [`nl2sql`] — lexicon/pattern semantic parsing and SQL generation.
//! * [`answer`] — natural-language rendering of query results.
//! * [`charts`] — chart payloads (bar/line/pie) with ASCII rendering and a
//!   JSON serialization for frontends.
//! * [`session`] — multi-turn sessions with history-based slot carry-over
//!   ("what about RMSE?").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answer;
pub mod charts;
pub mod error;
pub mod intent;
pub mod nl2sql;
pub mod session;

pub use error::QaError;
pub use intent::{HorizonClass, Intent, IntentKind};
pub use session::{QaResponse, QaSession};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, QaError>;
