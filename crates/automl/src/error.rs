//! Error type for the AutoML module.

use easytime_data::DataError;
use easytime_eval::EvalError;
use easytime_models::ModelError;
use std::fmt;

/// Errors produced by the Automated Ensemble module.
#[derive(Debug, Clone, PartialEq)]
pub enum AutoMlError {
    /// Pretraining inputs are inconsistent (empty corpus, shape mismatch…).
    InvalidInput {
        /// Human-readable description.
        reason: String,
    },
    /// The classifier or recommender was used before pretraining.
    NotPretrained,
    /// The ensemble was used before fitting.
    NotFitted,
    /// No candidate method could be trained on the series.
    NoUsableMethod {
        /// Why each candidate failed, concatenated.
        details: String,
    },
    /// Underlying evaluation failure.
    Eval(String),
    /// Underlying model failure.
    Model(String),
    /// Underlying data failure.
    Data(String),
}

impl fmt::Display for AutoMlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutoMlError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
            AutoMlError::NotPretrained => write!(f, "recommender must be pretrained first"),
            AutoMlError::NotFitted => write!(f, "ensemble must be fitted first"),
            AutoMlError::NoUsableMethod { details } => {
                write!(f, "no candidate method could be trained: {details}")
            }
            AutoMlError::Eval(e) => write!(f, "evaluation error: {e}"),
            AutoMlError::Model(e) => write!(f, "model error: {e}"),
            AutoMlError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for AutoMlError {}

impl From<EvalError> for AutoMlError {
    fn from(e: EvalError) -> Self {
        AutoMlError::Eval(e.to_string())
    }
}

impl From<ModelError> for AutoMlError {
    fn from(e: ModelError) -> Self {
        AutoMlError::Model(e.to_string())
    }
}

impl From<DataError> for AutoMlError {
    fn from(e: DataError) -> Self {
        AutoMlError::Data(e.to_string())
    }
}
