//! Multinomial logistic regression with soft-label cross-entropy.
//!
//! The classifier head of the recommendation pipeline: a single linear
//! layer with softmax output, trained by mini-batch Adam on (embedding,
//! label-distribution) pairs. Matches the model family of the paper's
//! cited SimpleTS classifier and "outputs a probability ranking of
//! methods".

use crate::error::AutoMlError;
use easytime_linalg::kernels::{axpy, dot, matmul};
use easytime_linalg::stats::softmax;
use easytime_models::optimize::Adam;
use easytime_rng::StdRng;

/// Label construction mode (ablation A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LabelMode {
    /// Soft labels from the score distribution (the paper's choice).
    #[default]
    Soft,
    /// One-hot on the single best method.
    Hard,
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassifierConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 weight penalty.
    pub l2: f64,
    /// RNG seed for init and shuffling.
    pub seed: u64,
}

impl Default for ClassifierConfig {
    /// Defaults tuned for benchmark-scale corpora (a few hundred series):
    /// the relatively strong L2 keeps the head calibrated rather than
    /// memorizing the corpus, which matters because the recommender must
    /// beat the "always predict the globally best ranking" baseline.
    fn default() -> Self {
        ClassifierConfig { epochs: 300, learning_rate: 0.02, batch_size: 16, l2: 2e-3, seed: 11 }
    }
}

/// Linear softmax classifier.
#[derive(Debug, Clone)]
pub struct SoftLabelClassifier {
    /// Row-major `classes × dim` weights.
    weights: Vec<f64>,
    bias: Vec<f64>,
    dim: usize,
    classes: usize,
}

impl SoftLabelClassifier {
    /// Trains a classifier on `(inputs, targets)` where each target is a
    /// probability distribution over classes.
    pub fn train(
        inputs: &[Vec<f64>],
        targets: &[Vec<f64>],
        config: &ClassifierConfig,
    ) -> Result<SoftLabelClassifier, AutoMlError> {
        if inputs.is_empty() || targets.is_empty() {
            return Err(AutoMlError::InvalidInput { reason: "empty training set".into() });
        }
        if inputs.len() != targets.len() {
            return Err(AutoMlError::InvalidInput {
                reason: format!("{} inputs but {} targets", inputs.len(), targets.len()),
            });
        }
        let dim = inputs[0].len();
        let classes = targets[0].len();
        if dim == 0 || classes == 0 {
            return Err(AutoMlError::InvalidInput { reason: "zero-dimensional data".into() });
        }
        for (i, x) in inputs.iter().enumerate() {
            if x.len() != dim {
                return Err(AutoMlError::InvalidInput {
                    reason: format!("input {i} has dim {} (expected {dim})", x.len()),
                });
            }
        }
        for (i, t) in targets.iter().enumerate() {
            if t.len() != classes {
                return Err(AutoMlError::InvalidInput {
                    reason: format!("target {i} has {} classes (expected {classes})", t.len()),
                });
            }
        }

        let mut rng = StdRng::seed_from_u64(config.seed);
        let scale = (1.0 / dim as f64).sqrt();
        let mut weights: Vec<f64> =
            (0..classes * dim).map(|_| (rng.gen_f64() * 2.0 - 1.0) * scale).collect();
        // Bias starts at the log-prior of the (soft) labels. Because L2
        // regularizes only the weights, the model's fallback when features
        // carry no signal is exactly the marginal "popularity" ranking —
        // features can then only *improve* on that baseline.
        let mut prior = vec![0.0; classes];
        for t in targets {
            for (p, v) in prior.iter_mut().zip(t) {
                *p += v;
            }
        }
        let total: f64 = prior.iter().sum::<f64>().max(1e-12);
        let mut bias: Vec<f64> =
            prior.iter().map(|p| ((p / total).max(1e-6)).ln()).collect();
        let bias_mean = bias.iter().sum::<f64>() / classes as f64;
        for b in &mut bias {
            *b -= bias_mean;
        }

        let param_dim = classes * dim + classes;
        let mut opt = Adam::new(param_dim, config.learning_rate);
        let mut order: Vec<usize> = (0..inputs.len()).collect();

        for _ in 0..config.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(config.batch_size.max(1)) {
                let mut g_w = vec![0.0; classes * dim];
                let mut g_b = vec![0.0; classes];
                for &idx in chunk {
                    let x = &inputs[idx];
                    let t = &targets[idx];
                    let logits: Vec<f64> = (0..classes)
                        .map(|c| bias[c] + dot(&weights[c * dim..(c + 1) * dim], x))
                        .collect();
                    let p = softmax(&logits);
                    for c in 0..classes {
                        let diff = p[c] - t[c]; // ∂CE/∂logit
                        g_b[c] += diff;
                        axpy(diff, x, &mut g_w[c * dim..(c + 1) * dim]);
                    }
                }
                let inv = 1.0 / chunk.len() as f64;
                let mut grads = Vec::with_capacity(param_dim);
                grads.extend(
                    g_w.iter().zip(&weights).map(|(g, w)| g * inv + config.l2 * w),
                );
                grads.extend(g_b.iter().map(|g| g * inv));

                let mut params = Vec::with_capacity(param_dim);
                params.extend_from_slice(&weights);
                params.extend_from_slice(&bias);
                opt.step(&mut params, &grads);
                weights.copy_from_slice(&params[..classes * dim]);
                bias.copy_from_slice(&params[classes * dim..]);
            }
        }
        Ok(SoftLabelClassifier { weights, bias, dim, classes })
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Mean soft-label cross-entropy on a labelled set (test diagnostics).
    #[cfg(test)]
    pub(crate) fn cross_entropy(&self, inputs: &[Vec<f64>], targets: &[Vec<f64>]) -> f64 {
        let mut total = 0.0;
        for (x, t) in inputs.iter().zip(targets) {
            let p = self.predict_proba(x);
            for (pi, ti) in p.iter().zip(t) {
                if *ti > 0.0 {
                    total -= ti * pi.max(1e-12).ln();
                }
            }
        }
        total / inputs.len().max(1) as f64
    }

    /// Predicts the class probability distribution for one input.
    ///
    /// Delegates to [`Self::predict_proba_batch`] with a single row, so a
    /// request scored alone and the same request scored inside a coalesced
    /// serving batch produce bit-identical probabilities.
    ///
    /// # Panics
    /// Panics on input dimension mismatch.
    pub(crate) fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "input dimension mismatch");
        let mut panel = Vec::new();
        self.predict_proba_batch(x, &mut panel).pop().unwrap_or_default()
    }

    /// Predicts probability distributions for a whole batch with one
    /// blocked matmul: the rows of `flat` (row-major `rows × dim`, e.g.
    /// from `Embedder::embed_batch_into`) against the transposed weight
    /// matrix. The blocked kernel accumulates every output cell in
    /// ascending k-order, so the result is independent of how requests
    /// were grouped into batches.
    ///
    /// # Panics
    /// Panics when `flat.len()` is not a multiple of the input dimension.
    pub(crate) fn predict_proba_batch(&self, flat: &[f64], panel: &mut Vec<f64>) -> Vec<Vec<f64>> {
        assert_eq!(flat.len() % self.dim, 0, "batch buffer/dimension mismatch");
        let rows = flat.len() / self.dim;
        if rows == 0 {
            return Vec::new();
        }
        // weights is classes × dim row-major; matmul wants dim × classes.
        let mut wt = vec![0.0; self.dim * self.classes];
        for c in 0..self.classes {
            for d in 0..self.dim {
                wt[d * self.classes + c] = self.weights[c * self.dim + d];
            }
        }
        let mut logits = vec![0.0; rows * self.classes];
        matmul(rows, self.dim, self.classes, flat, &wt, panel, &mut logits);
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &mut logits[r * self.classes..(r + 1) * self.classes];
            for (l, b) in row.iter_mut().zip(&self.bias) {
                *l += b;
            }
            out.push(softmax(row));
        }
        out
    }

    /// Returns class indices sorted by descending probability.
    pub fn ranking(&self, x: &[f64]) -> Vec<usize> {
        let p = self.predict_proba(x);
        let mut idx: Vec<usize> = (0..self.classes).collect();
        idx.sort_by(|&a, &b| p[b].total_cmp(&p[a]));
        idx
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::{hard_labels, soft_labels};

    /// Linearly separable toy problem: class = argmax coordinate.
    fn toy_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut ts = Vec::with_capacity(n);
        for _ in 0..n {
            let class = rng.gen_range(0..3usize);
            let mut x = vec![rng.gen_f64() * 0.4, rng.gen_f64() * 0.4, rng.gen_f64() * 0.4];
            x[class] += 1.0;
            let mut t = vec![0.0; 3];
            t[class] = 1.0;
            xs.push(x);
            ts.push(t);
        }
        (xs, ts)
    }

    #[test]
    fn learns_linearly_separable_classes() {
        let (xs, ts) = toy_data(200, 3);
        let clf = SoftLabelClassifier::train(&xs, &ts, &ClassifierConfig::default()).unwrap();
        let (val_x, val_t) = toy_data(50, 99);
        let mut correct = 0;
        for (x, t) in val_x.iter().zip(&val_t) {
            let pred = clf.ranking(x)[0];
            let actual = t.iter().position(|&v| v == 1.0).unwrap();
            if pred == actual {
                correct += 1;
            }
        }
        assert!(correct >= 45, "accuracy {correct}/50");
    }

    #[test]
    fn soft_targets_produce_spread_probabilities() {
        // Two classes always near-tied in the scores.
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![(i % 7) as f64 / 7.0, 1.0]).collect();
        let ts: Vec<Vec<f64>> =
            (0..100).map(|_| soft_labels(&[1.0, 1.02, 50.0], 0.3)).collect();
        let clf = SoftLabelClassifier::train(&xs, &ts, &ClassifierConfig::default()).unwrap();
        let p = clf.predict_proba(&[0.5, 1.0]);
        assert!(p[0] > 0.25 && p[1] > 0.25, "both near-best classes keep mass: {p:?}");
        assert!(p[2] < 0.2, "bad class mass {}", p[2]);
    }

    #[test]
    fn training_is_deterministic() {
        let (xs, ts) = toy_data(100, 5);
        let a = SoftLabelClassifier::train(&xs, &ts, &ClassifierConfig::default()).unwrap();
        let b = SoftLabelClassifier::train(&xs, &ts, &ClassifierConfig::default()).unwrap();
        assert_eq!(a.predict_proba(&xs[0]), b.predict_proba(&xs[0]));
    }

    #[test]
    fn validates_input_shapes() {
        assert!(SoftLabelClassifier::train(&[], &[], &ClassifierConfig::default()).is_err());
        let bad = SoftLabelClassifier::train(
            &[vec![1.0], vec![1.0, 2.0]],
            &[vec![1.0], vec![1.0]],
            &ClassifierConfig::default(),
        );
        assert!(bad.is_err());
        let mismatch = SoftLabelClassifier::train(
            &[vec![1.0]],
            &[vec![0.5, 0.5], vec![1.0, 0.0]],
            &ClassifierConfig::default(),
        );
        assert!(mismatch.is_err());
    }

    #[test]
    fn ranking_orders_by_probability() {
        let (xs, ts) = toy_data(150, 8);
        let clf = SoftLabelClassifier::train(&xs, &ts, &ClassifierConfig::default()).unwrap();
        let x = &xs[0];
        let p = clf.predict_proba(x);
        let r = clf.ranking(x);
        assert!(p[r[0]] >= p[r[1]] && p[r[1]] >= p[r[2]]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn batched_scoring_matches_single_rows_bitwise() {
        let (xs, ts) = toy_data(120, 17);
        let clf = SoftLabelClassifier::train(&xs, &ts, &ClassifierConfig::default()).unwrap();
        let flat: Vec<f64> = xs.iter().take(9).flatten().copied().collect();
        let mut panel = Vec::new();
        let batched = clf.predict_proba_batch(&flat, &mut panel);
        assert_eq!(batched.len(), 9);
        for (i, x) in xs.iter().take(9).enumerate() {
            assert_eq!(batched[i], clf.predict_proba(x), "row {i}");
        }
        // Batch grouping must not change the numbers: scoring the same
        // rows in two smaller batches gives bit-identical distributions.
        let halves: Vec<Vec<f64>> = clf
            .predict_proba_batch(&flat[..4 * 3], &mut panel)
            .into_iter()
            .chain(clf.predict_proba_batch(&flat[4 * 3..], &mut panel))
            .collect();
        assert_eq!(halves, batched);
        assert!(clf.predict_proba_batch(&[], &mut panel).is_empty());
    }

    #[test]
    fn soft_beats_hard_on_near_tied_targets() {
        // When the "truth" is a near-tie, soft-label training should yield
        // lower soft-label cross-entropy than hard-label training.
        let mut rng = StdRng::seed_from_u64(21);
        let mut xs = Vec::new();
        let mut soft_ts = Vec::new();
        let mut hard_ts = Vec::new();
        for _ in 0..120 {
            let x = vec![rng.gen_f64(), rng.gen_f64()];
            // Scores: methods 0 and 1 nearly tied (tie order flips on
            // noise), method 2 bad.
            let eps = rng.gen_f64() * 0.02;
            let scores = [1.0 + eps, 1.01 - eps, 9.0];
            xs.push(x);
            soft_ts.push(soft_labels(&scores, 0.3));
            hard_ts.push(hard_labels(&scores));
        }
        let cfg = ClassifierConfig::default();
        let soft_clf = SoftLabelClassifier::train(&xs, &soft_ts, &cfg).unwrap();
        let hard_clf = SoftLabelClassifier::train(&xs, &hard_ts, &cfg).unwrap();
        let soft_ce = soft_clf.cross_entropy(&xs, &soft_ts);
        let hard_ce = hard_clf.cross_entropy(&xs, &soft_ts);
        assert!(
            soft_ce < hard_ce,
            "soft CE {soft_ce} should beat hard CE {hard_ce} on soft ground truth"
        );
    }
}
