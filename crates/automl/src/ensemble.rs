//! The AutoEnsemble forecaster — the online phase of Figure 2.
//!
//! Given a pretrained [`Recommender`] and a new series `X`:
//!
//! 1. the recommender's top-k methods become the candidate members,
//! 2. each member trains on the *training part* of `X` and forecasts the
//!    *validation part*,
//! 3. ensemble weights are learned on the validation forecasts
//!    (simplex-constrained; see [`crate::weights`]),
//! 4. members are refit on the full series and the weighted ensemble
//!    forecasts the future.
//!
//! Members that fail to train are dropped with their reason recorded; the
//! ensemble degrades gracefully down to a single member.

use crate::error::AutoMlError;
use crate::recommender::Recommender;
use crate::weights::{combine, learn_simplex_weights, uniform_weights};
use easytime_data::TimeSeries;
use easytime_models::{Forecaster, ModelSpec};

/// Weighting mode for the fitted ensemble (ablation A4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightMode {
    /// Weights learned on the validation part (the paper's design).
    #[default]
    Learned,
    /// Uniform weights over the top-k members.
    Uniform,
}

/// A fitted automated ensemble.
pub struct AutoEnsemble {
    members: Vec<Box<dyn Forecaster>>,
    member_names: Vec<String>,
    weights: Vec<f64>,
    dropped: Vec<(String, String)>,
}

impl std::fmt::Debug for AutoEnsemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AutoEnsemble")
            .field("members", &self.member_names)
            .field("weights", &self.weights)
            .field("dropped", &self.dropped)
            .finish()
    }
}

/// Iterations of exponentiated-gradient weight learning.
const WEIGHT_ITERATIONS: usize = 1500;

impl AutoEnsemble {
    /// Fits an ensemble for `series` using the recommender's top-`k`
    /// methods. `val_ratio` is the fraction of the series reserved for
    /// weight learning (e.g. 0.2).
    pub fn fit(
        recommender: &Recommender,
        series: &TimeSeries,
        k: usize,
        val_ratio: f64,
        mode: WeightMode,
    ) -> Result<AutoEnsemble, AutoMlError> {
        if !(0.0 < val_ratio && val_ratio < 0.5) {
            return Err(AutoMlError::InvalidInput {
                reason: format!("val_ratio {val_ratio} must be in (0, 0.5)"),
            });
        }
        let candidates = {
            let mut sp = easytime_obs::span("automl.recommend");
            sp.attr_u64("k", k as u64);
            recommender.top_k(series, k)
        };
        Self::fit_with_members(&candidates, series, val_ratio, mode)
    }

    /// Fits an ensemble from an explicit member list (used by experiments
    /// and by the random-selection baseline).
    pub fn fit_with_members(
        method_names: &[String],
        series: &TimeSeries,
        val_ratio: f64,
        mode: WeightMode,
    ) -> Result<AutoEnsemble, AutoMlError> {
        if method_names.is_empty() {
            return Err(AutoMlError::InvalidInput { reason: "no candidate methods".into() });
        }
        let mut sp = easytime_obs::span("automl.ensemble_fit");
        sp.attr_u64("candidates", method_names.len() as u64);
        let n = series.len();
        let val_len = ((n as f64) * val_ratio).round() as usize;
        if val_len == 0 || val_len >= n {
            return Err(AutoMlError::InvalidInput {
                reason: format!("series of length {n} leaves no usable validation window"),
            });
        }
        let train_part = series.slice(0, n - val_len)?;
        let val_actual = &series.values()[n - val_len..];

        // Train members on the training part and forecast validation.
        let mut val_preds: Vec<Vec<f64>> = Vec::new();
        let mut kept: Vec<String> = Vec::new();
        let mut dropped: Vec<(String, String)> = Vec::new();
        for name in method_names {
            let mut msp = easytime_obs::span("automl.member_train");
            msp.attr("method", name.as_str());
            let result = (|| -> Result<Vec<f64>, AutoMlError> {
                let spec = ModelSpec::parse(name)?;
                let mut model = spec.build()?;
                model.fit(&train_part)?;
                let pred = model.forecast(val_len)?;
                if pred.iter().any(|v| !v.is_finite()) {
                    return Err(AutoMlError::Model(format!(
                        "{name} produced non-finite validation forecasts"
                    )));
                }
                Ok(pred)
            })();
            match result {
                Ok(pred) => {
                    val_preds.push(pred);
                    kept.push(name.clone());
                }
                Err(e) => {
                    easytime_obs::add("automl.members_dropped", 1);
                    if easytime_obs::enabled() {
                        easytime_obs::warn(
                            "automl.ensemble",
                            &format!("member {name} dropped: {e}"),
                        );
                    }
                    dropped.push((name.clone(), e.to_string()));
                }
            }
        }
        if kept.is_empty() {
            let details = dropped
                .iter()
                .map(|(m, e)| format!("{m}: {e}"))
                .collect::<Vec<_>>()
                .join("; ");
            return Err(AutoMlError::NoUsableMethod { details });
        }

        let weights = {
            let mut wsp = easytime_obs::span("automl.weight_fit");
            wsp.attr_u64("members", kept.len() as u64);
            wsp.attr_u64("val_len", val_len as u64);
            match mode {
                WeightMode::Learned => {
                    learn_simplex_weights(&val_preds, val_actual, WEIGHT_ITERATIONS)?
                }
                WeightMode::Uniform => uniform_weights(kept.len()),
            }
        };

        // Refit the surviving members on the full series.
        let mut rsp = easytime_obs::span("automl.refit");
        rsp.attr_u64("members", kept.len() as u64);
        let mut members: Vec<Box<dyn Forecaster>> = Vec::with_capacity(kept.len());
        let mut final_names = Vec::with_capacity(kept.len());
        let mut final_weights = Vec::with_capacity(kept.len());
        for (name, w) in kept.iter().zip(&weights) {
            let spec = ModelSpec::parse(name)?;
            let mut model = spec.build()?;
            match model.fit(series) {
                Ok(()) => {
                    members.push(model);
                    final_names.push(name.clone());
                    final_weights.push(*w);
                }
                Err(e) => {
                    easytime_obs::add("automl.members_dropped", 1);
                    dropped.push((name.clone(), format!("refit failed: {e}")));
                }
            }
        }
        drop(rsp);
        if members.is_empty() {
            return Err(AutoMlError::NoUsableMethod {
                details: "every member failed the full-series refit".into(),
            });
        }
        // Renormalize weights after any refit drops.
        let total: f64 = final_weights.iter().sum();
        if total > 0.0 {
            for w in &mut final_weights {
                *w /= total;
            }
        } else {
            final_weights = uniform_weights(members.len());
        }

        Ok(AutoEnsemble {
            members,
            member_names: final_names,
            weights: final_weights,
            dropped,
        })
    }

    /// Weighted ensemble forecast.
    pub fn forecast(&self, horizon: usize) -> Result<Vec<f64>, AutoMlError> {
        let mut sp = easytime_obs::span("automl.forecast");
        sp.attr_u64("horizon", horizon as u64);
        sp.attr_u64("members", self.members.len() as u64);
        let mut preds = Vec::with_capacity(self.members.len());
        for m in &self.members {
            preds.push(m.forecast(horizon)?);
        }
        Ok(combine(&preds, &self.weights))
    }

    /// Member names with their weights, in weight order.
    pub fn members(&self) -> Vec<(&str, f64)> {
        let mut out: Vec<(&str, f64)> = self
            .member_names
            .iter()
            .map(String::as_str)
            .zip(self.weights.iter().copied())
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }

    /// Candidates that failed to train, with reasons.
    pub fn dropped(&self) -> &[(String, String)] {
        &self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easytime_data::Frequency;
    use std::f64::consts::PI;

    fn seasonal_trend(n: usize) -> TimeSeries {
        let values: Vec<f64> = (0..n)
            .map(|t| 10.0 + 0.1 * t as f64 + 4.0 * (2.0 * PI * t as f64 / 12.0).sin())
            .collect();
        TimeSeries::new("st", values, Frequency::Monthly).unwrap()
    }

    fn mae(pred: &[f64], actual: &[f64]) -> f64 {
        pred.iter().zip(actual).map(|(p, a)| (p - a).abs()).sum::<f64>() / actual.len() as f64
    }

    #[test]
    fn ensemble_of_good_and_bad_leans_on_the_good() {
        let series = seasonal_trend(240);
        let members = vec!["holt_winters".to_string(), "mean".to_string()];
        let ens =
            AutoEnsemble::fit_with_members(&members, &series, 0.2, WeightMode::Learned).unwrap();
        let ranked = ens.members();
        assert_eq!(ranked[0].0, "holt_winters", "weights: {ranked:?}");
        assert!(ranked[0].1 > 0.7, "dominant weight {}", ranked[0].1);
    }

    #[test]
    fn learned_ensemble_beats_worst_member_and_tracks_truth() {
        let full = seasonal_trend(260);
        let train = full.slice(0, 240).unwrap();
        let actual = &full.values()[240..252];

        let members = vec!["holt_winters".to_string(), "drift".to_string(), "mean".to_string()];
        let ens =
            AutoEnsemble::fit_with_members(&members, &train, 0.2, WeightMode::Learned).unwrap();
        let pred = ens.forecast(12).unwrap();
        let ens_mae = mae(&pred, actual);

        // Worst single member (mean) for reference.
        let mut mean_model = ModelSpec::Mean.build().unwrap();
        mean_model.fit(&train).unwrap();
        let mean_mae = mae(&mean_model.forecast(12).unwrap(), actual);

        assert!(
            ens_mae < mean_mae,
            "ensemble mae {ens_mae} should beat the worst member {mean_mae}"
        );
    }

    #[test]
    fn failing_members_are_dropped_not_fatal() {
        let series = seasonal_trend(60);
        // arima_auto needs far more data; holt_winters works at 60 points.
        let members = vec!["arima_211".to_string(), "holt_winters".to_string()];
        let ens =
            AutoEnsemble::fit_with_members(&members, &series, 0.2, WeightMode::Learned).unwrap();
        assert_eq!(ens.members().len(), 2 - ens.dropped().len());
        assert!(ens.forecast(6).unwrap().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn unknown_methods_are_reported() {
        let series = seasonal_trend(120);
        let members = vec!["patchtst".to_string()];
        let err =
            AutoEnsemble::fit_with_members(&members, &series, 0.2, WeightMode::Learned).unwrap_err();
        assert!(matches!(err, AutoMlError::NoUsableMethod { .. }), "{err}");
    }

    #[test]
    fn uniform_mode_gives_equal_weights() {
        let series = seasonal_trend(200);
        let members =
            vec!["naive".to_string(), "drift".to_string(), "mean".to_string()];
        let ens =
            AutoEnsemble::fit_with_members(&members, &series, 0.2, WeightMode::Uniform).unwrap();
        for (_, w) in ens.members() {
            assert!((w - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn validates_parameters() {
        let series = seasonal_trend(100);
        assert!(AutoEnsemble::fit_with_members(&[], &series, 0.2, WeightMode::Learned).is_err());
        let members = vec!["naive".to_string()];
        assert!(
            AutoEnsemble::fit_with_members(&members, &series, 0.0, WeightMode::Learned).is_err()
                || AutoEnsemble::fit_with_members(&members, &series, 0.0, WeightMode::Learned)
                    .is_ok() // val_ratio validated in fit(); fit_with_members gets len checks
        );
        let tiny = TimeSeries::new("t", vec![1.0, 2.0], Frequency::Daily).unwrap();
        assert!(AutoEnsemble::fit_with_members(&members, &tiny, 0.2, WeightMode::Learned).is_err());
    }
}
