//! Conversion of per-series method scores into (soft) classification labels.
//!
//! The paper trains its classifier "by using the soft-label loss \[10\]"
//! (SimpleTS): instead of a one-hot target naming only the single best
//! method, the target is a probability distribution that rewards *every*
//! close-to-best method. We build it from normalized scores with a softmax
//! at temperature `tau`; failed methods (NaN score) receive zero mass.

use easytime_linalg::stats::softmax;

/// Builds a soft-label distribution from a lower-is-better score vector.
///
/// Scores are min-max normalized to `[0, 1]`; the label is
/// `softmax(-z / tau)`. Small `tau` approaches one-hot on the best method;
/// large `tau` approaches uniform. NaN scores get zero probability.
/// Returns a uniform distribution when every score is NaN or they are all
/// equal.
pub(crate) fn soft_labels(scores: &[f64], tau: f64) -> Vec<f64> {
    let tau = tau.max(1e-3);
    let finite: Vec<f64> = scores.iter().copied().filter(|s| s.is_finite()).collect();
    if finite.is_empty() {
        return vec![1.0 / scores.len().max(1) as f64; scores.len()];
    }
    let lo = finite.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let range = (hi - lo).max(1e-12);

    // Logits for finite entries; −∞ for failures so softmax assigns zero.
    let logits: Vec<f64> = scores
        .iter()
        .map(|s| {
            if s.is_finite() {
                -((s - lo) / range) / tau
            } else {
                f64::NEG_INFINITY
            }
        })
        .collect();
    // softmax() handles −∞ via exp(−∞) = 0 as long as at least one entry is
    // finite (guaranteed above).
    softmax(&logits)
}

/// Builds a one-hot label on the single best (lowest) score — the
/// hard-label baseline of ablation A1. Ties go to the first index; all-NaN
/// returns uniform.
pub(crate) fn hard_labels(scores: &[f64]) -> Vec<f64> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &s) in scores.iter().enumerate() {
        if s.is_finite() && best.map_or(true, |(_, b)| s < b) {
            best = Some((i, s));
        }
    }
    match best {
        Some((i, _)) => {
            let mut out = vec![0.0; scores.len()];
            out[i] = 1.0;
            out
        }
        None => vec![1.0 / scores.len().max(1) as f64; scores.len()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_labels_are_a_distribution_favoring_the_best() {
        let p = soft_labels(&[1.0, 2.0, 10.0], 0.3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] > p[1] && p[1] > p[2]);
    }

    #[test]
    fn temperature_controls_sharpness() {
        let scores = [1.0, 1.1, 5.0];
        let sharp = soft_labels(&scores, 0.01);
        let smooth = soft_labels(&scores, 5.0);
        assert!(sharp[0] > smooth[0]);
        // Near-uniform at high temperature.
        assert!((smooth[0] - smooth[2]).abs() < 0.2);
        // Near-one-hot at low temperature.
        assert!(sharp[0] > 0.7);
    }

    #[test]
    fn close_methods_share_mass() {
        // Two nearly-tied methods should both receive substantial mass —
        // the whole point of soft labels.
        let p = soft_labels(&[1.0, 1.01, 100.0], 0.3);
        assert!(p[1] > 0.3, "runner-up mass {}", p[1]);
        assert!(p[2] < 0.1);
    }

    #[test]
    fn failed_methods_get_zero_mass() {
        let p = soft_labels(&[1.0, f64::NAN, 2.0], 0.3);
        assert_eq!(p[1], 0.0);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_failed_or_empty_degrades_to_uniform() {
        let p = soft_labels(&[f64::NAN, f64::NAN], 0.3);
        assert_eq!(p, vec![0.5, 0.5]);
        let q = soft_labels(&[3.0, 3.0, 3.0], 0.3);
        for v in q {
            assert!((v - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn hard_labels_pick_the_minimum() {
        assert_eq!(hard_labels(&[3.0, 1.0, 2.0]), vec![0.0, 1.0, 0.0]);
        assert_eq!(hard_labels(&[f64::NAN, 5.0]), vec![0.0, 1.0]);
        assert_eq!(hard_labels(&[f64::NAN, f64::NAN]), vec![0.5, 0.5]);
    }
}
