//! Method recommendation: offline pretraining and online inference.
//!
//! Offline (paper Figure 2, left): evaluate the method zoo on the corpus,
//! embed every corpus series, convert the per-series score vectors into
//! soft labels, and train the classifier. Online (right): embed the new
//! series and read the classifier's probability ranking.

use crate::classifier::{ClassifierConfig, LabelMode, SoftLabelClassifier};
use crate::error::AutoMlError;
use crate::labels::{hard_labels, soft_labels};
use easytime_data::scaler::ScalerKind;
use easytime_data::{Dataset, SplitSpec, TimeSeries};
use easytime_eval::{
    evaluate_corpus, EvalConfig, EvalRecord, FailureKind, MetricRegistry, Strategy,
};
use easytime_models::zoo::standard_zoo;
use easytime_models::ModelSpec;
use easytime_repr::{EmbedScratch, Embedder, EmbedderConfig};

/// Configuration of recommender pretraining.
#[derive(Debug, Clone)]
pub struct RecommenderConfig {
    /// Candidate methods (the zoo the classifier ranks).
    pub methods: Vec<ModelSpec>,
    /// Lower-is-better metric the ranking optimizes (scale-free metrics
    /// such as `smape`/`mase` compare sanely across datasets).
    pub metric: String,
    /// Evaluation strategy for the offline benchmark runs.
    pub strategy: Strategy,
    /// Split used in offline evaluation.
    pub split: SplitSpec,
    /// Normalization for offline evaluation.
    pub scaler: ScalerKind,
    /// Embedder configuration.
    pub embedder: EmbedderConfig,
    /// Classifier training configuration.
    pub classifier: ClassifierConfig,
    /// Soft vs hard labels (ablation A1).
    pub label_mode: LabelMode,
    /// Soft-label temperature.
    pub temperature: f64,
    /// Worker threads for the offline sweep (0 = all cores).
    pub threads: usize,
}

impl Default for RecommenderConfig {
    fn default() -> Self {
        RecommenderConfig {
            methods: standard_zoo().into_iter().map(|e| e.spec).collect(),
            metric: "smape".into(),
            strategy: Strategy::Fixed { horizon: 24 },
            split: SplitSpec::default(),
            scaler: ScalerKind::ZScore,
            embedder: EmbedderConfig::default(),
            classifier: ClassifierConfig::default(),
            label_mode: LabelMode::Soft,
            temperature: 0.15,
            threads: 0,
        }
    }
}

/// Per-dataset × per-method score matrix (lower is better; NaN = failed).
#[derive(Debug, Clone, PartialEq)]
pub struct PerfMatrix {
    /// Dataset ids, row order.
    pub dataset_ids: Vec<String>,
    /// Method names, column order.
    pub methods: Vec<String>,
    /// `scores[dataset][method]`.
    pub scores: Vec<Vec<f64>>,
}

impl PerfMatrix {
    /// Builds the matrix from pipeline records for one metric.
    pub fn from_records(
        records: &[EvalRecord],
        dataset_ids: &[String],
        methods: &[String],
        metric: &str,
    ) -> PerfMatrix {
        let mut scores = vec![vec![f64::NAN; methods.len()]; dataset_ids.len()];
        for r in records {
            let (Some(di), Some(mi)) = (
                dataset_ids.iter().position(|d| *d == r.dataset_id),
                methods.iter().position(|m| *m == r.method),
            ) else {
                continue;
            };
            // Typed failure filter (no error-string matching): every
            // categorized failure leaves the NaN sentinel in the matrix.
            match r.failure_kind() {
                None => scores[di][mi] = r.score(metric),
                Some(
                    FailureKind::DataTooShort
                    | FailureKind::ModelDiverged
                    | FailureKind::ScalerDegenerate
                    | FailureKind::Other,
                ) => {}
            }
        }
        PerfMatrix { dataset_ids: dataset_ids.to_vec(), methods: methods.to_vec(), scores }
    }

    /// Index of the best (lowest-scoring) method on dataset `i`.
    pub fn best_method(&self, i: usize) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (m, &s) in self.scores[i].iter().enumerate() {
            if s.is_finite() && best.map_or(true, |(_, b)| s < b) {
                best = Some((m, s));
            }
        }
        best.map(|(m, _)| m)
    }

    /// Method indices of dataset `i` sorted best (lowest) first; failed
    /// methods sort last.
    pub fn ranking(&self, i: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.methods.len()).collect();
        idx.sort_by(|&a, &b| {
            let sa = self.scores[i][a];
            let sb = self.scores[i][b];
            match (sa.is_finite(), sb.is_finite()) {
                (true, true) => sa.total_cmp(&sb),
                (true, false) => std::cmp::Ordering::Less,
                (false, true) => std::cmp::Ordering::Greater,
                (false, false) => std::cmp::Ordering::Equal,
            }
        });
        idx
    }
}

/// One entry of a method recommendation ranking: the typed replacement
/// for the old `(String, f64)` pairs, shared by the facade's
/// `EasyTime::recommend` and the serving engine's responses.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// Canonical method name (parses back via `ModelSpec::parse`).
    pub method: String,
    /// Classifier probability assigned to the method.
    pub score: f64,
    /// Zero-based position in the ranking (0 = best).
    pub rank: usize,
}

/// The pretrained recommender: embedder + classifier + method roster.
#[derive(Debug, Clone)]
pub struct Recommender {
    embedder: Embedder,
    classifier: SoftLabelClassifier,
    methods: Vec<String>,
}

impl Recommender {
    /// Offline pretraining from a corpus: runs the zoo, embeds, trains.
    /// Returns the recommender and the raw performance matrix (which the
    /// experiments reuse as the ground truth for ranking quality).
    pub fn pretrain(
        corpus: &[Dataset],
        config: &RecommenderConfig,
    ) -> Result<(Recommender, PerfMatrix), AutoMlError> {
        if corpus.is_empty() {
            return Err(AutoMlError::InvalidInput { reason: "empty pretraining corpus".into() });
        }
        let mut sp = easytime_obs::span("automl.pretrain");
        sp.attr_u64("corpus", corpus.len() as u64);
        sp.attr_u64("methods", config.methods.len() as u64);
        let registry = MetricRegistry::standard();
        let eval_config = EvalConfig::builder()
            .methods(config.methods.iter().cloned())
            .strategy(config.strategy)
            .split(config.split)
            .scaler(config.scaler)
            .metrics([config.metric.clone()])
            .threads(config.threads)
            .build(&registry)?;
        let records = evaluate_corpus(corpus, &eval_config, &registry)?;
        let dataset_ids: Vec<String> = corpus.iter().map(|d| d.meta.id.clone()).collect();
        let methods: Vec<String> = config.methods.iter().map(ModelSpec::name).collect();
        let matrix = PerfMatrix::from_records(&records, &dataset_ids, &methods, &config.metric);

        let series: Vec<TimeSeries> = corpus.iter().map(Dataset::primary_series).collect();
        let rec = Self::pretrain_from_matrix(&series, &matrix, config)?;
        Ok((rec, matrix))
    }

    /// Pretrains from an existing performance matrix (e.g. read back from
    /// the benchmark-knowledge database), skipping the evaluation sweep.
    pub fn pretrain_from_matrix(
        corpus_series: &[TimeSeries],
        matrix: &PerfMatrix,
        config: &RecommenderConfig,
    ) -> Result<Recommender, AutoMlError> {
        if corpus_series.len() != matrix.scores.len() {
            return Err(AutoMlError::InvalidInput {
                reason: format!(
                    "{} series but {} score rows",
                    corpus_series.len(),
                    matrix.scores.len()
                ),
            });
        }
        let mut embedder = Embedder::new(config.embedder);
        let embeddings = {
            let mut esp = easytime_obs::span("automl.embed");
            esp.attr_u64("series", corpus_series.len() as u64);
            embedder.fit(corpus_series)
        };
        let targets: Vec<Vec<f64>> = matrix
            .scores
            .iter()
            .map(|row| match config.label_mode {
                LabelMode::Soft => soft_labels(row, config.temperature),
                LabelMode::Hard => hard_labels(row),
            })
            .collect();
        let classifier = {
            let mut tsp = easytime_obs::span("automl.train_classifier");
            tsp.attr_u64("examples", embeddings.len() as u64);
            SoftLabelClassifier::train(&embeddings, &targets, &config.classifier)?
        };
        Ok(Recommender { embedder, classifier, methods: matrix.methods.clone() })
    }

    /// Online inference: the full probability ranking for a new series,
    /// best first.
    pub fn recommend(&self, series: &TimeSeries) -> Vec<Recommendation> {
        let mut scratch = EmbedScratch::new();
        let mut embedding = Vec::new();
        self.recommend_with(series, &mut scratch, &mut embedding)
    }

    /// Online inference with caller-provided buffers: embeds through
    /// [`Embedder::embed_into`] so batch recommendation loops reuse the
    /// z-normalization scratch and embedding vector across series.
    pub(crate) fn recommend_with(
        &self,
        series: &TimeSeries,
        scratch: &mut EmbedScratch,
        embedding: &mut Vec<f64>,
    ) -> Vec<Recommendation> {
        self.embedder.embed_into(series, scratch, embedding);
        self.rank(self.classifier.predict_proba(embedding))
    }

    /// Coalesced online inference for the serving engine's micro-batcher:
    /// stacks every series' embedding into one row-major matrix
    /// ([`Embedder::embed_batch_into`]) and scores all of them with a
    /// single blocked matmul. Each returned ranking is bit-identical to
    /// [`Recommender::recommend`] on the same series — batching changes
    /// the wall-clock cost, never the answer.
    pub fn recommend_batch(&self, batch: &[&TimeSeries]) -> Vec<Vec<Recommendation>> {
        let mut scratch = EmbedScratch::new();
        let mut flat = Vec::new();
        self.embedder.embed_batch_into(batch, &mut scratch, &mut flat);
        let mut panel = Vec::new();
        self.classifier
            .predict_proba_batch(&flat, &mut panel)
            .into_iter()
            .map(|p| self.rank(p))
            .collect()
    }

    /// Sorts per-method probabilities into a best-first typed ranking.
    fn rank(&self, probs: Vec<f64>) -> Vec<Recommendation> {
        let mut out: Vec<Recommendation> = self
            .methods
            .iter()
            .cloned()
            .zip(probs)
            .map(|(method, score)| Recommendation { method, score, rank: 0 })
            .collect();
        out.sort_by(|a, b| b.score.total_cmp(&a.score));
        for (i, r) in out.iter_mut().enumerate() {
            r.rank = i;
        }
        out
    }

    /// The top-k method names for a new series.
    pub(crate) fn top_k(&self, series: &TimeSeries, k: usize) -> Vec<String> {
        self.recommend(series).into_iter().take(k.max(1)).map(|r| r.method).collect()
    }

    /// The ranked method roster.
    pub fn methods(&self) -> &[String] {
        &self.methods
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easytime_data::synthetic::{build_corpus, CorpusConfig};
    use easytime_data::{Domain, Frequency};

    /// A small, fast method roster with clearly different strengths.
    fn small_methods() -> Vec<ModelSpec> {
        vec![
            ModelSpec::SeasonalNaive(None),
            ModelSpec::Drift,
            ModelSpec::Mean,
        ]
    }

    fn small_config() -> RecommenderConfig {
        RecommenderConfig {
            methods: small_methods(),
            strategy: Strategy::Fixed { horizon: 12 },
            embedder: EmbedderConfig { num_kernels: 24, use_stats: true, seed: 5 },
            classifier: ClassifierConfig { epochs: 120, ..ClassifierConfig::default() },
            ..RecommenderConfig::default()
        }
    }

    fn corpus() -> Vec<Dataset> {
        build_corpus(&CorpusConfig {
            domains: vec![Domain::Nature, Domain::Stock, Domain::Traffic],
            per_domain: 8,
            length: 180,
            seed: 3,
            ..CorpusConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn pretrain_produces_matrix_and_ranker() {
        let c = corpus();
        let (rec, matrix) = Recommender::pretrain(&c, &small_config()).unwrap();
        assert_eq!(matrix.scores.len(), c.len());
        assert_eq!(matrix.methods.len(), 3);
        assert_eq!(rec.methods().len(), 3);
        // Most corpus entries should have at least one finite score.
        let usable = (0..c.len()).filter(|&i| matrix.best_method(i).is_some()).count();
        assert!(usable >= c.len() * 9 / 10, "{usable}/{} usable", c.len());
    }

    #[test]
    fn recommendation_beats_random_on_seasonal_vs_random_walk() {
        // Seasonal nature data favours seasonal_naive; stock random walks
        // favour drift/mean. The recommender should pick up on that split.
        let c = corpus();
        let (rec, matrix) = Recommender::pretrain(&c, &small_config()).unwrap();
        let mut top1_hits = 0;
        let mut n = 0;
        for (i, d) in c.iter().enumerate() {
            let Some(best) = matrix.best_method(i) else { continue };
            let predicted = rec.top_k(&d.primary_series(), 1)[0].clone();
            if predicted == matrix.methods[best] {
                top1_hits += 1;
            }
            n += 1;
        }
        let hit_rate = top1_hits as f64 / n as f64;
        assert!(
            hit_rate > 1.0 / 3.0 + 0.15,
            "top-1 hit rate {hit_rate} should clearly beat the 1/3 random baseline"
        );
    }

    #[test]
    fn recommend_returns_sorted_distribution() {
        let c = corpus();
        let (rec, _) = Recommender::pretrain(&c, &small_config()).unwrap();
        let ranking = rec.recommend(&c[0].primary_series());
        assert_eq!(ranking.len(), 3);
        assert!(ranking.windows(2).all(|w| w[0].score >= w[1].score));
        assert!(ranking.iter().enumerate().all(|(i, r)| r.rank == i));
        let total: f64 = ranking.iter().map(|r| r.score).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let top2 = rec.top_k(&c[0].primary_series(), 2);
        assert_eq!(top2[0], ranking[0].method);
        assert_eq!(top2.len(), 2);
    }

    #[test]
    fn batched_recommendation_matches_single_series_calls() {
        let c = corpus();
        let (rec, _) = Recommender::pretrain(&c, &small_config()).unwrap();
        let owned: Vec<TimeSeries> =
            c.iter().take(4).map(|d| d.primary_series()).collect();
        let batch: Vec<&TimeSeries> = owned.iter().collect();
        let batched = rec.recommend_batch(&batch);
        assert_eq!(batched.len(), batch.len());
        for (series, ranking) in batch.iter().zip(&batched) {
            assert_eq!(*ranking, rec.recommend(series));
        }
        assert!(rec.recommend_batch(&[]).is_empty());
    }

    #[test]
    fn perf_matrix_ranking_and_best() {
        let m = PerfMatrix {
            dataset_ids: vec!["a".into()],
            methods: vec!["m0".into(), "m1".into(), "m2".into()],
            scores: vec![vec![2.0, f64::NAN, 1.0]],
        };
        assert_eq!(m.best_method(0), Some(2));
        assert_eq!(m.ranking(0), vec![2, 0, 1]);
        let empty = PerfMatrix {
            dataset_ids: vec!["a".into()],
            methods: vec!["m0".into()],
            scores: vec![vec![f64::NAN]],
        };
        assert_eq!(empty.best_method(0), None);
    }

    #[test]
    fn pretrain_validates_inputs() {
        assert!(Recommender::pretrain(&[], &small_config()).is_err());
        let series = vec![TimeSeries::new("s", vec![1.0; 50], Frequency::Daily).unwrap()];
        let matrix = PerfMatrix {
            dataset_ids: vec!["a".into(), "b".into()],
            methods: vec!["m".into()],
            scores: vec![vec![1.0], vec![2.0]],
        };
        assert!(Recommender::pretrain_from_matrix(&series, &matrix, &small_config()).is_err());
    }
}
