//! Ensemble weight learning on the validation split.
//!
//! The paper: EasyTime "learns the ensemble weights on the validation part
//! of X such that it fits the best to X". We solve the constrained least
//! squares problem — minimize `‖Σ wᵢ fᵢ − y‖²` subject to `wᵢ ≥ 0`,
//! `Σ wᵢ = 1` — with exponentiated-gradient descent, which keeps iterates
//! on the simplex by construction and is robust to collinear members.

use crate::error::AutoMlError;

/// Learns simplex-constrained combination weights.
///
/// `member_preds[i]` holds member `i`'s predictions on the validation
/// window; `actual` is the ground truth. Returns one weight per member.
pub(crate) fn learn_simplex_weights(
    member_preds: &[Vec<f64>],
    actual: &[f64],
    iterations: usize,
) -> Result<Vec<f64>, AutoMlError> {
    let k = member_preds.len();
    if k == 0 {
        return Err(AutoMlError::InvalidInput { reason: "no ensemble members".into() });
    }
    let n = actual.len();
    if n == 0 {
        return Err(AutoMlError::InvalidInput { reason: "empty validation window".into() });
    }
    for (i, p) in member_preds.iter().enumerate() {
        if p.len() != n {
            return Err(AutoMlError::InvalidInput {
                reason: format!("member {i} has {} predictions, expected {n}", p.len()),
            });
        }
        if p.iter().any(|v| !v.is_finite()) {
            return Err(AutoMlError::InvalidInput {
                reason: format!("member {i} produced non-finite predictions"),
            });
        }
    }
    if k == 1 {
        return Ok(vec![1.0]);
    }

    // Scale-aware learning rate: gradients are O(scale²).
    let scale: f64 =
        actual.iter().map(|v| v.abs()).fold(0.0, f64::max).max(1e-9);
    let lr = 1.0 / (scale * scale);

    let mut w = vec![1.0 / k as f64; k];
    let mut combined = vec![0.0; n];
    for _ in 0..iterations.max(1) {
        // combined = Σ wᵢ fᵢ
        for (t, c) in combined.iter_mut().enumerate() {
            *c = member_preds.iter().zip(&w).map(|(p, wi)| wi * p[t]).sum();
        }
        // gradient of 0.5‖combined − y‖²/n wrt wᵢ = Σ (combined−y)·fᵢ / n
        let mut updated = Vec::with_capacity(k);
        let mut norm = 0.0;
        for (i, wi) in w.iter().enumerate() {
            let grad: f64 = combined
                .iter()
                .zip(actual)
                .zip(&member_preds[i])
                .map(|((c, y), f)| (c - y) * f)
                .sum::<f64>()
                / n as f64;
            // Exponentiated gradient step (clamped for stability).
            let v = wi * (-lr * grad).clamp(-30.0, 30.0).exp();
            norm += v;
            updated.push(v);
        }
        if norm <= 0.0 || !norm.is_finite() {
            break;
        }
        for (wi, v) in w.iter_mut().zip(updated) {
            *wi = v / norm;
        }
    }
    Ok(w)
}

/// The uniform-weights baseline (ablation A4).
pub(crate) fn uniform_weights(k: usize) -> Vec<f64> {
    vec![1.0 / k.max(1) as f64; k]
}

/// Combines member forecasts with the given weights.
pub(crate) fn combine(member_preds: &[Vec<f64>], weights: &[f64]) -> Vec<f64> {
    assert_eq!(member_preds.len(), weights.len(), "member/weight count mismatch");
    if member_preds.is_empty() {
        return Vec::new();
    }
    let n = member_preds[0].len();
    (0..n)
        .map(|t| member_preds.iter().zip(weights).map(|(p, w)| w * p[t]).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mse(pred: &[f64], actual: &[f64]) -> f64 {
        pred.iter().zip(actual).map(|(p, a)| (p - a) * (p - a)).sum::<f64>() / actual.len() as f64
    }

    #[test]
    fn weights_live_on_the_simplex() {
        let preds = vec![vec![1.0, 2.0, 3.0], vec![3.0, 2.0, 1.0], vec![2.0, 2.0, 2.0]];
        let actual = vec![2.0, 2.0, 2.0];
        let w = learn_simplex_weights(&preds, &actual, 500).unwrap();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn perfect_member_gets_dominant_weight() {
        let actual: Vec<f64> = (0..20).map(|t| (t as f64 * 0.3).sin()).collect();
        let good = actual.clone();
        let bad: Vec<f64> = actual.iter().map(|v| v + 5.0).collect();
        let w = learn_simplex_weights(&[good, bad], &actual, 2000).unwrap();
        assert!(w[0] > 0.9, "good member weight {}", w[0]);
    }

    #[test]
    fn learned_weights_beat_uniform_when_members_differ() {
        let actual: Vec<f64> = (0..30).map(|t| t as f64).collect();
        let good: Vec<f64> = actual.iter().map(|v| v + 0.1).collect();
        let bad: Vec<f64> = actual.iter().map(|v| v * 0.5).collect();
        let preds = vec![good, bad];
        let learned = learn_simplex_weights(&preds, &actual, 2000).unwrap();
        let u = uniform_weights(2);
        let mse_learned = mse(&combine(&preds, &learned), &actual);
        let mse_uniform = mse(&combine(&preds, &u), &actual);
        assert!(
            mse_learned < mse_uniform,
            "learned {mse_learned} should beat uniform {mse_uniform}"
        );
    }

    #[test]
    fn complementary_members_both_keep_weight() {
        // Truth is exactly the average of the two members.
        let m1: Vec<f64> = (0..40).map(|t| (t as f64 * 0.2).sin() + 1.0).collect();
        let m2: Vec<f64> = (0..40).map(|t| (t as f64 * 0.2).sin() - 1.0).collect();
        let actual: Vec<f64> = m1.iter().zip(&m2).map(|(a, b)| (a + b) / 2.0).collect();
        let w = learn_simplex_weights(&[m1, m2], &actual, 3000).unwrap();
        assert!((w[0] - 0.5).abs() < 0.1, "w0 {}", w[0]);
        assert!((w[1] - 0.5).abs() < 0.1, "w1 {}", w[1]);
    }

    #[test]
    fn validates_inputs() {
        assert!(learn_simplex_weights(&[], &[1.0], 10).is_err());
        assert!(learn_simplex_weights(&[vec![1.0]], &[], 10).is_err());
        assert!(learn_simplex_weights(&[vec![1.0, 2.0]], &[1.0], 10).is_err());
        assert!(learn_simplex_weights(&[vec![f64::NAN]], &[1.0], 10).is_err());
        // Single member short-circuits to weight 1.
        assert_eq!(learn_simplex_weights(&[vec![5.0]], &[1.0], 10).unwrap(), vec![1.0]);
    }

    #[test]
    fn combine_is_a_convex_combination() {
        let preds = vec![vec![0.0, 10.0], vec![10.0, 0.0]];
        let c = combine(&preds, &[0.3, 0.7]);
        assert!((c[0] - 7.0).abs() < 1e-12);
        assert!((c[1] - 3.0).abs() < 1e-12);
        assert!(combine(&[], &[]).is_empty());
    }

    #[test]
    fn large_scale_series_converge_too() {
        // Regression guard for the scale-aware learning rate.
        let actual: Vec<f64> = (0..25).map(|t| 1e6 + t as f64 * 100.0).collect();
        let good = actual.clone();
        let bad: Vec<f64> = actual.iter().map(|v| v - 5e4).collect();
        let w = learn_simplex_weights(&[good, bad], &actual, 2000).unwrap();
        assert!(w[0] > 0.8, "good member weight {} at scale 1e6", w[0]);
    }
}
