//! Automated Ensemble module of EasyTime (paper §II-C, Figure 2).
//!
//! Offline pretraining: embed every corpus series ([`easytime_repr`]),
//! evaluate the method zoo on the corpus (the benchmark knowledge), convert
//! per-series method performance into *soft labels* (following SimpleTS),
//! and train a classifier mapping embeddings to a probability ranking over
//! methods.
//!
//! Online inference: embed the new series, take the classifier's top-k
//! methods, train them on the training part of the series, learn ensemble
//! weights on the validation part, and forecast with the weighted ensemble.
//!
//! * [`classifier`] — multinomial logistic regression trained with
//!   soft-label cross-entropy (hard-label mode retained for ablation A1).
//! * [`labels`] — score matrix → soft label conversion.
//! * [`recommender`] — the offline/online recommendation workflow.
//! * [`weights`] — simplex-constrained ensemble weight learning
//!   (exponentiated gradient), plus the uniform baseline for ablation A4.
//! * [`ensemble`] — the [`ensemble::AutoEnsemble`]
//!   forecaster tying it all together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classifier;
pub mod ensemble;
pub mod error;
pub mod labels;
pub mod recommender;
pub mod weights;

pub use classifier::{ClassifierConfig, LabelMode, SoftLabelClassifier};
pub use ensemble::AutoEnsemble;
pub use error::AutoMlError;
pub use recommender::{PerfMatrix, Recommendation, Recommender, RecommenderConfig};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, AutoMlError>;
