//! Regression tests for NaN-stable rankings (lint rule R6 burn-down).
//!
//! The recommender and report layers used to rank methods with
//! `partial_cmp(..).unwrap_or(Ordering::Equal)` comparators, which violate
//! strict weak ordering as soon as a score is NaN: the resulting order was
//! whatever the sort algorithm happened to produce. These tests pin the
//! *documented* ordering — finite scores ascending, failed (non-finite)
//! methods last, NaN never reshuffling its neighbours — and assert it is
//! byte-identical across repeated evaluations.

use easytime_automl::PerfMatrix;
use easytime_eval::{EvalRecord, Leaderboard};
use std::collections::BTreeMap;

fn matrix(scores: Vec<Vec<f64>>) -> PerfMatrix {
    let methods: Vec<String> = (0..scores[0].len()).map(|m| format!("m{m}")).collect();
    let dataset_ids: Vec<String> = (0..scores.len()).map(|d| format!("d{d}")).collect();
    PerfMatrix { dataset_ids, methods, scores }
}

#[test]
fn perf_matrix_ranking_is_stable_with_nan_scores() {
    // Method 1 failed (NaN), method 4 diverged (inf). Documented order:
    // finite ascending, then non-finite in original column order (the
    // sort is stable).
    let pm = matrix(vec![vec![3.0, f64::NAN, 1.0, 2.0, f64::INFINITY]]);
    let expected = vec![2, 3, 0, 1, 4];
    assert_eq!(pm.ranking(0), expected);
    for _ in 0..100 {
        assert_eq!(pm.ranking(0), expected, "ranking must not drift across runs");
    }
    // NaN is not "equal" to its neighbours: the finite prefix is ordered
    // regardless of where the NaN column sits.
    let shifted = matrix(vec![vec![f64::NAN, 3.0, 1.0, 2.0]]);
    assert_eq!(shifted.ranking(0), vec![2, 3, 1, 0]);
}

#[test]
fn perf_matrix_best_method_ignores_nan() {
    let pm = matrix(vec![vec![f64::NAN, 2.0, 1.5]]);
    assert_eq!(pm.best_method(0), Some(2));
    let all_failed = matrix(vec![vec![f64::NAN, f64::NAN]]);
    assert_eq!(all_failed.best_method(0), None);
}

fn record(dataset: &str, method: &str, mae: f64) -> EvalRecord {
    EvalRecord {
        dataset_id: dataset.to_string(),
        method: method.to_string(),
        family: "test".to_string(),
        strategy: "fixed".to_string(),
        horizon: 12,
        scores: BTreeMap::from([("mae".to_string(), mae)]),
        windows: 1,
        runtime_ms: 0.0,
        error: None,
    }
}

#[test]
fn leaderboard_with_nan_scores_is_identical_across_runs() {
    let records = vec![
        record("d0", "arima", 1.0),
        record("d0", "naive", 2.0),
        record("d0", "theta", f64::NAN),
        record("d1", "arima", 3.0),
        record("d1", "naive", 1.0),
        record("d1", "theta", f64::NAN),
    ];
    let first = Leaderboard::from_records(&records, "mae", true);
    // NaN-scored entries are excluded rather than ranked arbitrarily.
    assert!(first.rows.iter().all(|r| r.method != "theta"));
    assert!(first.rows.iter().all(|r| r.mean_rank.is_finite()));
    for _ in 0..50 {
        let again = Leaderboard::from_records(&records, "mae", true);
        assert_eq!(again, first, "leaderboard must be deterministic");
    }
    // Permuting the record order must not change the standings either.
    let mut reversed = records.clone();
    reversed.reverse();
    assert_eq!(Leaderboard::from_records(&reversed, "mae", true), first);
}
