//! Method recommendation for an uploaded dataset (Figure 4, labels 1–5).
//!
//! A practitioner uploads their own CSV, the platform measures the six
//! TFB characteristics (label 4), recommends methods (label 3), and
//! evaluates both the recommended method and a user-chosen alternative
//! (labels 5–7) with metric tables (label 10).
//!
//! ```sh
//! cargo run --release -p easytime --example method_recommendation
//! ```

use easytime::{
    CorpusConfig, Domain, EasyTime, Frequency, ModelSpec, RecommenderConfig, Strategy,
};
use std::f64::consts::PI;

fn main() -> easytime::Result<()> {
    let platform = EasyTime::with_benchmark(&CorpusConfig {
        domains: vec![Domain::Nature, Domain::Stock, Domain::Traffic, Domain::Banking],
        per_domain: 8,
        length: 260,
        seed: 17,
        ..CorpusConfig::default()
    })?;

    // Offline pretraining (the corpus plays the role of TFB's 8,068
    // series).
    let config = RecommenderConfig {
        methods: vec![
            ModelSpec::SeasonalNaive(None),
            ModelSpec::Drift,
            ModelSpec::HoltWinters(None),
            ModelSpec::Ses(None),
            ModelSpec::NLinear { lookback: 32 },
        ],
        strategy: Strategy::Fixed { horizon: 12 },
        ..RecommenderConfig::default()
    };
    let (recommender, _) = platform.pretrain_recommender(&config)?;

    // --- "Upload Dataset" (label 1): monthly sales with trend + season.
    let mut csv = String::from("value\n");
    for t in 0..180 {
        let v = 200.0
            + 1.5 * t as f64
            + 40.0 * (2.0 * PI * t as f64 / 12.0).sin()
            + 10.0 * ((t * 7919 % 101) as f64 / 101.0 - 0.5);
        csv.push_str(&format!("{v:.3}\n"));
    }
    let chars = platform.upload_csv("my_sales", Domain::Banking, &csv, Frequency::Monthly)?;

    // --- Characteristics panel (label 4).
    println!("Characteristics of 'my_sales':");
    println!("  seasonality  {:.2}", chars.seasonality);
    println!("  trend        {:.2}", chars.trend);
    println!("  transition   {:.2}", chars.transition);
    println!("  shifting     {:.2}", chars.shifting);
    println!("  stationarity {:.2}", chars.stationarity);
    println!("  period       {}", chars.period);
    println!("  tags         {:?}\n", chars.tags());

    // --- "Recommend Method" (label 3).
    let ranking = platform.recommend(&recommender, "my_sales", 5)?;
    println!("Recommended methods:");
    for r in &ranking {
        println!("  {}. {:<16} p = {:.3}", r.rank + 1, r.method, r.score);
    }

    // --- Evaluate the recommendation and a user-chosen method (labels
    //     5–7, 10) with one click each.
    let recommended = &ranking[0].method;
    let records = platform.one_click_json(&format!(
        r#"{{
            "methods": ["{recommended}", "naive"],
            "strategy": {{"type": "rolling", "horizon": 12, "stride": 12}},
            "datasets": ["my_sales"],
            "metrics": ["mae", "smape", "mase"]
        }}"#
    ))?;
    println!("\nEvaluation on 'my_sales' (rolling, horizon 12):");
    for r in &records {
        println!(
            "  {:<16} MAE {:>9.3}  sMAPE {:>7.3}  MASE {:>6.3}",
            r.method,
            r.score("mae"),
            r.score("smape"),
            r.score("mase")
        );
    }

    // Bonus: an 80% prediction interval for the recommended method,
    // calibrated by backtesting inside the training data.
    let series = platform.registry().get("my_sales")?.primary_series();
    let spec = easytime::ModelSpec::parse(recommended)?;
    let interval =
        easytime_models::intervals::forecast_with_intervals(&spec, &series, 12, 0.8, 6)?;
    println!("\n80% prediction interval for the next 12 months ({recommended}):");
    for (h, ((p, lo), hi)) in interval
        .point
        .iter()
        .zip(&interval.lower)
        .zip(&interval.upper)
        .enumerate()
    {
        println!("  t+{:<2} {:>9.2}  [{:>9.2}, {:>9.2}]", h + 1, p, lo, hi);
    }
    Ok(())
}
