//! Quickstart: build a small benchmark, run one-click evaluation, look at
//! the leaderboard, and ask the platform a question.
//!
//! ```sh
//! cargo run --release -p easytime --example quickstart
//! ```

use easytime::{CorpusConfig, Domain, EasyTime};

fn main() -> easytime::Result<()> {
    // 1. A platform with a synthetic benchmark corpus: 4 series in each of
    //    three domains with very different dynamics.
    let platform = EasyTime::with_benchmark(&CorpusConfig {
        domains: vec![Domain::Nature, Domain::Stock, Domain::Electricity],
        per_domain: 4,
        length: 300,
        seed: 7,
        ..CorpusConfig::default()
    })?;
    println!(
        "Benchmark ready: {} datasets, {} registered methods.\n",
        platform.registry().len(),
        platform.method_roster().len()
    );

    // 2. One-click evaluation from a configuration file (paper §II-B): the
    //    same JSON a user would edit in the web frontend.
    let records = platform.one_click_json(
        r#"{
            "methods": ["naive", "seasonal_naive", "drift", "theta", "ses", "lag_ridge_16"],
            "strategy": {"type": "rolling", "horizon": 24, "stride": 24},
            "metrics": ["mae", "rmse", "smape", "mase"]
        }"#,
    )?;
    let failures = records.iter().filter(|r| !r.is_ok()).count();
    println!("Evaluated {} (dataset × method) pairs, {failures} failures.\n", records.len());

    // 3. The leaderboard across all datasets (reporting layer).
    let board = platform.leaderboard("mase")?;
    println!("{}", board.render());

    // 4. Ask the accumulated benchmark knowledge a question (paper §II-D).
    let mut qa = platform.qa_session()?;
    for question in [
        "What are the top 3 methods by MASE?",
        "Which method is best on stock data?",
    ] {
        let response = qa.ask(question)?;
        println!("Q: {question}");
        println!("SQL: {}", response.sql);
        println!("A: {}\n", response.answer);
    }
    Ok(())
}
