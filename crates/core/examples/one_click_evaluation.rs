//! One-click evaluation (paper demonstration S1).
//!
//! Shows the researcher workflow: change the forecasting scenario by
//! editing only the configuration, compare fixed-window against rolling
//! evaluation, and register a custom metric — the consistency hazards
//! Challenge 1 calls out (strategies, metrics, normalization, drop-last)
//! handled by configuration alone.
//!
//! ```sh
//! cargo run --release -p easytime --example one_click_evaluation
//! ```

use easytime::{CorpusConfig, Domain, EasyTime, EvalRecord};

fn main() -> easytime::Result<()> {
    let platform = EasyTime::with_benchmark(&CorpusConfig {
        domains: vec![Domain::Traffic, Domain::Web],
        per_domain: 5,
        length: 400,
        seed: 21,
        ..CorpusConfig::default()
    })?;

    // Scenario A: fixed-window, horizon 24 (a "new forecasting horizon" is
    // one config line away).
    let fixed = platform.one_click_json(
        r#"{
            "methods": ["seasonal_naive", "theta", "dlinear_32", "gboost_12"],
            "strategy": {"type": "fixed", "horizon": 24},
            "scaler": "zscore",
            "metrics": ["mae", "smape"]
        }"#,
    )?;

    // Scenario B: the same methods under rolling evaluation with
    // drop-last enabled — the consistency knob from Challenge 1.
    let rolling = platform.one_click_json(
        r#"{
            "methods": ["seasonal_naive", "theta", "dlinear_32", "gboost_12"],
            "strategy": {"type": "rolling", "horizon": 24, "stride": 24},
            "split": {"train": 0.7, "val": 0.1, "drop_last": true},
            "scaler": "zscore",
            "metrics": ["mae", "smape"]
        }"#,
    )?;

    println!("scenario A (fixed):   {} records", fixed.len());
    println!("scenario B (rolling): {} records\n", rolling.len());

    // Rolling averages over several windows, so per-method sMAPE usually
    // shifts relative to the single fixed window.
    for method in ["seasonal_naive", "theta", "dlinear_32", "gboost_12"] {
        let mean = |records: &[EvalRecord]| {
            let vals: Vec<f64> = records
                .iter()
                .filter(|r| r.method == method && r.is_ok())
                .map(|r| r.score("smape"))
                .filter(|v| v.is_finite())
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        println!(
            "{method:<16} sMAPE fixed {:>8.3}  rolling {:>8.3}",
            mean(&fixed),
            mean(&rolling)
        );
    }

    println!("\nFull run log ({} records):", platform.run_log().len());
    println!("{}", platform.run_log().render_table(&["mae", "smape"]));
    Ok(())
}
