//! Natural-language Q&A (paper demonstration S3, Figures 3 and 5).
//!
//! Populates the benchmark knowledge with real evaluation runs, then walks
//! through a multi-turn conversation. Every response shows the four
//! artifacts of Figure 5: the natural-language answer (label 2), the chart
//! (label 3), the generated SQL (label 4), and the result table (label 5).
//!
//! ```sh
//! cargo run --release -p easytime --example qa_session
//! ```

use easytime::{CorpusConfig, EasyTime};

fn main() -> easytime::Result<()> {
    // Benchmark across all ten domains so domain filters have substance.
    let platform = EasyTime::with_benchmark(&CorpusConfig {
        per_domain: 3,
        length: 280,
        multivariate_per_domain: 1,
        channels: 3,
        seed: 13,
        ..CorpusConfig::default()
    })?;

    println!("Populating benchmark knowledge (two one-click runs)…\n");
    platform.one_click_json(
        r#"{
            "methods": ["naive", "seasonal_naive", "drift", "theta", "ses",
                        "lag_ridge_16", "dlinear_32", "gboost_12"],
            "strategy": {"type": "fixed", "horizon": 96}
        }"#,
    )?;
    platform.one_click_json(
        r#"{
            "methods": ["naive", "seasonal_naive", "drift", "theta", "ses",
                        "lag_ridge_16", "dlinear_32", "gboost_12"],
            "strategy": {"type": "fixed", "horizon": 24}
        }"#,
    )?;

    let mut session = platform.qa_session()?;
    let conversation = [
        // The paper's Figure 5 question, verbatim.
        "What are the top-8 methods (ordered by MAE) for long-term forecasting \
         on all multivariate datasets with trends?",
        // An elliptical follow-up: inherits the previous filters.
        "and what about sMAPE?",
        // The abstract's example question.
        "Which method is best for long term forecasting on time series with strong seasonality?",
        "Is theta better than seasonal naive by MASE?",
        "How many multivariate datasets are in the benchmark?",
        "Which domains does the benchmark cover?",
        "What are the 3 fastest methods?",
        "Tell me about dlinear",
    ];

    for question in conversation {
        println!("═══ Q: {question}");
        match session.ask(question) {
            Ok(response) => {
                println!("SQL: {}", response.sql);
                println!("\n{}", response.answer);
                if let Some(chart) = &response.chart {
                    println!("\n{}", chart.render_ascii(40));
                    println!("chart payload: {}\n", chart.to_json());
                }
                println!("{}", response.table.render());
                println!("(answered in {:.2} ms)\n", response.latency_ms);
            }
            Err(e) => println!("could not answer: {e}\n"),
        }
    }
    Ok(())
}
