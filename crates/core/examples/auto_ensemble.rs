//! Automated Ensemble (paper demonstration S2, Figure 2).
//!
//! Offline: pretrain the recommender on a corpus (zoo evaluation + series
//! embeddings + soft-label classifier). Online: a "new" dataset arrives,
//! the recommender proposes its top-k methods, the ensemble trains the
//! members, learns validation weights, and forecasts — compared here
//! against every individual zoo member on the held-out future.
//!
//! ```sh
//! cargo run --release -p easytime --example auto_ensemble
//! ```

use easytime::{
    CorpusConfig, Domain, EasyTime, ModelSpec, RecommenderConfig, Strategy, TimeSeries,
};
use easytime_data::synthetic::{domain_spec, generate};

fn mae(pred: &[f64], actual: &[f64]) -> f64 {
    pred.iter().zip(actual).map(|(p, a)| (p - a).abs()).sum::<f64>() / actual.len() as f64
}

fn main() -> easytime::Result<()> {
    // --- Offline phase --------------------------------------------------
    let platform = EasyTime::with_benchmark(&CorpusConfig {
        domains: vec![Domain::Nature, Domain::Stock, Domain::Electricity, Domain::Web],
        per_domain: 8,
        length: 260,
        seed: 5,
        ..CorpusConfig::default()
    })?;

    // A fast sub-zoo keeps the example snappy; `RecommenderConfig::default()`
    // uses the full roster.
    let config = RecommenderConfig {
        methods: vec![
            ModelSpec::SeasonalNaive(None),
            ModelSpec::Drift,
            ModelSpec::Theta(None),
            ModelSpec::Ses(None),
            ModelSpec::LagRidge { lookback: 16, lambda: 1e-2 },
        ],
        strategy: Strategy::Fixed { horizon: 24 },
        ..RecommenderConfig::default()
    };
    println!("Pretraining the recommender on {} corpus series…", platform.registry().len());
    let (recommender, _matrix) = platform.pretrain_recommender(&config)?;

    // --- Online phase ---------------------------------------------------
    // A brand-new electricity-like series the platform has never seen.
    let spec = domain_spec(Domain::Electricity, 2, 320);
    let fresh: TimeSeries = generate("fresh_load", &spec, 991).unwrap();
    let history = fresh.slice(0, 296).unwrap();
    let future = &fresh.values()[296..320];

    println!("\nRecommended methods for the new series:");
    for r in recommender.recommend(&history).iter().take(3) {
        println!("  {:<18} p = {:.3}", r.method, r.score);
    }

    let ensemble = platform.auto_ensemble(&recommender, &history, 3)?;
    println!("\nEnsemble members and learned weights:");
    for (name, weight) in ensemble.members() {
        println!("  {name:<18} w = {weight:.3}");
    }
    for (name, reason) in ensemble.dropped() {
        println!("  (dropped {name}: {reason})");
    }

    let ens_pred = ensemble.forecast(24)?;

    // Forecast visualization (reporting layer; Figure 4 label 9).
    println!(
        "\n{}",
        easytime::ForecastPlot::forecast_view(history.values(), &ens_pred, Some(future)).render()
    );

    println!("Held-out MAE over the next 24 steps:");
    println!("  auto_ensemble      {:>10.4}", mae(&ens_pred, future));
    for spec in &config.methods {
        let mut model = spec.build()?;
        let label = spec.name();
        match model.fit(&history).and_then(|()| model.forecast(24)) {
            Ok(pred) => println!("  {label:<18} {:>10.4}", mae(&pred, future)),
            Err(e) => println!("  {label:<18} failed: {e}"),
        }
    }
    Ok(())
}
