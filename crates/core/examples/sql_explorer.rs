//! Direct SQL exploration of the benchmark knowledge base (the power-user
//! path behind Figure 5, label 4: every Q&A answer exposes its SQL so
//! users can verify and refine the underlying logic).
//!
//! ```sh
//! cargo run --release -p easytime --example sql_explorer
//! ```

use easytime::{CorpusConfig, EasyTime};

fn main() -> easytime::Result<()> {
    let platform = EasyTime::with_benchmark(&CorpusConfig {
        per_domain: 2,
        length: 260,
        multivariate_per_domain: 1,
        channels: 3,
        seed: 23,
        ..CorpusConfig::default()
    })?;
    platform.one_click_json(
        r#"{"methods": ["naive", "seasonal_naive", "drift", "theta", "ses", "linear_trend"],
            "strategy": {"type": "rolling", "horizon": 24, "stride": 24, "max_windows": 3}}"#,
    )?;

    let queries = [
        ("The catalog: what does the knowledge base know about datasets?",
         "SELECT domain, COUNT(*) AS datasets, AVG(seasonality) AS mean_seasonality, \
          AVG(trend) AS mean_trend FROM datasets GROUP BY domain ORDER BY datasets DESC"),
        ("Method families registered in the roster:",
         "SELECT family, COUNT(*) AS methods FROM methods GROUP BY family ORDER BY methods DESC"),
        ("Overall standings (mean sMAPE, rolling h=24):",
         "SELECT method, AVG(smape) AS mean_smape, COUNT(*) AS runs FROM results \
          GROUP BY method ORDER BY mean_smape ASC"),
        ("Where do seasonal methods earn their keep? (strong- vs weak-seasonality datasets)",
         "SELECT r.method, AVG(r.smape) AS smape_on_seasonal FROM results r \
          JOIN datasets d ON r.dataset_id = d.id WHERE d.seasonality >= 0.6 \
          GROUP BY r.method ORDER BY smape_on_seasonal ASC LIMIT 3"),
        ("Accuracy–runtime trade-off:",
         "SELECT method, AVG(smape) AS mean_smape, AVG(runtime_ms) AS mean_ms FROM results \
          GROUP BY method ORDER BY mean_ms ASC"),
        ("Per-dataset winners joined back to their characteristics:",
         "SELECT d.id, d.domain, d.seasonality, MIN(r.smape) AS best_smape FROM results r \
          JOIN datasets d ON r.dataset_id = d.id GROUP BY d.id, d.domain, d.seasonality \
          ORDER BY best_smape ASC LIMIT 8"),
    ];

    for (title, sql) in queries {
        println!("── {title}");
        println!("   {sql}\n");
        match platform.query_knowledge(sql) {
            Ok(result) => println!("{}", result.render()),
            Err(e) => println!("   query failed: {e}\n"),
        }
    }

    // The same engine rejects unsafe statements on the read-only path.
    println!("── Verification in action: write statements are refused");
    for bad in ["INSERT INTO results VALUES ('x')", "CREATE TABLE pwned (a INTEGER)"] {
        match platform.query_knowledge(bad) {
            Err(e) => println!("   {bad}\n   -> {e}"),
            Ok(_) => println!("   {bad} unexpectedly succeeded!"),
        }
    }
    Ok(())
}
