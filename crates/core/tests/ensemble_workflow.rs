//! The full Figure-2 workflow: offline pretraining on a corpus, online
//! recommendation and ensembling on unseen series, with accuracy
//! guarantees against the obvious baselines.

use easytime::{
    CorpusConfig, Domain, EasyTime, ModelSpec, RecommenderConfig, Strategy, WeightMode,
};
use easytime_automl::AutoEnsemble;
use easytime_data::synthetic::{domain_spec, generate};

fn smape(pred: &[f64], actual: &[f64]) -> f64 {
    let mut sum = 0.0;
    for (p, a) in pred.iter().zip(actual) {
        sum += 2.0 * (a - p).abs() / (a.abs() + p.abs()).max(1e-12);
    }
    100.0 * sum / actual.len() as f64
}

fn fast_config() -> RecommenderConfig {
    RecommenderConfig {
        methods: vec![
            ModelSpec::Naive,
            ModelSpec::SeasonalNaive(None),
            ModelSpec::Drift,
            ModelSpec::Mean,
            ModelSpec::Theta(None),
        ],
        strategy: Strategy::Fixed { horizon: 24 },
        ..RecommenderConfig::default()
    }
}

fn pretrained() -> (EasyTime, easytime::Recommender) {
    let platform = EasyTime::with_benchmark(&CorpusConfig {
        domains: vec![Domain::Nature, Domain::Stock, Domain::Electricity, Domain::Web],
        per_domain: 6,
        length: 260,
        seed: 11,
        ..CorpusConfig::default()
    })
    .unwrap();
    let (rec, _) = platform.pretrain_recommender(&fast_config()).unwrap();
    (platform, rec)
}

#[test]
fn recommender_separates_seasonal_from_random_walk() {
    let (_platform, rec) = pretrained();

    // A fresh strongly seasonal series: seasonal_naive should rank high.
    let seasonal = generate("fresh_seasonal", &domain_spec(Domain::Electricity, 1, 300), 555)
        .unwrap();
    let seasonal_ranking = rec.recommend(&seasonal);
    let seasonal_pos = seasonal_ranking
        .iter()
        .position(|r| r.method == "seasonal_naive")
        .expect("seasonal_naive in roster");

    // A fresh random walk: seasonal_naive should rank worse than on the
    // seasonal series.
    let walk = generate("fresh_walk", &domain_spec(Domain::Stock, 0, 300), 556).unwrap();
    let walk_ranking = rec.recommend(&walk);
    let walk_pos = walk_ranking
        .iter()
        .position(|r| r.method == "seasonal_naive")
        .expect("seasonal_naive in roster");

    assert!(
        seasonal_pos < walk_pos || seasonal_pos == 0,
        "seasonal_naive should rank better on seasonal data ({seasonal_pos}) than on a random \
         walk ({walk_pos})"
    );
}

#[test]
fn auto_ensemble_beats_the_worst_member_and_mean_baseline() {
    let (platform, rec) = pretrained();

    let mut ens_wins_vs_mean = 0usize;
    let mut n = 0usize;
    for (domain, seed) in
        [(Domain::Electricity, 70u64), (Domain::Nature, 71), (Domain::Web, 72), (Domain::Stock, 73)]
    {
        let fresh = generate("fresh", &domain_spec(domain, 2, 324), seed).unwrap();
        let history = fresh.slice(0, 300).unwrap();
        let future = &fresh.values()[300..];

        let ens = platform.auto_ensemble(&rec, &history, 3).unwrap();
        let ens_smape = smape(&ens.forecast(24).unwrap(), future);

        let mut mean_model = ModelSpec::Mean.build().unwrap();
        mean_model.fit(&history).unwrap();
        let mean_smape = smape(&mean_model.forecast(24).unwrap(), future);

        n += 1;
        if ens_smape <= mean_smape {
            ens_wins_vs_mean += 1;
        }
    }
    assert!(
        ens_wins_vs_mean * 4 >= n * 3,
        "ensemble should beat the grand-mean baseline on most series: {ens_wins_vs_mean}/{n}"
    );
}

#[test]
fn learned_weights_do_not_lose_to_uniform_on_average() {
    let (_platform, rec) = pretrained();
    let mut learned_total = 0.0;
    let mut uniform_total = 0.0;
    for seed in [91u64, 92, 93, 94, 95] {
        let fresh =
            generate("fresh", &domain_spec(Domain::Electricity, 0, 324), seed).unwrap();
        let history = fresh.slice(0, 300).unwrap();
        let future = &fresh.values()[300..];
        for (mode, total) in
            [(WeightMode::Learned, &mut learned_total), (WeightMode::Uniform, &mut uniform_total)]
        {
            let ens = AutoEnsemble::fit(&rec, &history, 3, 0.2, mode).unwrap();
            *total += smape(&ens.forecast(24).unwrap(), future);
        }
    }
    assert!(
        learned_total <= uniform_total * 1.05,
        "learned weights ({learned_total:.2}) should not be materially worse than uniform \
         ({uniform_total:.2})"
    );
}

#[test]
fn ensemble_weights_are_a_distribution_and_members_are_ranked() {
    let (platform, rec) = pretrained();
    let fresh = generate("fresh", &domain_spec(Domain::Nature, 1, 300), 123).unwrap();
    let ens = platform.auto_ensemble(&rec, &fresh, 4).unwrap();
    let members = ens.members();
    assert!(!members.is_empty() && members.len() <= 4);
    let total: f64 = members.iter().map(|(_, w)| w).sum();
    assert!((total - 1.0).abs() < 1e-9);
    assert!(members.windows(2).all(|w| w[0].1 >= w[1].1), "members sorted by weight");
}

#[test]
fn knowledge_pretraining_path_agrees_with_direct_path() {
    // Pretraining from the knowledge base must produce a recommender over
    // the same roster with sane outputs.
    let platform = EasyTime::with_benchmark(&CorpusConfig {
        domains: vec![Domain::Nature, Domain::Stock],
        per_domain: 4,
        length: 220,
        seed: 47,
        ..CorpusConfig::default()
    })
    .unwrap();
    platform
        .one_click_json(
            r#"{"methods": ["naive", "seasonal_naive", "drift", "mean", "theta"],
                "strategy": {"type": "fixed", "horizon": 24},
                "metrics": ["smape"]}"#,
        )
        .unwrap();
    let rec = platform.pretrain_recommender_from_knowledge(&fast_config()).unwrap();
    assert_eq!(rec.methods().len(), 5);
    let fresh = generate("x", &domain_spec(Domain::Nature, 0, 260), 2).unwrap();
    let ranking = rec.recommend(&fresh);
    let total: f64 = ranking.iter().map(|r| r.score).sum();
    assert!((total - 1.0).abs() < 1e-9);
}
