//! Cross-crate integration: the full platform lifecycle in one test file —
//! corpus → one-click evaluation → knowledge base → leaderboard → SQL.

use easytime::{CorpusConfig, Domain, EasyTime, Frequency};

fn platform() -> EasyTime {
    EasyTime::with_benchmark(&CorpusConfig {
        domains: vec![Domain::Nature, Domain::Stock, Domain::Web],
        per_domain: 3,
        length: 220,
        multivariate_per_domain: 1,
        channels: 3,
        seed: 99,
    })
    .expect("benchmark builds")
}

#[test]
fn full_lifecycle_from_corpus_to_sql() {
    let p = platform();
    assert_eq!(p.registry().len(), 12); // 3×3 univariate + 3 multivariate

    let records = p
        .one_click_json(
            r#"{
                "methods": ["naive", "seasonal_naive", "drift", "theta"],
                "strategy": {"type": "fixed", "horizon": 24},
                "metrics": ["mae", "smape", "mase"]
            }"#,
        )
        .unwrap();
    assert_eq!(records.len(), 12 * 4);
    assert!(records.iter().all(|r| r.is_ok()), "every method fits every dataset");

    // Leaderboard reflects the run.
    let board = p.leaderboard("smape").unwrap();
    assert_eq!(board.rows.len(), 4);
    let winner = board.winner().unwrap();
    assert!(winner.mean_rank >= 1.0 && winner.mean_rank <= 4.0);

    // The knowledge base agrees with the records.
    let count = p.query_knowledge("SELECT COUNT(*) AS n FROM results").unwrap();
    assert_eq!(count.rows[0][0].to_string(), (12 * 4).to_string());

    // Domain-filtered SQL agrees with direct aggregation over records.
    let sql = p
        .query_knowledge(
            "SELECT r.method, AVG(r.mae) AS m FROM results r \
             JOIN datasets d ON r.dataset_id = d.id \
             WHERE d.domain = 'stock' GROUP BY r.method ORDER BY m",
        )
        .unwrap();
    assert_eq!(sql.rows.len(), 4);
    let stock_naive_mae: Vec<f64> = records
        .iter()
        .filter(|r| r.dataset_id.starts_with("stock") && r.method == "naive")
        .map(|r| r.score("mae"))
        .collect();
    let expected = stock_naive_mae.iter().sum::<f64>() / stock_naive_mae.len() as f64;
    let got = sql
        .rows
        .iter()
        .find(|r| r[0].to_string() == "naive")
        .and_then(|r| r[1].as_f64())
        .unwrap();
    assert!((got - expected).abs() < 1e-9, "SQL mean {got} vs record mean {expected}");
}

#[test]
fn evaluation_is_reproducible_end_to_end() {
    let config = r#"{"methods": ["seasonal_naive", "drift"], "strategy": {"type": "rolling", "horizon": 12, "stride": 12}}"#;
    let a = platform().one_click_json(config).unwrap();
    let b = platform().one_click_json(config).unwrap();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.dataset_id, y.dataset_id);
        assert_eq!(x.method, y.method);
        assert_eq!(x.scores, y.scores, "{}/{}", x.dataset_id, x.method);
    }
}

#[test]
fn upload_then_evaluate_then_query() {
    let p = platform();
    let mut csv = String::from("date,value\n");
    for t in 0..150 {
        csv.push_str(&format!(
            "2024-{:02}-01,{}\n",
            (t % 12) + 1,
            50.0 + (t as f64) * 0.3 + 8.0 * (2.0 * std::f64::consts::PI * t as f64 / 12.0).sin()
        ));
    }
    let chars = p.upload_csv("uploaded", Domain::Banking, &csv, Frequency::Monthly).unwrap();
    assert!(chars.seasonality > 0.5);
    assert!(chars.trend > 0.5);

    let records = p
        .one_click_json(
            r#"{"methods": ["holt_winters", "naive"], "datasets": ["uploaded"],
                "strategy": {"type": "fixed", "horizon": 12}}"#,
        )
        .unwrap();
    assert_eq!(records.len(), 2);
    let hw = records.iter().find(|r| r.method == "holt_winters").unwrap();
    let naive = records.iter().find(|r| r.method == "naive").unwrap();
    assert!(
        hw.score("mae") < naive.score("mae"),
        "Holt-Winters {} should beat naive {} on seasonal+trend data",
        hw.score("mae"),
        naive.score("mae")
    );
}

#[test]
fn custom_metrics_flow_through_the_pipeline() {
    use easytime::{EvalConfig, Metric, ModelSpec, Strategy};
    use easytime_eval::evaluate;

    let p = platform();
    let mut registry = p.metrics().clone();
    registry.register(Metric::custom("bias", true, |ctx| {
        ctx.predicted.iter().zip(ctx.actual).map(|(p, a)| p - a).sum::<f64>()
            / ctx.actual.len() as f64
    }));
    let series = p.registry().all()[0].primary_series();
    let config = EvalConfig {
        metrics: vec!["mae".into(), "bias".into()],
        strategy: Strategy::Fixed { horizon: 12 },
        ..EvalConfig::default()
    }
    .into_validated(&registry)
    .unwrap();
    let record = evaluate("d", &series, &ModelSpec::Mean, &config, &registry).unwrap();
    assert!(record.is_ok());
    assert!(record.score("bias").is_finite());
    assert!(record.score("mae") >= record.score("bias").abs());
}

#[test]
fn run_log_tracks_failures_without_aborting() {
    let p = EasyTime::new();
    // 24 points leave a 19-point training window — below ARIMA's minimum
    // of 20, so ARIMA fails while naive succeeds.
    let csv = "value\n".to_string()
        + &(0..24).map(|t| format!("{t}")).collect::<Vec<_>>().join("\n");
    p.upload_csv("short", Domain::Web, &csv, Frequency::Daily).unwrap();
    let records = p
        .one_click_json(
            r#"{"methods": ["naive", "arima_211"], "strategy": {"type": "fixed", "horizon": 4}}"#,
        )
        .unwrap();
    assert_eq!(records.len(), 2);
    let ok = records.iter().filter(|r| r.is_ok()).count();
    assert_eq!(ok, 1, "naive succeeds, arima fails cleanly");
    assert_eq!(p.run_log().failures(), 1);
    // Failed run is absent from the knowledge base.
    let n = p.query_knowledge("SELECT COUNT(*) AS n FROM results").unwrap();
    assert_eq!(n.rows[0][0].to_string(), "1");
}
