//! End-to-end Q&A over a genuinely evaluated benchmark: the answers must
//! agree with ground truth computed directly from the pipeline records.

use easytime::{CorpusConfig, EasyTime, EvalRecord};

fn evaluated_platform() -> (EasyTime, Vec<EvalRecord>) {
    let platform = EasyTime::with_benchmark(&CorpusConfig {
        per_domain: 2,
        length: 260,
        multivariate_per_domain: 1,
        channels: 3,
        seed: 31,
        ..CorpusConfig::default()
    })
    .unwrap();
    let mut records = platform
        .one_click_json(
            r#"{"methods": ["naive", "seasonal_naive", "drift", "theta", "ses"],
                "strategy": {"type": "fixed", "horizon": 96}}"#,
        )
        .unwrap();
    records.extend(
        platform
            .one_click_json(
                r#"{"methods": ["naive", "seasonal_naive", "drift", "theta", "ses"],
                    "strategy": {"type": "fixed", "horizon": 24}}"#,
            )
            .unwrap(),
    );
    (platform, records)
}

/// Ground truth: mean score per method over matching records.
fn mean_by_method<'a>(
    records: &'a [EvalRecord],
    metric: &str,
    filter: impl Fn(&EvalRecord) -> bool,
) -> Vec<(&'a str, f64)> {
    let mut sums: std::collections::BTreeMap<&str, (f64, usize)> = Default::default();
    for r in records.iter().filter(|r| r.is_ok()).filter(|r| filter(r)) {
        let v = r.score(metric);
        if v.is_finite() {
            let e = sums.entry(&r.method).or_insert((0.0, 0));
            e.0 += v;
            e.1 += 1;
        }
    }
    let mut out: Vec<(&str, f64)> =
        sums.into_iter().map(|(m, (s, n))| (m, s / n as f64)).collect();
    out.sort_by(|a, b| a.1.total_cmp(&b.1));
    out
}

#[test]
fn top_methods_answer_matches_record_ground_truth() {
    let (platform, records) = evaluated_platform();
    let mut session = platform.qa_session().unwrap();
    let response = session
        .ask("What are the top 5 methods ordered by MAE for long-term forecasting?")
        .unwrap();

    let truth = mean_by_method(&records, "mae", |r| r.horizon >= 96);
    assert_eq!(response.table.rows.len(), 5);
    for (row, (method, mean)) in response.table.rows.iter().zip(&truth) {
        assert_eq!(&row[0].to_string(), method, "ranking order mismatch");
        let got = row[1].as_f64().unwrap();
        assert!((got - mean).abs() < 1e-9, "{method}: {got} vs {mean}");
    }
}

#[test]
fn paper_figure5_question_round_trips() {
    let (platform, records) = evaluated_platform();
    let mut session = platform.qa_session().unwrap();
    let response = session
        .ask(
            "What are the top-8 methods (ordered by MAE) for long-term forecasting on all \
             multivariate datasets with trends?",
        )
        .unwrap();
    // SQL artifacts come back alongside the answer (Figure 5 labels 2–5).
    assert!(response.sql.to_lowercase().contains("select"));
    assert!(!response.answer.is_empty());
    // Every returned method actually has matching long-horizon
    // multivariate records.
    let mv_ids: std::collections::HashSet<String> = platform
        .registry()
        .all()
        .iter()
        .filter(|d| d.meta.is_multivariate())
        .map(|d| d.meta.id.clone())
        .collect();
    for row in &response.table.rows {
        let method = row[0].to_string();
        assert!(
            records
                .iter()
                .any(|r| r.method == method && r.horizon >= 96 && mv_ids.contains(&r.dataset_id)),
            "method {method} has no supporting records"
        );
    }
}

#[test]
fn chart_payload_mirrors_the_table() {
    let (platform, _) = evaluated_platform();
    let mut session = platform.qa_session().unwrap();
    let response = session.ask("top 4 methods by smape").unwrap();
    let chart = response.chart.expect("ranking answers include a chart");
    assert_eq!(chart.points.len(), response.table.rows.len());
    for (point, row) in chart.points.iter().zip(&response.table.rows) {
        assert_eq!(point.0, row[0].to_string());
        assert!((point.1 - row[1].as_f64().unwrap()).abs() < 1e-12);
    }
    // The JSON payload parses back (hand-rolled serializer sanity).
    let json = chart.to_json();
    assert!(json.contains("\"points\""));
}

#[test]
fn multi_turn_conversation_stays_consistent() {
    let (platform, records) = evaluated_platform();
    let mut session = platform.qa_session().unwrap();
    session.ask("top 3 methods by mae for long-term forecasting").unwrap();
    let follow = session.ask("what about smape?").unwrap();
    // Inherits the long-term filter.
    assert!(follow.sql.contains("horizon >= 96"), "sql: {}", follow.sql);
    let truth = mean_by_method(&records, "smape", |r| r.horizon >= 96);
    assert_eq!(follow.table.rows[0][0].to_string(), truth[0].0);
}

#[test]
fn count_answers_match_registry() {
    let (platform, _) = evaluated_platform();
    let mut session = platform.qa_session().unwrap();
    let resp = session.ask("How many datasets are in the benchmark?").unwrap();
    let expected = platform.registry().len();
    assert!(resp.answer.contains(&expected.to_string()), "{}", resp.answer);

    let mv = session.ask("How many multivariate datasets are there?").unwrap();
    let expected_mv =
        platform.registry().filter(|d| d.meta.is_multivariate()).len();
    assert!(mv.answer.contains(&expected_mv.to_string()), "{}", mv.answer);
}

#[test]
fn verification_blocks_malicious_sql_paths() {
    let (platform, _) = evaluated_platform();
    // Direct knowledge queries refuse writes even though the engine
    // supports them through `execute`.
    assert!(platform.query_knowledge("INSERT INTO results VALUES ('x')").is_err());
    assert!(platform
        .query_knowledge("CREATE TABLE hack (a INTEGER)")
        .is_err());
    assert!(platform.query_knowledge("SELECT COUNT(*) AS n FROM results").is_ok());
}
