//! Consistency guarantees of the benchmark pipeline — the Challenge-1
//! hazards the paper lists: splits, normalization, strategies, drop-last.

use easytime::{
    CorpusConfig, Domain, EasyTime, EvalConfig, ModelSpec, SplitSpec, Strategy, TimeSeries,
};
use easytime_data::scaler::ScalerKind;
use easytime_data::Frequency;
use easytime_eval::{evaluate, MetricRegistry};
use std::f64::consts::PI;

fn seasonal(n: usize, level: f64) -> TimeSeries {
    let values: Vec<f64> =
        (0..n).map(|t| level + 4.0 * (2.0 * PI * t as f64 / 12.0).sin()).collect();
    TimeSeries::new("s", values, Frequency::Monthly).unwrap()
}

#[test]
fn scaler_choice_does_not_corrupt_metrics_scale() {
    // Whatever normalization runs inside the pipeline, metrics are on the
    // raw scale — forecasts must be inverse-transformed (unified
    // post-processing).
    let registry = MetricRegistry::standard();
    let series = seasonal(240, 1e5);
    let mut maes = Vec::new();
    for scaler in [ScalerKind::None, ScalerKind::ZScore, ScalerKind::MinMax, ScalerKind::Robust] {
        let config = EvalConfig { scaler, ..EvalConfig::default() }
            .into_validated(&registry)
            .unwrap();
        let r = evaluate("d", &series, &ModelSpec::SeasonalNaive(None), &config, &registry)
            .unwrap();
        assert!(r.is_ok());
        maes.push(r.score("mae"));
    }
    // Seasonal-naive ignores scale entirely, so all four must agree.
    for pair in maes.windows(2) {
        assert!(
            (pair[0] - pair[1]).abs() < 1e-6,
            "scaler changed a scale-free model's MAE: {maes:?}"
        );
    }
}

#[test]
fn split_ratios_control_the_forecast_origin() {
    let registry = MetricRegistry::standard();
    let series = seasonal(200, 10.0);
    // Larger train ratio → test starts later → different window count
    // under rolling.
    let narrow = EvalConfig {
        split: SplitSpec::new(0.5, 0.0, false).unwrap(),
        strategy: Strategy::Rolling { horizon: 10, stride: 10, max_windows: None },
        ..EvalConfig::default()
    }
    .into_validated(&registry)
    .unwrap();
    let wide = EvalConfig {
        split: SplitSpec::new(0.9, 0.0, false).unwrap(),
        strategy: Strategy::Rolling { horizon: 10, stride: 10, max_windows: None },
        ..EvalConfig::default()
    }
    .into_validated(&registry)
    .unwrap();
    let r_narrow = evaluate("d", &series, &ModelSpec::Naive, &narrow, &registry).unwrap();
    let r_wide = evaluate("d", &series, &ModelSpec::Naive, &wide, &registry).unwrap();
    assert_eq!(r_narrow.windows, 10); // 100 test points / 10
    assert_eq!(r_wide.windows, 2); // 20 test points / 10
}

#[test]
fn drop_last_changes_only_the_partial_window() {
    let registry = MetricRegistry::standard();
    // 205 points, test = 62 points (0.7 train / no val): windows of 12 →
    // 5 full + 1 partial.
    let series = seasonal(205, 10.0);
    let keep = EvalConfig {
        split: SplitSpec::new(0.7, 0.0, false).unwrap(),
        strategy: Strategy::Rolling { horizon: 12, stride: 12, max_windows: None },
        ..EvalConfig::default()
    };
    let drop = EvalConfig {
        split: SplitSpec::new(0.7, 0.0, true).unwrap(),
        ..keep.clone()
    };
    let keep = keep.into_validated(&registry).unwrap();
    let drop = drop.into_validated(&registry).unwrap();
    let r_keep = evaluate("d", &series, &ModelSpec::SeasonalNaive(None), &keep, &registry).unwrap();
    let r_drop = evaluate("d", &series, &ModelSpec::SeasonalNaive(None), &drop, &registry).unwrap();
    assert_eq!(r_keep.windows, r_drop.windows + 1);
}

#[test]
fn strategies_agree_on_their_shared_first_window() {
    // The first rolling window is exactly the fixed-window evaluation, so
    // a 1-window rolling run must match fixed for a deterministic model.
    let registry = MetricRegistry::standard();
    let series = seasonal(240, 10.0);
    let fixed = EvalConfig {
        strategy: Strategy::Fixed { horizon: 24 },
        ..EvalConfig::default()
    }
    .into_validated(&registry)
    .unwrap();
    let rolling_one = EvalConfig {
        strategy: Strategy::Rolling { horizon: 24, stride: 24, max_windows: Some(1) },
        ..EvalConfig::default()
    }
    .into_validated(&registry)
    .unwrap();
    let a = evaluate("d", &series, &ModelSpec::Theta(None), &fixed, &registry).unwrap();
    let b = evaluate("d", &series, &ModelSpec::Theta(None), &rolling_one, &registry).unwrap();
    assert_eq!(a.scores.keys().collect::<Vec<_>>(), b.scores.keys().collect::<Vec<_>>());
    for (metric, &va) in &a.scores {
        let vb = b.score(metric);
        // A pure sine makes MASE's seasonal-naive denominator zero → NaN
        // on both sides; NaN-aware equality handles that.
        assert!(va == vb || (va.is_nan() && vb.is_nan()), "{metric}: {va} vs {vb}");
    }
}

#[test]
fn one_click_results_match_per_series_evaluation() {
    // evaluate_corpus must produce byte-identical scores to calling
    // evaluate() per series — parallelism must not change results.
    let platform = EasyTime::with_benchmark(&CorpusConfig {
        domains: vec![Domain::Traffic],
        per_domain: 4,
        length: 200,
        seed: 3,
        ..CorpusConfig::default()
    })
    .unwrap();
    let records = platform
        .one_click_json(r#"{"methods": ["seasonal_naive"], "strategy": {"type": "fixed", "horizon": 24}}"#)
        .unwrap();

    let registry = MetricRegistry::standard();
    for record in &records {
        let series = platform.registry().get(&record.dataset_id).unwrap().primary_series();
        let config = EvalConfig {
            methods: vec![ModelSpec::SeasonalNaive(None)],
            strategy: Strategy::Fixed { horizon: 24 },
            metrics: record.scores.keys().cloned().collect(),
            ..EvalConfig::default()
        }
        .into_validated(&registry)
        .unwrap();
        let solo =
            evaluate(&record.dataset_id, &series, &ModelSpec::SeasonalNaive(None), &config, &registry)
                .unwrap();
        assert_eq!(solo.scores, record.scores, "{}", record.dataset_id);
    }
}
