//! The EasyTime command-line frontend — the terminal stand-in for the
//! paper's web UI (Figures 4–5). Subcommands map one-to-one onto the
//! demonstrations:
//!
//! ```text
//! easytime bench --config cfg.json     # S1: one-click evaluation
//! easytime recommend --csv data.csv    # S2: characteristics + recommendation
//! easytime ask "top 5 methods by mae"  # S3: one-shot Q&A
//! easytime ask --interactive           # S3: multi-turn session (stdin)
//! easytime methods                     # the registered roster
//! ```
//!
//! Every subcommand builds (or reuses) a seeded synthetic benchmark, so the
//! tool is fully self-contained.

use easytime::{
    CorpusConfig, Domain, EasyTime, Frequency, ModelSpec, RecommenderConfig, Strategy,
};
use std::io::{BufRead, Write};
use std::process::ExitCode;

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn usage() -> ExitCode {
    eprintln!(
        "EasyTime: time series forecasting made easy\n\n\
         USAGE:\n  easytime <command> [options]\n\n\
         COMMANDS:\n  \
         bench --config <file.json> [--per-domain N] [--seed N]\n      \
         one-click evaluation from a configuration file (S1)\n  \
         recommend --csv <file.csv> [--domain <name>] [--frequency <name>] [--k N]\n      \
         upload a dataset, show its characteristics and recommended methods (S2)\n  \
         ask [\"question\"] [--interactive] [--per-domain N]\n      \
         natural-language Q&A over the benchmark knowledge (S3)\n  \
         methods\n      \
         list the registered method roster\n  \
         demo\n      \
         run a compact tour of all three demonstrations"
    );
    ExitCode::from(2)
}

fn build_platform(args: &[String]) -> easytime::Result<EasyTime> {
    let per_domain =
        arg_value(args, "--per-domain").and_then(|v| v.parse().ok()).unwrap_or(3);
    let seed = arg_value(args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(7);
    EasyTime::with_benchmark(&CorpusConfig {
        per_domain,
        length: 280,
        multivariate_per_domain: 1,
        channels: 3,
        seed,
        ..CorpusConfig::default()
    })
}

fn cmd_bench(args: &[String]) -> easytime::Result<ExitCode> {
    let Some(path) = arg_value(args, "--config") else {
        eprintln!("bench requires --config <file.json>");
        return Ok(ExitCode::from(2));
    };
    let text = std::fs::read_to_string(&path).map_err(|e| easytime::EasyTimeError::Config {
        reason: format!("cannot read '{path}': {e}"),
    })?;
    let platform = build_platform(args)?;
    eprintln!(
        "benchmark: {} datasets, {} methods registered",
        platform.registry().len(),
        platform.method_roster().len()
    );
    let records = platform.one_click_json(&text)?;
    let failures = records.iter().filter(|r| !r.is_ok()).count();
    eprintln!("evaluated {} records ({failures} failures)\n", records.len());
    let metric = arg_value(args, "--metric").unwrap_or_else(|| "smape".into());
    println!("{}", platform.leaderboard(&metric)?.render());
    Ok(ExitCode::SUCCESS)
}

fn cmd_recommend(args: &[String]) -> easytime::Result<ExitCode> {
    let Some(path) = arg_value(args, "--csv") else {
        eprintln!("recommend requires --csv <file.csv>");
        return Ok(ExitCode::from(2));
    };
    let csv = std::fs::read_to_string(&path).map_err(|e| easytime::EasyTimeError::Config {
        reason: format!("cannot read '{path}': {e}"),
    })?;
    let domain = arg_value(args, "--domain")
        .and_then(|d| Domain::parse(&d))
        .unwrap_or(Domain::Web);
    let frequency = arg_value(args, "--frequency")
        .and_then(|f| Frequency::parse(&f))
        .unwrap_or(Frequency::Daily);
    let k: usize = arg_value(args, "--k").and_then(|v| v.parse().ok()).unwrap_or(3);

    let platform = build_platform(args)?;
    let chars = platform.upload_csv("uploaded", domain, &csv, frequency)?;
    println!("characteristics of '{path}':");
    println!("  seasonality  {:.2}", chars.seasonality);
    println!("  trend        {:.2}", chars.trend);
    println!("  transition   {:.2}", chars.transition);
    println!("  shifting     {:.2}", chars.shifting);
    println!("  stationarity {:.2}", chars.stationarity);
    println!("  period       {}", chars.period);
    println!("  tags         {:?}\n", chars.tags());

    eprintln!("pretraining the recommender on the benchmark corpus…");
    let config = RecommenderConfig {
        methods: vec![
            ModelSpec::Naive,
            ModelSpec::SeasonalNaive(None),
            ModelSpec::SeasonalAverage { period: None, cycles: 4 },
            ModelSpec::Drift,
            ModelSpec::LinearTrend,
            ModelSpec::Ses(None),
            ModelSpec::Theta(None),
            ModelSpec::LagRidge { lookback: 16, lambda: 1e-2 },
        ],
        strategy: Strategy::Fixed { horizon: 24 },
        ..RecommenderConfig::default()
    };
    let (recommender, _) = platform.pretrain_recommender(&config)?;
    println!("recommended methods:");
    for r in platform.recommend(&recommender, "uploaded", k)? {
        println!("  {}. {:<18} p = {:.3}", r.rank + 1, r.method, r.score);
    }

    // Fit the automated ensemble and show its blend (the AutoML button).
    let series = platform.registry().get("uploaded")?.primary_series();
    let ensemble = platform.auto_ensemble(&recommender, &series, k)?;
    println!("\nauto-ensemble members:");
    for (name, weight) in ensemble.members() {
        println!("  {name:<18} w = {weight:.3}");
    }
    let horizon: usize = arg_value(args, "--horizon").and_then(|v| v.parse().ok()).unwrap_or(12);
    let forecast = ensemble.forecast(horizon)?;
    println!(
        "\n{}",
        easytime::ForecastPlot::forecast_view(series.values(), &forecast, None).render()
    );
    Ok(ExitCode::SUCCESS)
}

fn populate_for_qa(platform: &EasyTime) -> easytime::Result<()> {
    eprintln!("populating benchmark knowledge…");
    for config in [
        r#"{"methods": ["naive", "seasonal_naive", "drift", "theta", "ses", "linear_trend",
                        "lag_ridge_16", "dlinear_32"],
            "strategy": {"type": "fixed", "horizon": 96}}"#,
        r#"{"methods": ["naive", "seasonal_naive", "drift", "theta", "ses", "linear_trend",
                        "lag_ridge_16", "dlinear_32"],
            "strategy": {"type": "fixed", "horizon": 24}}"#,
    ] {
        platform.one_click_json(config)?;
    }
    Ok(())
}

fn print_response(resp: &easytime::QaResponse) {
    println!("SQL: {}\n", resp.sql);
    println!("plan:\n{}\n", resp.plan.trim_end());
    println!("{}", resp.answer);
    if let Some(chart) = &resp.chart {
        println!("\n{}", chart.render_ascii(40));
    }
    println!("{}", resp.table.render());
}

fn cmd_ask(args: &[String]) -> easytime::Result<ExitCode> {
    let platform = build_platform(args)?;
    populate_for_qa(&platform)?;
    let mut session = platform.qa_session()?;

    if has_flag(args, "--interactive") {
        eprintln!("EasyTime Q&A — ask about the benchmark (empty line to exit)");
        let stdin = std::io::stdin();
        loop {
            eprint!("?> ");
            std::io::stderr().flush().ok();
            let mut line = String::new();
            if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
                break;
            }
            let question = line.trim();
            if question.is_empty() {
                break;
            }
            match session.ask(question) {
                Ok(resp) => print_response(&resp),
                Err(e) => eprintln!("{e}"),
            }
        }
        return Ok(ExitCode::SUCCESS);
    }

    let question: Vec<&String> =
        args.iter().skip(1).filter(|a| !a.starts_with("--")).collect();
    if question.is_empty() {
        eprintln!("ask requires a question (or --interactive)");
        return Ok(ExitCode::from(2));
    }
    let question = question.into_iter().cloned().collect::<Vec<_>>().join(" ");
    let resp = session.ask(&question)?;
    print_response(&resp);
    Ok(ExitCode::SUCCESS)
}

fn cmd_methods() -> ExitCode {
    let platform = EasyTime::new();
    println!("{} registered methods:\n", platform.method_roster().len());
    for entry in platform.method_roster() {
        println!(
            "  {:<20} {:<17} {}",
            entry.spec.name(),
            entry.spec.family().name(),
            entry.description
        );
    }
    ExitCode::SUCCESS
}

fn cmd_demo(args: &[String]) -> easytime::Result<ExitCode> {
    let platform = build_platform(args)?;
    println!("━━ S1: one-click evaluation ━━━━━━━━━━━━━━━━━━━━━━━━━━━━━");
    let records = platform.one_click_json(
        r#"{"methods": ["naive", "seasonal_naive", "theta", "lag_ridge_16"],
            "strategy": {"type": "rolling", "horizon": 24, "stride": 24, "max_windows": 2}}"#,
    )?;
    println!(
        "evaluated {} records; leaderboard:\n{}",
        records.len(),
        platform.leaderboard("smape")?.render()
    );

    println!("━━ S2: method recommendation ━━━━━━━━━━━━━━━━━━━━━━━━━━━");
    let id = platform.registry().ids()[0].clone();
    let chars = platform.characteristics(&id)?;
    println!("dataset '{id}': tags {:?}, period {}", chars.tags(), chars.period);

    println!("\n━━ S3: natural-language Q&A ━━━━━━━━━━━━━━━━━━━━━━━━━━━━");
    let mut session = platform.qa_session()?;
    let resp = session.ask("Which method is best by sMAPE?")?;
    println!("Q: Which method is best by sMAPE?\nA: {}", resp.answer);
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    // `easytime … | head` closes stdout early; exit quietly instead of
    // panicking (Rust has no default SIGPIPE handling).
    std::panic::set_hook(Box::new(|info| {
        let message = info.to_string();
        if message.contains("Broken pipe") {
            std::process::exit(0);
        }
        eprintln!("{message}");
        std::process::exit(101);
    }));
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let result = match command.as_str() {
        "bench" => cmd_bench(&args),
        "recommend" => cmd_recommend(&args),
        "ask" => cmd_ask(&args),
        "methods" => return cmd_methods(),
        "demo" => cmd_demo(&args),
        "-h" | "--help" | "help" => return usage(),
        other => {
            eprintln!("unknown command '{other}'");
            return usage();
        }
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
