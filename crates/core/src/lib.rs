//! # EasyTime: time series forecasting made easy
//!
//! A Rust reproduction of the EasyTime platform (ICDE 2025): one-click
//! evaluation on a comprehensive forecasting benchmark, automated
//! ensembles for new datasets, and natural-language Q&A over the
//! accumulated benchmark knowledge.
//!
//! ## Quickstart
//!
//! ```
//! use easytime::{CorpusConfig, Domain, EasyTime};
//!
//! // A platform with a small synthetic benchmark corpus.
//! let platform = EasyTime::with_benchmark(&CorpusConfig {
//!     domains: vec![Domain::Nature, Domain::Web],
//!     per_domain: 2,
//!     length: 120,
//!     ..CorpusConfig::default()
//! })
//! .unwrap();
//!
//! // One-click evaluation from a configuration file.
//! let records = platform
//!     .one_click_json(r#"{"methods": ["naive", "seasonal_naive"]}"#)
//!     .unwrap();
//! assert_eq!(records.len(), 4 * 2);
//!
//! // Ask the benchmark a question.
//! let mut qa = platform.qa_session().unwrap();
//! let response = qa.ask("Which method is best by MAE?").unwrap();
//! println!("{}", response.answer);
//! ```
//!
//! The heavy lifting lives in the sub-crates, re-exported here:
//! `easytime-data` (corpus + characteristics), `easytime-models` (the
//! method zoo), `easytime-eval` (strategies, metrics, pipeline),
//! `easytime-db` (the embedded SQL knowledge base), `easytime-repr`
//! (series embeddings), `easytime-automl` (recommendation + ensembles),
//! and `easytime-qa` (NL2SQL and answers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod json;
pub mod knowledge;
pub mod platform;

pub use config::{parse_config, DatasetSelection, FileConfig};
pub use error::EasyTimeError;
pub use platform::EasyTime;

// Re-export the vocabulary types users need at the surface.
pub use easytime_automl::ensemble::WeightMode;
pub use easytime_clock::{ManualClock, Stopwatch};

/// Observability: spans, metrics, events, and run manifests. See the
/// README's "Observability" section; tracing is enabled by the
/// `EASYTIME_TRACE` environment variable or [`obs::set_enabled`].
pub use easytime_obs as obs;
pub use easytime_automl::{AutoEnsemble, PerfMatrix, Recommendation, Recommender, RecommenderConfig};
pub use easytime_data::synthetic::CorpusConfig;
pub use easytime_data::{
    Characteristics, Dataset, DatasetMeta, Domain, Frequency, MultiSeries, Scaler, SplitSpec,
    TimeSeries,
};
pub use easytime_db::{Database, QueryResult};
pub use easytime_eval::{
    EvalConfig, EvalRecord, ForecastPlot, Leaderboard, Metric, MetricRegistry, Strategy,
};
pub use easytime_models::{Forecaster, ModelSpec};
pub use easytime_qa::{QaResponse, QaSession};

/// Convenience result alias for the facade.
pub type Result<T> = std::result::Result<T, EasyTimeError>;
