//! Bridging the pipeline and the knowledge database.
//!
//! Figure 1 shows one *benchmark knowledge* store feeding both the
//! Automated Ensemble and the Q&A module. This module is that glue: it
//! materializes dataset meta-information, the method roster, and pipeline
//! result records as SQL rows, and reads performance matrices back for
//! recommender pretraining.

use crate::error::EasyTimeError;
use easytime_automl::PerfMatrix;
use easytime_data::Dataset;
use easytime_db::knowledge::{
    create_knowledge_schema, insert_dataset, insert_method, insert_result, DatasetRow, MethodRow,
    ResultRow,
};
use easytime_db::{Database, Value};
use easytime_eval::EvalRecord;
use easytime_models::zoo::ZooEntry;

/// Creates a fresh knowledge database with the schema installed.
pub fn new_knowledge_db() -> Database {
    let mut db = Database::new();
    // lint: allow(panic) — installing the schema into a brand-new empty
    // database cannot collide with existing tables; failure here is a bug
    // in the schema itself, not a runtime condition.
    create_knowledge_schema(&mut db).expect("fresh database accepts the schema");
    db
}

/// Inserts a dataset's meta-information.
pub fn record_dataset(db: &mut Database, dataset: &Dataset) -> Result<(), EasyTimeError> {
    let ch = &dataset.meta.characteristics;
    insert_dataset(
        db,
        &DatasetRow {
            id: dataset.meta.id.clone(),
            domain: dataset.meta.domain.name().to_string(),
            length: dataset.meta.length as i64,
            frequency: dataset.meta.frequency.name().to_string(),
            channels: dataset.meta.channels as i64,
            seasonality: ch.seasonality,
            trend: ch.trend,
            transition: ch.transition,
            shifting: ch.shifting,
            stationarity: ch.stationarity,
            correlation: ch.correlation,
            period: ch.period as i64,
        },
    )?;
    Ok(())
}

/// Inserts a zoo roster entry into the `methods` table.
pub fn record_method(db: &mut Database, entry: &ZooEntry) -> Result<(), EasyTimeError> {
    insert_method(
        db,
        &MethodRow {
            name: entry.spec.name(),
            family: entry.spec.family().name().to_string(),
            description: entry.description.to_string(),
        },
    )?;
    Ok(())
}

/// Inserts one pipeline record into the `results` table. Failed records
/// are skipped (they carry no scores); returns whether a row was written.
pub fn record_result(db: &mut Database, record: &EvalRecord) -> Result<bool, EasyTimeError> {
    if !record.is_ok() {
        return Ok(false);
    }
    let metric = |name: &str| {
        let v = record.score(name);
        v.is_finite().then_some(v)
    };
    insert_result(
        db,
        &ResultRow {
            dataset_id: record.dataset_id.clone(),
            method: record.method.clone(),
            strategy: record.strategy.clone(),
            horizon: record.horizon as i64,
            mae: metric("mae"),
            mse: metric("mse"),
            rmse: metric("rmse"),
            smape: metric("smape"),
            mase: metric("mase"),
            r2: metric("r2"),
            runtime_ms: record.runtime_ms,
            windows: record.windows as i64,
        },
    )?;
    Ok(true)
}

/// Reads a performance matrix for `metric` back out of the `results`
/// table (mean over strategies/horizons per dataset × method pair) —
/// the knowledge-base-driven path for recommender pretraining.
pub fn read_perf_matrix(db: &Database, metric: &str) -> Result<PerfMatrix, EasyTimeError> {
    // Guard against injection through a caller-supplied metric name: it
    // must be one of the result columns.
    const METRICS: &[&str] = &["mae", "mse", "rmse", "smape", "mase", "r2"];
    if !METRICS.contains(&metric) {
        return Err(EasyTimeError::Config {
            reason: format!("metric '{metric}' is not stored in the results table"),
        });
    }
    let result = db.query(&format!(
        "SELECT dataset_id, method, AVG({metric}) AS score FROM results \
         GROUP BY dataset_id, method ORDER BY dataset_id, method"
    ))?;

    let mut dataset_ids: Vec<String> = Vec::new();
    let mut methods: Vec<String> = Vec::new();
    for row in &result.rows {
        let d = row[0].as_str().unwrap_or_default().to_string();
        let m = row[1].as_str().unwrap_or_default().to_string();
        if !dataset_ids.contains(&d) {
            dataset_ids.push(d);
        }
        if !methods.contains(&m) {
            methods.push(m);
        }
    }
    let mut scores = vec![vec![f64::NAN; methods.len()]; dataset_ids.len()];
    for row in &result.rows {
        let d = row[0].as_str().unwrap_or_default();
        let m = row[1].as_str().unwrap_or_default();
        let (Some(di), Some(mi)) = (
            dataset_ids.iter().position(|x| x == d),
            methods.iter().position(|x| x == m),
        ) else {
            continue;
        };
        if let Value::Float(v) = row[2] {
            scores[di][mi] = v;
        }
    }
    Ok(PerfMatrix { dataset_ids, methods, scores })
}

#[cfg(test)]
mod tests {
    use super::*;
    use easytime_data::synthetic::{build_corpus, CorpusConfig};
    use easytime_data::Domain;
    use easytime_eval::{evaluate_corpus, EvalConfig, MetricRegistry};
    use easytime_models::zoo::standard_zoo;
    use easytime_models::ModelSpec;

    fn populated() -> (Database, Vec<easytime_data::Dataset>, Vec<EvalRecord>) {
        let corpus = build_corpus(&CorpusConfig {
            domains: vec![Domain::Nature, Domain::Web],
            per_domain: 2,
            length: 140,
            ..CorpusConfig::default()
        })
        .unwrap();
        let registry = MetricRegistry::standard();
        let config = EvalConfig {
            methods: vec![ModelSpec::Naive, ModelSpec::SeasonalNaive(None)],
            ..EvalConfig::default()
        }
        .into_validated(&registry)
        .unwrap();
        let records = evaluate_corpus(&corpus, &config, &registry).unwrap();

        let mut db = new_knowledge_db();
        for d in &corpus {
            record_dataset(&mut db, d).unwrap();
        }
        for entry in standard_zoo().iter().take(2) {
            record_method(&mut db, entry).unwrap();
        }
        for r in &records {
            record_result(&mut db, r).unwrap();
        }
        (db, corpus, records)
    }

    #[test]
    fn records_round_trip_through_sql() {
        let (db, corpus, records) = populated();
        let n = db.query("SELECT COUNT(*) AS n FROM datasets").unwrap();
        assert_eq!(n.rows[0][0], Value::Int(corpus.len() as i64));
        let r = db.query("SELECT COUNT(*) AS n FROM results").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(records.len() as i64));
        // Characteristics landed as floats in range.
        let t = db.query("SELECT trend FROM datasets").unwrap();
        for row in t.rows {
            let v = row[0].as_f64().unwrap();
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn failed_records_are_skipped() {
        let mut db = new_knowledge_db();
        let mut rec = EvalRecord {
            dataset_id: "d".into(),
            method: "m".into(),
            family: "statistical".into(),
            strategy: "fixed".into(),
            horizon: 12,
            scores: Default::default(),
            windows: 0,
            runtime_ms: 0.0,
            error: Some(easytime_eval::EvalFailure {
                kind: easytime_eval::FailureKind::Other,
                detail: "boom".into(),
            }),
        };
        assert!(!record_result(&mut db, &rec).unwrap());
        rec.error = None;
        rec.scores.insert("mae".into(), 1.0);
        assert!(record_result(&mut db, &rec).unwrap());
    }

    #[test]
    fn perf_matrix_reads_back() {
        let (db, corpus, _) = populated();
        let matrix = read_perf_matrix(&db, "mae").unwrap();
        assert_eq!(matrix.dataset_ids.len(), corpus.len());
        assert_eq!(matrix.methods.len(), 2);
        // Every dataset has both methods scored.
        for row in &matrix.scores {
            assert!(row.iter().all(|v| v.is_finite()));
        }
        assert!(matches!(
            read_perf_matrix(&db, "runtime_ms; DROP TABLE results"),
            Err(EasyTimeError::Config { .. })
        ));
    }
}
