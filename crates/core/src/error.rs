//! Top-level error type for the EasyTime platform.

use crate::json::JsonError;
use std::fmt;

/// Errors surfaced by the EasyTime facade.
#[derive(Debug, Clone, PartialEq)]
pub enum EasyTimeError {
    /// A configuration file could not be parsed or validated.
    Config {
        /// Human-readable description.
        reason: String,
    },
    /// Data-layer failure.
    Data(easytime_data::DataError),
    /// Model-layer failure.
    Model(easytime_models::ModelError),
    /// Evaluation failure.
    Eval(easytime_eval::EvalError),
    /// Knowledge-base failure.
    Db(easytime_db::DbError),
    /// AutoML failure.
    AutoMl(easytime_automl::AutoMlError),
    /// Q&A failure.
    Qa(easytime_qa::QaError),
}

impl fmt::Display for EasyTimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EasyTimeError::Config { reason } => write!(f, "configuration error: {reason}"),
            EasyTimeError::Data(e) => write!(f, "{e}"),
            EasyTimeError::Model(e) => write!(f, "{e}"),
            EasyTimeError::Eval(e) => write!(f, "{e}"),
            EasyTimeError::Db(e) => write!(f, "{e}"),
            EasyTimeError::AutoMl(e) => write!(f, "{e}"),
            EasyTimeError::Qa(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EasyTimeError {}

impl From<JsonError> for EasyTimeError {
    fn from(e: JsonError) -> Self {
        EasyTimeError::Config { reason: e.to_string() }
    }
}

impl From<easytime_data::DataError> for EasyTimeError {
    fn from(e: easytime_data::DataError) -> Self {
        EasyTimeError::Data(e)
    }
}

impl From<easytime_models::ModelError> for EasyTimeError {
    fn from(e: easytime_models::ModelError) -> Self {
        EasyTimeError::Model(e)
    }
}

impl From<easytime_eval::EvalError> for EasyTimeError {
    fn from(e: easytime_eval::EvalError) -> Self {
        EasyTimeError::Eval(e)
    }
}

impl From<easytime_db::DbError> for EasyTimeError {
    fn from(e: easytime_db::DbError) -> Self {
        EasyTimeError::Db(e)
    }
}

impl From<easytime_automl::AutoMlError> for EasyTimeError {
    fn from(e: easytime_automl::AutoMlError) -> Self {
        EasyTimeError::AutoMl(e)
    }
}

impl From<easytime_qa::QaError> for EasyTimeError {
    fn from(e: easytime_qa::QaError) -> Self {
        EasyTimeError::Qa(e)
    }
}
