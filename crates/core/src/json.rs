//! Minimal JSON parsing and serialization.
//!
//! EasyTime's one-click evaluation is driven by configuration files the
//! user edits in the frontend (paper §II-B, Figure 4 label 6). This module
//! implements the JSON subset those files need — objects, arrays, strings,
//! numbers, booleans, null — from scratch, keeping the workspace on the
//! approved dependency set (see DESIGN.md).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (key order normalized).
    Object(BTreeMap<String, Json>),
}

/// JSON parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub position: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = JsonParser { bytes: text.as_bytes(), text, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view (numbers with no fractional part).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        out.push_str(&format!("{:.0}", n));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::String(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    /// Serializes the value to compact JSON text.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    text: &'a str,
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { position: self.pos, message: message.to_string() }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn consume(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.text[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.consume(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.text[self.pos..].chars().next() else {
                return Err(self.err("unterminated string"));
            };
            match c {
                '"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                '\\' => {
                    self.pos += 1;
                    let Some(esc) = self.text[self.pos..].chars().next() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += esc.len_utf8();
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.text[self.pos..self.pos + 4];
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are rare in config files;
                            // unpaired surrogates map to the replacement
                            // character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(self.err(&format!("bad escape '\\{other}'"))),
                    }
                }
                c => {
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = &self.text[start..self.pos];
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| JsonError { position: start, message: format!("bad number '{text}'") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").expect("input parses as JSON"), Json::Null);
        assert_eq!(Json::parse("true").expect("input parses as JSON"), Json::Bool(true));
        assert_eq!(Json::parse(" false ").expect("input parses as JSON"), Json::Bool(false));
        assert_eq!(Json::parse("42").expect("input parses as JSON"), Json::Number(42.0));
        assert_eq!(Json::parse("-2.5e2").expect("input parses as JSON"), Json::Number(-250.0));
        assert_eq!(Json::parse("\"hi\"").expect("input parses as JSON"), Json::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{
            "methods": ["naive", "theta"],
            "strategy": {"type": "rolling", "horizon": 24},
            "drop_last": false,
            "ratio": 0.7
        }"#;
        let v = Json::parse(doc).expect("input parses as JSON");
        assert_eq!(
            v.get("methods").expect("key is present in the object").as_array().expect("value is a JSON array")[1].as_str(),
            Some("theta")
        );
        assert_eq!(
            v.get("strategy").expect("key is present in the object").get("horizon").expect("key is present in the object").as_usize(),
            Some(24)
        );
        assert_eq!(v.get("drop_last").expect("key is present in the object").as_bool(), Some(false));
        assert_eq!(v.get("ratio").expect("key is present in the object").as_f64(), Some(0.7));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::String("a\"b\\c\nd\te\u{1}ü".into());
        let text = original.to_string();
        assert_eq!(Json::parse(&text).expect("input parses as JSON"), original);
    }

    #[test]
    fn unicode_escape_parsing() {
        assert_eq!(
            Json::parse(r#""é中""#).expect("input parses as JSON"),
            Json::String("é中".into())
        );
        assert!(Json::parse(r#""\u12"#).is_err());
        assert!(Json::parse(r#""\x""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\" 1}", "{\"a\":}", "tru", "1 2", "{\"a\":1,}", "\"open",
            "[1, ]", "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn serialization_round_trips() {
        let doc = r#"{"a": [1, 2.5, null, true, "s"], "b": {"c": -3}}"#;
        let v = Json::parse(doc).expect("input parses as JSON");
        let text = v.to_string();
        assert_eq!(Json::parse(&text).expect("input parses as JSON"), v);
        // Compact form uses no spaces.
        assert!(!text.contains(": "));
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::Number(f64::NAN).to_string(), "null");
        assert_eq!(Json::Number(f64::INFINITY).to_string(), "null");
    }

    /// Random JSON value for the round-trip property: leaves are null /
    /// bool / rounded number / printable string, containers recurse up to
    /// `depth` levels.
    fn arb_json(rng: &mut easytime_rng::StdRng, depth: usize) -> Json {
        let leaf_only = depth == 0;
        match rng.gen_range(0..if leaf_only { 4 } else { 6 }) {
            0 => Json::Null,
            1 => Json::Bool(rng.gen_bool(0.5)),
            2 => Json::Number((rng.gen_range_f64(-1e9, 1e9) * 1e3).round() / 1e3),
            3 => {
                let len = rng.gen_range(0..17);
                Json::String(
                    (0..len).map(|_| (b' ' + rng.gen_range(0..95) as u8) as char).collect(),
                )
            }
            4 => Json::Array(
                (0..rng.gen_range(0..4)).map(|_| arb_json(rng, depth - 1)).collect(),
            ),
            _ => Json::Object(
                (0..rng.gen_range(0..4))
                    .map(|_| {
                        let klen = rng.gen_range(1..7);
                        let key: String = (0..klen)
                            .map(|_| (b'a' + rng.gen_range(0..26) as u8) as char)
                            .collect();
                        (key, arb_json(rng, depth - 1))
                    })
                    .collect(),
            ),
        }
    }

    #[test]
    fn serialization_round_trips_arbitrary_values() {
        for case in 0..64 {
            let mut rng = easytime_rng::StdRng::seed_from_u64(0x150A_F00D).derive(case);
            let v = arb_json(&mut rng, 3);
            let text = v.to_string();
            let back = Json::parse(&text).expect("input parses as JSON");
            assert_eq!(back, v, "round-trip failed for {text}");
        }
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::parse("[]").expect("input parses as JSON"), Json::Array(vec![]));
        assert_eq!(Json::parse("{}").expect("input parses as JSON"), Json::Object(BTreeMap::new()));
        assert_eq!(Json::parse("[]").expect("input parses as JSON").to_string(), "[]");
        assert_eq!(Json::parse("{}").expect("input parses as JSON").to_string(), "{}");
    }
}
