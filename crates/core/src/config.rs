//! Configuration files for one-click evaluation.
//!
//! The paper's S1 demonstration: "Users need only edit the configuration
//! file in the web frontend, thus achieving one click evaluation." This
//! module defines that file format (JSON) and compiles it into the
//! pipeline's [`EvalConfig`] plus a dataset selection. Example:
//!
//! ```json
//! {
//!   "methods": ["theta", "seasonal_naive", "dlinear_32"],
//!   "strategy": {"type": "rolling", "horizon": 24, "stride": 24},
//!   "split": {"train": 0.7, "val": 0.1, "drop_last": true},
//!   "scaler": "zscore",
//!   "metrics": ["mae", "rmse", "smape", "mase"],
//!   "datasets": {"domain": "web"}
//! }
//! ```
//!
//! Every field has a sensible default, so the minimal valid file is `{}`
//! (evaluate `naive` on everything, fixed horizon 12 — the paper's
//! "run a method on all existing datasets with one click").

use crate::error::EasyTimeError;
use crate::json::Json;
use easytime_data::scaler::ScalerKind;
use easytime_data::{Dataset, Domain, SplitSpec};
use easytime_eval::{EvalConfig, RefitPolicy, Strategy};
use easytime_models::ModelSpec;

/// Which datasets a run covers.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum DatasetSelection {
    /// Every dataset in the registry.
    #[default]
    All,
    /// Explicit ids.
    Ids(Vec<String>),
    /// Every dataset of one domain.
    Domain(Domain),
}

impl DatasetSelection {
    /// Applies the selection to a registry snapshot.
    pub fn filter(&self, datasets: Vec<Dataset>) -> Vec<Dataset> {
        match self {
            DatasetSelection::All => datasets,
            DatasetSelection::Ids(ids) => {
                datasets.into_iter().filter(|d| ids.contains(&d.meta.id)).collect()
            }
            DatasetSelection::Domain(domain) => {
                datasets.into_iter().filter(|d| d.meta.domain == *domain).collect()
            }
        }
    }
}

/// A parsed one-click configuration file.
#[derive(Debug, Clone, PartialEq)]
pub struct FileConfig {
    /// The pipeline configuration.
    pub eval: EvalConfig,
    /// The dataset selection.
    pub datasets: DatasetSelection,
}

fn config_err(reason: impl Into<String>) -> EasyTimeError {
    EasyTimeError::Config { reason: reason.into() }
}

/// Parses a one-click configuration file from JSON text.
///
/// Parsing is purely syntactic: names must resolve (methods, scalers,
/// domains, refit policies) but semantic validation — non-empty method
/// and metric rosters, known metric names — is owned by
/// [`easytime_eval::EvalConfig::into_validated`], which `one_click` and
/// `one_click_json` both route through. That keeps a single validation
/// path with typed [`easytime_eval::EvalError::InvalidConfig`] failures
/// instead of duplicating ad-hoc checks here.
pub fn parse_config(text: &str) -> Result<FileConfig, EasyTimeError> {
    let doc = Json::parse(text)?;
    if !matches!(doc, Json::Object(_)) {
        return Err(config_err("configuration must be a JSON object"));
    }

    // --- methods ---
    let methods: Vec<ModelSpec> = match doc.get("methods") {
        None => vec![ModelSpec::Naive],
        Some(Json::Array(items)) => items
            .iter()
            .map(|m| {
                let name =
                    m.as_str().ok_or_else(|| config_err("'methods' entries must be strings"))?;
                ModelSpec::parse(name).map_err(EasyTimeError::Model)
            })
            .collect::<Result<_, _>>()?,
        Some(Json::String(s)) if s == "all" => easytime_models::zoo::standard_zoo()
            .into_iter()
            .map(|e| e.spec)
            .collect(),
        Some(_) => return Err(config_err("'methods' must be an array of names or \"all\"")),
    };

    // --- strategy ---
    let strategy = match doc.get("strategy") {
        None => Strategy::Fixed { horizon: 12 },
        Some(s) => {
            let kind = s.get("type").and_then(Json::as_str).unwrap_or("fixed");
            let horizon = s
                .get("horizon")
                .map(|h| h.as_usize().ok_or_else(|| config_err("'horizon' must be a positive integer")))
                .transpose()?
                .unwrap_or(12);
            match kind {
                "fixed" => Strategy::Fixed { horizon },
                "rolling" => {
                    let stride = s
                        .get("stride")
                        .map(|v| {
                            v.as_usize()
                                .ok_or_else(|| config_err("'stride' must be a positive integer"))
                        })
                        .transpose()?
                        .unwrap_or(horizon);
                    let max_windows = s
                        .get("max_windows")
                        .map(|v| {
                            v.as_usize()
                                .ok_or_else(|| config_err("'max_windows' must be an integer"))
                        })
                        .transpose()?;
                    Strategy::Rolling { horizon, stride, max_windows }
                }
                other => return Err(config_err(format!("unknown strategy type '{other}'"))),
            }
        }
    };

    // --- split ---
    let split = match doc.get("split") {
        None => SplitSpec::default(),
        Some(s) => {
            let train = s.get("train").and_then(Json::as_f64).unwrap_or(0.7);
            let val = s.get("val").and_then(Json::as_f64).unwrap_or(0.1);
            let drop_last = s.get("drop_last").and_then(Json::as_bool).unwrap_or(false);
            SplitSpec::new(train, val, drop_last).map_err(EasyTimeError::Data)?
        }
    };

    // --- scaler ---
    let scaler = match doc.get("scaler") {
        None => ScalerKind::ZScore,
        Some(s) => {
            let name = s.as_str().ok_or_else(|| config_err("'scaler' must be a string"))?;
            ScalerKind::parse(name)
                .ok_or_else(|| config_err(format!("unknown scaler '{name}'")))?
        }
    };

    // --- metrics ---
    let metrics: Vec<String> = match doc.get("metrics") {
        None => vec!["mae".into(), "mse".into(), "rmse".into(), "smape".into(), "mase".into(), "r2".into()],
        Some(Json::Array(items)) => items
            .iter()
            .map(|m| {
                m.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| config_err("'metrics' entries must be strings"))
            })
            .collect::<Result<_, _>>()?,
        Some(_) => return Err(config_err("'metrics' must be an array of names")),
    };

    // --- refit policy ---
    let refit = match doc.get("refit") {
        None => RefitPolicy::Always,
        Some(r) => {
            let name = r.as_str().ok_or_else(|| config_err("'refit' must be a string"))?;
            RefitPolicy::parse(name)
                .ok_or_else(|| config_err(format!("unknown refit policy '{name}'")))?
        }
    };

    // --- threads ---
    let threads = doc
        .get("threads")
        .map(|t| t.as_usize().ok_or_else(|| config_err("'threads' must be an integer")))
        .transpose()?
        .unwrap_or(0);

    // --- datasets ---
    let datasets = match doc.get("datasets") {
        None => DatasetSelection::All,
        Some(Json::String(s)) if s == "all" => DatasetSelection::All,
        Some(Json::Array(items)) => {
            let ids = items
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| config_err("'datasets' ids must be strings"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            DatasetSelection::Ids(ids)
        }
        Some(obj) => {
            if let Some(domain) = obj.get("domain").and_then(Json::as_str) {
                let d = Domain::parse(domain)
                    .ok_or_else(|| config_err(format!("unknown domain '{domain}'")))?;
                DatasetSelection::Domain(d)
            } else if let Some(ids) = obj.get("ids").and_then(Json::as_array) {
                let ids = ids
                    .iter()
                    .map(|v| {
                        v.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| config_err("'datasets.ids' must be strings"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                DatasetSelection::Ids(ids)
            } else {
                return Err(config_err(
                    "'datasets' must be \"all\", an id array, or {\"domain\"|\"ids\": …}",
                ));
            }
        }
    };

    Ok(FileConfig {
        eval: EvalConfig { methods, strategy, split, scaler, metrics, threads, refit },
        datasets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_object_gives_full_defaults() {
        let c = parse_config("{}").unwrap();
        assert_eq!(c.eval.methods, vec![ModelSpec::Naive]);
        assert_eq!(c.eval.strategy, Strategy::Fixed { horizon: 12 });
        assert_eq!(c.eval.scaler, ScalerKind::ZScore);
        assert_eq!(c.datasets, DatasetSelection::All);
        assert_eq!(c.eval.refit, RefitPolicy::Always);
        assert!(c.eval.metrics.contains(&"mase".to_string()));
    }

    #[test]
    fn full_config_parses() {
        let text = r#"{
            "methods": ["theta", "seasonal_naive", "dlinear_32"],
            "strategy": {"type": "rolling", "horizon": 24, "stride": 12, "max_windows": 5},
            "split": {"train": 0.6, "val": 0.2, "drop_last": true},
            "scaler": "minmax",
            "metrics": ["mae", "smape"],
            "refit": "warm_start",
            "threads": 2,
            "datasets": {"domain": "web"}
        }"#;
        let c = parse_config(text).unwrap();
        assert_eq!(c.eval.methods.len(), 3);
        assert_eq!(
            c.eval.strategy,
            Strategy::Rolling { horizon: 24, stride: 12, max_windows: Some(5) }
        );
        assert!(c.eval.split.drop_last);
        assert_eq!(c.eval.scaler, ScalerKind::MinMax);
        assert_eq!(c.eval.refit, RefitPolicy::WarmStart);
        assert_eq!(c.eval.threads, 2);
        assert_eq!(c.datasets, DatasetSelection::Domain(Domain::Web));
    }

    #[test]
    fn methods_all_expands_the_zoo() {
        let c = parse_config(r#"{"methods": "all"}"#).unwrap();
        assert!(c.eval.methods.len() >= 20);
    }

    #[test]
    fn dataset_selection_variants() {
        let ids = parse_config(r#"{"datasets": ["a", "b"]}"#).unwrap();
        assert_eq!(ids.datasets, DatasetSelection::Ids(vec!["a".into(), "b".into()]));
        let ids2 = parse_config(r#"{"datasets": {"ids": ["x"]}}"#).unwrap();
        assert_eq!(ids2.datasets, DatasetSelection::Ids(vec!["x".into()]));
        let all = parse_config(r#"{"datasets": "all"}"#).unwrap();
        assert_eq!(all.datasets, DatasetSelection::All);
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(parse_config("[]").is_err());
        assert!(parse_config(r#"{"methods": ["transformer"]}"#).is_err());
        assert!(parse_config(r#"{"strategy": {"type": "walkforward"}}"#).is_err());
        assert!(parse_config(r#"{"split": {"train": 0.9, "val": 0.2}}"#).is_err());
        assert!(parse_config(r#"{"scaler": "log"}"#).is_err());
        assert!(parse_config(r#"{"refit": "sometimes"}"#).is_err());
        assert!(parse_config(r#"{"datasets": {"domain": "space"}}"#).is_err());
        assert!(parse_config("not json").is_err());
    }

    #[test]
    fn empty_rosters_parse_and_fail_later_in_validation() {
        // Semantic validation (non-empty rosters) is the job of the
        // sealed eval-config path, not the parser: both `one_click` and
        // `one_click_json` reject these with the same typed error.
        assert!(parse_config(r#"{"methods": []}"#).is_ok());
        assert!(parse_config(r#"{"metrics": []}"#).is_ok());
    }

    #[test]
    fn rolling_stride_defaults_to_horizon() {
        let c = parse_config(r#"{"strategy": {"type": "rolling", "horizon": 8}}"#).unwrap();
        assert_eq!(c.eval.strategy, Strategy::Rolling { horizon: 8, stride: 8, max_windows: None });
    }
}
