//! The EasyTime platform facade.
//!
//! [`EasyTime`] wires the four modules of Figure 1 together: the benchmark
//! (data registry + method roster + evaluation pipeline), one-click
//! evaluation, the automated ensemble, and natural-language Q&A — all
//! sharing one benchmark-knowledge database.

use crate::config::{parse_config, DatasetSelection, FileConfig};
use crate::error::EasyTimeError;
use crate::knowledge::{
    new_knowledge_db, read_perf_matrix, record_dataset, record_method, record_result,
};
use easytime_automl::ensemble::WeightMode;
use easytime_automl::{AutoEnsemble, PerfMatrix, Recommendation, Recommender, RecommenderConfig};
use easytime_data::characteristics::Characteristics;
use easytime_data::synthetic::{build_corpus, CorpusConfig};
use easytime_data::{csv, Dataset, DatasetRegistry, Domain, Frequency, TimeSeries};
use easytime_db::{Database, QueryResult};
use easytime_eval::{evaluate_corpus, EvalConfig, EvalRecord, Leaderboard, MetricRegistry, RunLog};
use easytime_models::zoo::{standard_zoo, ZooEntry};
use easytime_qa::QaSession;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The EasyTime platform: one-click evaluation, automated ensembles, and
/// Q&A over a shared benchmark.
pub struct EasyTime {
    registry: DatasetRegistry,
    metrics: MetricRegistry,
    knowledge: Mutex<Database>,
    log: RunLog,
    zoo: Vec<ZooEntry>,
}

impl std::fmt::Debug for EasyTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EasyTime")
            .field("datasets", &self.registry.len())
            .field("methods", &self.zoo.len())
            .finish_non_exhaustive()
    }
}

impl Default for EasyTime {
    fn default() -> Self {
        Self::new()
    }
}

impl EasyTime {
    /// Guarded access to the knowledge database; a poisoned lock is
    /// recovered rather than propagated (the database is a value type and
    /// every write path replaces whole rows).
    fn knowledge_guard(&self) -> MutexGuard<'_, Database> {
        self.knowledge.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Creates an empty platform (no datasets yet) with the standard
    /// method roster registered in the knowledge base.
    pub fn new() -> EasyTime {
        let zoo = standard_zoo();
        let mut db = new_knowledge_db();
        for entry in &zoo {
            // lint: allow(panic) — a freshly created schema statically
            // accepts the standard roster; failure here is a programming
            // error in the schema itself, not a runtime condition.
            record_method(&mut db, entry).expect("fresh schema accepts the roster");
        }
        EasyTime {
            registry: DatasetRegistry::new(),
            metrics: MetricRegistry::standard(),
            knowledge: Mutex::new(db),
            log: RunLog::new(),
            zoo,
        }
    }

    /// Creates a platform pre-populated with a synthetic benchmark corpus
    /// (the stand-in for TFB's dataset collection).
    pub fn with_benchmark(config: &CorpusConfig) -> Result<EasyTime, EasyTimeError> {
        let platform = EasyTime::new();
        for dataset in build_corpus(config)? {
            platform.add_dataset(dataset)?;
        }
        Ok(platform)
    }

    /// The dataset registry.
    pub fn registry(&self) -> &DatasetRegistry {
        &self.registry
    }

    /// The metric registry (register custom metrics here).
    pub fn metrics(&self) -> &MetricRegistry {
        &self.metrics
    }

    /// The method roster with descriptions.
    pub fn method_roster(&self) -> &[ZooEntry] {
        &self.zoo
    }

    /// The accumulated run log.
    pub fn run_log(&self) -> &RunLog {
        &self.log
    }

    /// Registers a dataset and records its meta-information in the
    /// knowledge base.
    pub fn add_dataset(&self, dataset: Dataset) -> Result<(), EasyTimeError> {
        record_dataset(&mut self.knowledge_guard(), &dataset)?;
        self.registry.insert(dataset);
        Ok(())
    }

    /// Uploads a univariate dataset from CSV text (Figure 4, label 1:
    /// the *Upload Dataset* button). Returns its measured characteristics
    /// (label 4).
    pub fn upload_csv(
        &self,
        id: &str,
        domain: Domain,
        csv_text: &str,
        frequency: Frequency,
    ) -> Result<Characteristics, EasyTimeError> {
        let series = csv::read_univariate(id, csv_text, frequency)?;
        let dataset = Dataset::from_univariate(id, domain, series);
        let chars = dataset.meta.characteristics;
        self.add_dataset(dataset)?;
        Ok(chars)
    }

    /// Measured characteristics of a registered dataset (Figure 4,
    /// label 4).
    pub fn characteristics(&self, dataset_id: &str) -> Result<Characteristics, EasyTimeError> {
        Ok(self.registry.get(dataset_id)?.meta.characteristics)
    }

    /// One-click evaluation from a parsed configuration (paper S1).
    ///
    /// Runs the pipeline over the selected datasets, appends the records
    /// to the run log, and materializes them in the knowledge base.
    pub fn one_click(&self, config: &FileConfig) -> Result<Vec<EvalRecord>, EasyTimeError> {
        let datasets = config.datasets.filter(self.registry.all());
        if datasets.is_empty() {
            return Err(EasyTimeError::Config {
                reason: "the dataset selection matches no registered datasets".into(),
            });
        }
        let eval = config.eval.clone().into_validated(&self.metrics)?;
        let records = evaluate_corpus(&datasets, &eval, &self.metrics)?;
        {
            let mut db = self.knowledge_guard();
            for r in &records {
                record_result(&mut db, r)?;
            }
        }
        self.log.extend(records.clone());
        Ok(records)
    }

    /// One-click evaluation straight from configuration-file text — the
    /// paper's "edit the configuration file … achieving one click
    /// evaluation".
    pub fn one_click_json(&self, config_text: &str) -> Result<Vec<EvalRecord>, EasyTimeError> {
        let config = parse_config(config_text)?;
        self.one_click(&config)
    }

    /// Convenience: evaluate a method list on every registered dataset.
    pub fn evaluate_all(&self, eval: EvalConfig) -> Result<Vec<EvalRecord>, EasyTimeError> {
        self.one_click(&FileConfig { eval, datasets: DatasetSelection::All })
    }

    /// Leaderboard over everything evaluated so far.
    pub fn leaderboard(&self, metric: &str) -> Result<Leaderboard, EasyTimeError> {
        let lower = self.metrics.get(metric)?.lower_is_better();
        Ok(self.log.leaderboard(metric, lower))
    }

    /// Snapshot of the knowledge database (cheap enough at benchmark
    /// scale; keeps Q&A sessions isolated from later writes).
    pub fn knowledge_snapshot(&self) -> Database {
        self.knowledge_guard().clone()
    }

    /// Runs a read-only SQL query against the knowledge base (the power-
    /// user path shown in Figure 5, label 4).
    pub fn query_knowledge(&self, sql: &str) -> Result<QueryResult, EasyTimeError> {
        Ok(self.knowledge_guard().query(sql)?)
    }

    /// Opens a natural-language Q&A session over the current knowledge.
    pub fn qa_session(&self) -> Result<QaSession, EasyTimeError> {
        Ok(QaSession::new(self.knowledge_snapshot())?)
    }

    /// Offline pretraining of the method recommender on the registered
    /// corpus (Figure 2, offline phase). Also materializes the benchmark
    /// results it produces into the knowledge base.
    pub fn pretrain_recommender(
        &self,
        config: &RecommenderConfig,
    ) -> Result<(Recommender, PerfMatrix), EasyTimeError> {
        let corpus = self.registry.all();
        let (rec, matrix) = Recommender::pretrain(&corpus, config)?;
        Ok((rec, matrix))
    }

    /// Pretrains the recommender from results already accumulated in the
    /// knowledge base (no new evaluation runs).
    pub fn pretrain_recommender_from_knowledge(
        &self,
        config: &RecommenderConfig,
    ) -> Result<Recommender, EasyTimeError> {
        let matrix = read_perf_matrix(&self.knowledge_guard(), &config.metric)?;
        let mut series = Vec::with_capacity(matrix.dataset_ids.len());
        for id in &matrix.dataset_ids {
            series.push(self.registry.get(id)?.primary_series());
        }
        Ok(Recommender::pretrain_from_matrix(&series, &matrix, config)?)
    }

    /// Online phase: recommend methods for a registered dataset
    /// (Figure 4, label 3: the *Recommend Method* button).
    pub fn recommend(
        &self,
        recommender: &Recommender,
        dataset_id: &str,
        k: usize,
    ) -> Result<Vec<Recommendation>, EasyTimeError> {
        let series = self.registry.get(dataset_id)?.primary_series();
        Ok(recommender.recommend(&series).into_iter().take(k.max(1)).collect())
    }

    /// Builds the automated ensemble for a series (Figure 4, label 8: the
    /// *AutoML* button).
    pub fn auto_ensemble(
        &self,
        recommender: &Recommender,
        series: &TimeSeries,
        k: usize,
    ) -> Result<AutoEnsemble, EasyTimeError> {
        Ok(AutoEnsemble::fit(recommender, series, k, 0.2, WeightMode::Learned)?)
    }

    /// Uploads a multivariate dataset from wide-layout CSV text.
    pub fn upload_multivariate_csv(
        &self,
        id: &str,
        domain: Domain,
        csv_text: &str,
        frequency: Frequency,
    ) -> Result<Characteristics, EasyTimeError> {
        let series = csv::read_multivariate(id, csv_text, frequency)?;
        let dataset = Dataset::from_multivariate(id, domain, series);
        let chars = dataset.meta.characteristics;
        self.add_dataset(dataset)?;
        Ok(chars)
    }

    /// Evaluates multivariate methods (VAR and channel-independent zoo
    /// members) on a registered multivariate dataset, recording results in
    /// the run log.
    pub fn evaluate_multivariate(
        &self,
        dataset_id: &str,
        specs: &[easytime_models::multivariate::MultiModelSpec],
        config: &EvalConfig,
    ) -> Result<Vec<EvalRecord>, EasyTimeError> {
        let dataset = self.registry.get(dataset_id)?;
        let Some(series) = dataset.as_multivariate() else {
            return Err(EasyTimeError::Config {
                reason: format!("dataset '{dataset_id}' is not multivariate"),
            });
        };
        let validated = config.clone().into_validated(&self.metrics)?;
        let mut records = Vec::with_capacity(specs.len());
        for spec in specs {
            records.push(easytime_eval::evaluate_multivariate(
                dataset_id,
                series,
                spec,
                &validated,
                &self.metrics,
            )?);
        }
        self.log.extend(records.clone());
        Ok(records)
    }

    /// Pretrains the zero-shot global model on the registered corpus —
    /// the foundation-model tier of the method layer. Specialize it to
    /// any series with [`easytime_models::global::GlobalRidge::specialize`].
    pub fn pretrain_global_model(
        &self,
        lookback: usize,
    ) -> Result<easytime_models::global::GlobalRidge, EasyTimeError> {
        let corpus: Vec<TimeSeries> =
            self.registry.all().iter().map(Dataset::primary_series).collect();
        let mut model = easytime_models::global::GlobalRidge::new(lookback, 1e-3)?;
        model.fit_corpus(&corpus)?;
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easytime_eval::Strategy;
    use easytime_models::ModelSpec;

    fn small_platform() -> EasyTime {
        EasyTime::with_benchmark(&CorpusConfig {
            domains: vec![Domain::Nature, Domain::Web],
            per_domain: 3,
            length: 150,
            ..CorpusConfig::default()
        })
        .expect("with_benchmark succeeds")
    }

    #[test]
    fn platform_registers_corpus_and_roster() {
        let p = small_platform();
        assert_eq!(p.registry().len(), 6);
        assert!(p.method_roster().len() >= 20);
        let methods = p.query_knowledge("SELECT COUNT(*) AS n FROM methods").expect("query_knowledge succeeds");
        assert_eq!(methods.rows[0][0].to_string(), p.method_roster().len().to_string());
        let datasets = p.query_knowledge("SELECT COUNT(*) AS n FROM datasets").expect("query_knowledge succeeds");
        assert_eq!(datasets.rows[0][0].to_string(), "6");
    }

    #[test]
    fn one_click_json_end_to_end() {
        let p = small_platform();
        let records = p
            .one_click_json(
                r#"{
                    "methods": ["naive", "seasonal_naive"],
                    "strategy": {"type": "fixed", "horizon": 12},
                    "datasets": {"domain": "nature"}
                }"#,
            )
            .expect("JSON config is valid");
        assert_eq!(records.len(), 3 * 2);
        assert!(records.iter().all(EvalRecord::is_ok));
        // Results landed in the knowledge base and the log.
        let n = p.query_knowledge("SELECT COUNT(*) AS n FROM results").expect("query_knowledge succeeds");
        assert_eq!(n.rows[0][0].to_string(), "6");
        assert_eq!(p.run_log().len(), 6);
        // Leaderboard is available.
        let board = p.leaderboard("mae").expect("leaderboard succeeds");
        assert_eq!(board.rows.len(), 2);
    }

    #[test]
    fn empty_selection_is_an_error() {
        let p = small_platform();
        let err = p
            .one_click_json(r#"{"datasets": {"domain": "banking"}}"#)
            .unwrap_err();
        assert!(matches!(err, EasyTimeError::Config { .. }));
    }

    #[test]
    fn one_click_json_reports_typed_validation_failures() {
        // The JSON path shares `one_click`'s validated-config path, so an
        // empty roster surfaces as the same typed eval error — not a
        // parser-specific stringly failure.
        let p = small_platform();
        for text in [r#"{"methods": []}"#, r#"{"metrics": []}"#] {
            let err = p.one_click_json(text).unwrap_err();
            assert!(
                matches!(
                    err,
                    EasyTimeError::Eval(easytime_eval::EvalError::InvalidConfig { .. })
                ),
                "expected typed InvalidConfig for {text}, got {err:?}"
            );
        }
    }

    #[test]
    fn upload_csv_measures_characteristics() {
        let p = EasyTime::new();
        let mut csv = String::from("value\n");
        for t in 0..120 {
            csv.push_str(&format!(
                "{}\n",
                10.0 + 5.0 * (2.0 * std::f64::consts::PI * t as f64 / 12.0).sin()
            ));
        }
        let chars = p.upload_csv("mine", Domain::Economic, &csv, Frequency::Monthly).expect("upload_csv succeeds");
        assert!(chars.seasonality > 0.8);
        assert_eq!(p.registry().len(), 1);
        assert_eq!(p.characteristics("mine").expect("characteristics succeeds").period, 12);
        // And it is queryable through SQL.
        let r = p
            .query_knowledge("SELECT seasonality FROM datasets WHERE id = 'mine'")
            .expect("query_knowledge succeeds");
        assert!(r.rows[0][0].as_f64().expect("as_f64 succeeds") > 0.8);
    }

    #[test]
    fn qa_over_evaluated_results() {
        let p = small_platform();
        p.one_click_json(r#"{"methods": ["naive", "seasonal_naive", "theta"]}"#).expect("JSON config is valid");
        let mut session = p.qa_session().expect("qa_session succeeds");
        let resp = session.ask("What are the top 3 methods by MAE?").expect("question is answered");
        assert_eq!(resp.table.rows.len(), 3);
        assert!(resp.answer.contains("1."));
    }

    #[test]
    fn recommender_from_knowledge_matches_runtime_path() {
        let p = small_platform();
        // Accumulate results, then pretrain from the knowledge base.
        p.one_click_json(
            r#"{"methods": ["naive", "seasonal_naive", "drift"],
                "strategy": {"type": "fixed", "horizon": 12},
                "metrics": ["smape"]}"#,
        )
        .expect("JSON config is valid");
        let config = RecommenderConfig {
            methods: vec![ModelSpec::Naive, ModelSpec::SeasonalNaive(None), ModelSpec::Drift],
            strategy: Strategy::Fixed { horizon: 12 },
            ..RecommenderConfig::default()
        };
        let rec = p.pretrain_recommender_from_knowledge(&config).expect("pretraining succeeds");
        let top = p.recommend(&rec, &p.registry().ids()[0], 2).expect("recommendation succeeds");
        assert_eq!(top.len(), 2);
        assert!(top[0].score >= top[1].score);
        assert_eq!((top[0].rank, top[1].rank), (0, 1));
    }

    #[test]
    fn multivariate_upload_and_evaluation() {
        use easytime_models::multivariate::MultiModelSpec;
        let p = EasyTime::new();
        let mut csv = String::from("a,b\n");
        for t in 0..200 {
            let x = ((t as f64) * 0.3).sin() * 5.0 + 10.0;
            csv.push_str(&format!("{x},{}\n", x * 2.0 + 1.0));
        }
        let chars = p
            .upload_multivariate_csv("pair", Domain::Electricity, &csv, Frequency::Hourly)
            .expect("upload_multivariate_csv succeeds");
        assert!(chars.correlation > 0.9, "correlation {}", chars.correlation);

        let config = EvalConfig {
            strategy: easytime_eval::Strategy::Fixed { horizon: 8 },
            ..EvalConfig::default()
        };
        let records = p
            .evaluate_multivariate(
                "pair",
                &[
                    MultiModelSpec::Var { order: 2 },
                    MultiModelSpec::PerChannel(ModelSpec::Naive),
                ],
                &config,
            )
            .expect("evaluate_multivariate succeeds");
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(EvalRecord::is_ok));
        assert_eq!(p.run_log().len(), 2);
        // A univariate dataset is rejected on this path.
        let uni_csv = "value\n1\n2\n3\n4\n5\n6\n7\n8\n9\n10\n";
        p.upload_csv("uni", Domain::Web, uni_csv, Frequency::Daily).expect("upload_csv succeeds");
        assert!(p
            .evaluate_multivariate("uni", &[MultiModelSpec::Var { order: 1 }], &config)
            .is_err());
    }

    #[test]
    fn global_model_pretrains_and_specializes() {
        let p = small_platform();
        let global = p.pretrain_global_model(16).expect("pretrain_global_model succeeds");
        assert!(global.is_pretrained());
        let series = p.registry().all()[0].primary_series();
        let zero_shot = global.specialize(&series).expect("specialization succeeds");
        use easytime_models::Forecaster;
        let f = zero_shot.forecast(8).expect("forecast succeeds on a fitted model");
        assert_eq!(f.len(), 8);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn auto_ensemble_via_platform() {
        let p = small_platform();
        let config = RecommenderConfig {
            methods: vec![ModelSpec::SeasonalNaive(None), ModelSpec::Drift, ModelSpec::Mean],
            strategy: Strategy::Fixed { horizon: 12 },
            ..RecommenderConfig::default()
        };
        let (rec, _) = p.pretrain_recommender(&config).expect("pretrain_recommender succeeds");
        let series = p.registry().get(&p.registry().ids()[0]).expect("key is present in the object").primary_series();
        let ens = p.auto_ensemble(&rec, &series, 2).expect("auto_ensemble succeeds");
        let forecast = ens.forecast(12).expect("forecast succeeds on a fitted model");
        assert_eq!(forecast.len(), 12);
        assert!(forecast.iter().all(|v| v.is_finite()));
    }
}
