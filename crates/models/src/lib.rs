//! Forecasting model zoo for EasyTime.
//!
//! This crate is the *method layer* of the platform (paper §II-A): a common
//! [`Forecaster`] interface plus a zoo of statistical, machine-learning, and
//! neural forecasting methods implemented from scratch in Rust. The paper's
//! zoo of 30+ (mostly PyTorch) methods is substituted by the 25 methods
//! here, chosen so that *different series characteristics favour different
//! methods* — the property the Automated Ensemble and recommendation
//! experiments depend on:
//!
//! * [`naive`] — naive, seasonal-naive, drift, mean, window average.
//! * [`smoothing`] — SES, Holt (optionally damped), Holt–Winters.
//! * [`theta`] — the Theta method.
//! * [`arima`] — AR/ARIMA with CSS fitting and AIC order selection.
//! * [`linear`] — lag ridge regression, DLinear, NLinear.
//! * [`neural`] — an MLP and an Elman RNN with manual backpropagation.
//! * [`boost`] — gradient-boosted decision stumps on lag features.
//! * [`multivariate`] — VAR for multivariate datasets.
//! * [`global`] — a corpus-pretrained zero-shot model (the stand-in for
//!   the foundation-model tier TFB's method layer supports).
//! * [`intervals`] — backtest-calibrated prediction intervals for any
//!   zoo member.
//!
//! Methods are constructed by name through [`zoo::ModelSpec`], which is what
//! config files and the benchmark knowledge base reference, mirroring TFB's
//! "integrate your method plus a configuration file" workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arima;
pub mod boost;
pub mod error;
pub mod global;
pub mod intervals;
pub mod linear;
pub mod multivariate;
pub mod naive;
pub mod neural;
pub mod optimize;
pub mod smoothing;
pub mod theta;
pub mod zoo;

pub use error::ModelError;
pub use zoo::{ModelSpec, ZooEntry};

use easytime_data::TimeSeries;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, ModelError>;

/// The common interface of every univariate forecasting method.
///
/// The contract mirrors TFB's method layer: `fit` consumes the training
/// partition, `forecast` produces point forecasts for the next `horizon`
/// steps after the end of the training data. Implementations must be
/// deterministic given their construction parameters (stochastic trainers
/// take explicit seeds).
pub trait Forecaster: Send {
    /// Canonical method name as registered in the benchmark knowledge base.
    fn name(&self) -> &str;

    /// Fits the method on a training series.
    fn fit(&mut self, train: &TimeSeries) -> Result<()>;

    /// Forecasts the next `horizon` values. Requires a prior successful
    /// [`Forecaster::fit`].
    fn forecast(&self, horizon: usize) -> Result<Vec<f64>>;

    /// Warm-starts the model with observations appended *after* the data it
    /// was last fitted on, avoiding a refit from scratch. `appended` holds
    /// only the new observations, in the same (scaled) space the model was
    /// fitted in.
    ///
    /// Returns `Ok(true)` when the model absorbed the new data and now
    /// behaves exactly as if refitted on the concatenated series, or
    /// `Ok(false)` when it cannot (the caller must rebuild and refit).
    ///
    /// Contract: an `Ok(false)` return — including the default — **must
    /// leave the model unchanged**, so callers can fall back to a refit
    /// without tearing the instance down first. Cheap-to-update families
    /// (naive, seasonal naive, drift, mean, window statistics) override
    /// this; iteratively-fitted methods (ARIMA, boosting, neural) keep the
    /// refit default.
    fn update(&mut self, appended: &TimeSeries) -> Result<bool> {
        let _ = appended;
        Ok(false)
    }

    /// Writes the next `horizon` forecast values into `out` (cleared
    /// first), reusing its capacity. The default delegates to
    /// [`Forecaster::forecast`]; warm-startable methods override it so the
    /// rolling-evaluation steady state stays allocation-free.
    fn forecast_into(&self, horizon: usize, out: &mut Vec<f64>) -> Result<()> {
        let values = self.forecast(horizon)?;
        out.clear();
        out.extend_from_slice(&values);
        Ok(())
    }

    /// Minimum training length this method needs; the pipeline reports a
    /// clear error instead of fitting on shorter series.
    fn min_train_len(&self) -> usize {
        4
    }
}

/// Validates a fitted-model forecast request, shared by implementations.
pub(crate) fn check_horizon(horizon: usize) -> Result<()> {
    if horizon == 0 {
        return Err(ModelError::InvalidParam { what: "horizon must be at least 1".into() });
    }
    Ok(())
}

/// Validates training input against a minimum length, shared by
/// implementations.
pub(crate) fn check_train(train: &TimeSeries, min_len: usize) -> Result<()> {
    if train.len() < min_len {
        return Err(ModelError::TooShort { needed: min_len, got: train.len() });
    }
    Ok(())
}
