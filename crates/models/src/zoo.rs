//! The model zoo: named construction of every registered method.
//!
//! TFB's method layer registers methods by name plus configuration; the
//! one-click pipeline, the benchmark knowledge base, the recommender, and
//! the Q&A module all refer to methods through these canonical names.
//! [`ModelSpec`] is the closed set of built-in methods; [`standard_zoo`]
//! returns the default roster used to populate the benchmark (the stand-in
//! for the paper's "30+ methods").

use crate::arima::{Ar, Arima, SeasonalArima};
use crate::boost::GradientBoost;
use crate::linear::{DLinear, LagRidge, NLinear};
use crate::naive::{
    Drift, LinearTrend, MeanForecaster, Naive, SeasonalNaive, SeasonalWindowAverage,
    WindowAverage,
};
use crate::neural::{Mlp, Rnn, TrainConfig};
use crate::smoothing::{Holt, HoltWinters, Ses};
use crate::theta::Theta;
use crate::{Forecaster, ModelError, Result};
use easytime_data::TimeSeries;

/// Transparent forecaster wrapper that counts fit/forecast calls per
/// method name and opens `models.*` spans, so the flame profile can
/// attribute model time separately from pipeline bookkeeping. Only
/// constructed by [`ModelSpec::build`] when tracing is enabled, so
/// disabled runs never pay for the extra indirection.
struct Counted {
    inner: Box<dyn Forecaster>,
}

impl Forecaster for Counted {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        let mut sp = easytime_obs::span("models.fit");
        sp.attr("method", self.inner.name());
        easytime_obs::add_labeled("models.fit", self.inner.name(), 1);
        self.inner.fit(train)
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        let _sp = easytime_obs::span("models.forecast");
        easytime_obs::add_labeled("models.forecast", self.inner.name(), 1);
        self.inner.forecast(horizon)
    }

    // Forwarded so tracing never degrades warm-start support or the
    // allocation-free forecast path to the trait defaults.
    fn update(&mut self, appended: &TimeSeries) -> Result<bool> {
        let _sp = easytime_obs::span("models.update");
        let warmed = self.inner.update(appended)?;
        if warmed {
            easytime_obs::add_labeled("models.update", self.inner.name(), 1);
        }
        Ok(warmed)
    }

    fn forecast_into(&self, horizon: usize, out: &mut Vec<f64>) -> Result<()> {
        let _sp = easytime_obs::span("models.forecast");
        easytime_obs::add_labeled("models.forecast", self.inner.name(), 1);
        self.inner.forecast_into(horizon, out)
    }

    fn min_train_len(&self) -> usize {
        self.inner.min_train_len()
    }
}

/// Method family, mirroring the paper's "statistical learning, machine
/// learning, and deep learning methods" taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Classical statistical methods.
    Statistical,
    /// Feature-based machine-learning methods.
    MachineLearning,
    /// Neural methods.
    DeepLearning,
}

impl Family {
    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Statistical => "statistical",
            Family::MachineLearning => "machine_learning",
            Family::DeepLearning => "deep_learning",
        }
    }
}

/// Declarative specification of a zoo method; the config-file-facing type.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// Last-value forecast.
    Naive,
    /// Last-cycle forecast with optional period.
    SeasonalNaive(Option<usize>),
    /// Random walk with drift.
    Drift,
    /// Grand-mean forecast.
    Mean,
    /// Mean of the trailing window.
    WindowAverage(usize),
    /// Mean of the last `cycles` same-phase values (smoothed seasonal
    /// naive).
    SeasonalAverage {
        /// Optional explicit period.
        period: Option<usize>,
        /// Cycles averaged per phase.
        cycles: usize,
    },
    /// Least-squares line extrapolation.
    LinearTrend,
    /// Simple exponential smoothing, optimized alpha when `None`.
    Ses(Option<f64>),
    /// Holt's linear trend method.
    Holt,
    /// Damped-trend Holt.
    DampedHolt,
    /// Additive Holt–Winters with optional period.
    HoltWinters(Option<usize>),
    /// Theta method with optional period.
    Theta(Option<usize>),
    /// AR with fixed order.
    Ar(usize),
    /// AR with AIC-selected order.
    ArAuto,
    /// ARIMA(p, d, q).
    Arima(usize, usize, usize),
    /// Auto-ARIMA (order selection by AIC, differencing by variance).
    ArimaAuto,
    /// Seasonal ARIMA: seasonal differencing + ARMA(p, q) core.
    Sarima {
        /// Optional explicit seasonal period.
        period: Option<usize>,
        /// AR order of the core.
        p: usize,
        /// MA order of the core.
        q: usize,
    },
    /// Ridge regression on lags.
    LagRidge {
        /// Number of lags.
        lookback: usize,
        /// Ridge penalty.
        lambda: f64,
    },
    /// Decomposition linear model.
    DLinear {
        /// Number of lags.
        lookback: usize,
        /// Moving-average kernel.
        kernel: usize,
    },
    /// Normalized linear model.
    NLinear {
        /// Number of lags.
        lookback: usize,
    },
    /// Multi-layer perceptron.
    Mlp {
        /// Number of lags.
        lookback: usize,
        /// Hidden width.
        hidden: usize,
        /// Training seed.
        seed: u64,
    },
    /// Elman recurrent network.
    Rnn {
        /// Number of lags unrolled.
        lookback: usize,
        /// Hidden width.
        hidden: usize,
        /// Training seed.
        seed: u64,
    },
    /// Gradient-boosted stumps.
    GradientBoost {
        /// Number of lag features.
        lookback: usize,
        /// Boosting rounds.
        rounds: usize,
    },
}

impl ModelSpec {
    /// Canonical method name (matches the built forecaster's `name()`).
    pub fn name(&self) -> String {
        match self {
            ModelSpec::Naive => "naive".into(),
            ModelSpec::SeasonalNaive(_) => "seasonal_naive".into(),
            ModelSpec::Drift => "drift".into(),
            ModelSpec::Mean => "mean".into(),
            ModelSpec::WindowAverage(w) => format!("window_average_{w}"),
            ModelSpec::SeasonalAverage { .. } => "seasonal_avg".into(),
            ModelSpec::LinearTrend => "linear_trend".into(),
            ModelSpec::Ses(_) => "ses".into(),
            ModelSpec::Holt => "holt".into(),
            ModelSpec::DampedHolt => "damped_holt".into(),
            ModelSpec::HoltWinters(_) => "holt_winters".into(),
            ModelSpec::Theta(_) => "theta".into(),
            ModelSpec::Ar(p) => format!("ar_{p}"),
            ModelSpec::ArAuto => "ar_auto".into(),
            ModelSpec::Arima(p, d, q) => format!("arima_{p}{d}{q}"),
            ModelSpec::ArimaAuto => "arima_auto".into(),
            ModelSpec::Sarima { .. } => "sarima".into(),
            ModelSpec::LagRidge { lookback, .. } => format!("lag_ridge_{lookback}"),
            ModelSpec::DLinear { lookback, .. } => format!("dlinear_{lookback}"),
            ModelSpec::NLinear { lookback } => format!("nlinear_{lookback}"),
            ModelSpec::Mlp { lookback, hidden, .. } => format!("mlp_{lookback}x{hidden}"),
            ModelSpec::Rnn { hidden, .. } => format!("rnn_{hidden}"),
            ModelSpec::GradientBoost { lookback, .. } => format!("gboost_{lookback}"),
        }
    }

    /// Method family for reporting and the knowledge base.
    pub fn family(&self) -> Family {
        match self {
            ModelSpec::Naive
            | ModelSpec::SeasonalNaive(_)
            | ModelSpec::Drift
            | ModelSpec::Mean
            | ModelSpec::WindowAverage(_)
            | ModelSpec::SeasonalAverage { .. }
            | ModelSpec::LinearTrend
            | ModelSpec::Ses(_)
            | ModelSpec::Holt
            | ModelSpec::DampedHolt
            | ModelSpec::HoltWinters(_)
            | ModelSpec::Theta(_)
            | ModelSpec::Ar(_)
            | ModelSpec::ArAuto
            | ModelSpec::Arima(..)
            | ModelSpec::ArimaAuto
            | ModelSpec::Sarima { .. } => Family::Statistical,
            ModelSpec::LagRidge { .. }
            | ModelSpec::DLinear { .. }
            | ModelSpec::NLinear { .. }
            | ModelSpec::GradientBoost { .. } => Family::MachineLearning,
            ModelSpec::Mlp { .. } | ModelSpec::Rnn { .. } => Family::DeepLearning,
        }
    }

    /// Builds the forecaster this spec describes.
    ///
    /// When tracing is on ([`easytime_obs::enabled`]) the forecaster is
    /// wrapped with per-method `models.fit.*` / `models.forecast.*`
    /// counters; the untraced path returns the bare model, so the hot loop
    /// pays nothing for the instrumentation.
    pub fn build(&self) -> Result<Box<dyn Forecaster>> {
        let model = self.build_bare()?;
        Ok(if easytime_obs::enabled() {
            Box::new(Counted { inner: model })
        } else {
            model
        })
    }

    fn build_bare(&self) -> Result<Box<dyn Forecaster>> {
        Ok(match self.clone() {
            ModelSpec::Naive => Box::new(Naive::new()),
            ModelSpec::SeasonalNaive(p) => Box::new(SeasonalNaive::new(p)),
            ModelSpec::Drift => Box::new(Drift::new()),
            ModelSpec::Mean => Box::new(MeanForecaster::new()),
            ModelSpec::WindowAverage(w) => Box::new(WindowAverage::new(w)?),
            ModelSpec::SeasonalAverage { period, cycles } => {
                Box::new(SeasonalWindowAverage::new(period, cycles)?)
            }
            ModelSpec::LinearTrend => Box::new(LinearTrend::new()),
            ModelSpec::Ses(alpha) => Box::new(Ses::new(alpha)?),
            ModelSpec::Holt => Box::new(Holt::new(false)),
            ModelSpec::DampedHolt => Box::new(Holt::new(true)),
            ModelSpec::HoltWinters(p) => Box::new(HoltWinters::new(p)),
            ModelSpec::Theta(p) => Box::new(Theta::new(p)),
            ModelSpec::Ar(p) => Box::new(Ar::new(p)?),
            ModelSpec::ArAuto => Box::new(Ar::auto(8)?),
            ModelSpec::Arima(p, d, q) => Box::new(Arima::new(p, d, q)?),
            ModelSpec::ArimaAuto => Box::new(Arima::auto()),
            ModelSpec::Sarima { period, p, q } => Box::new(SeasonalArima::new(period, p, q)?),
            ModelSpec::LagRidge { lookback, lambda } => Box::new(LagRidge::new(lookback, lambda)?),
            ModelSpec::DLinear { lookback, kernel } => Box::new(DLinear::new(lookback, kernel)?),
            ModelSpec::NLinear { lookback } => Box::new(NLinear::new(lookback)?),
            ModelSpec::Mlp { lookback, hidden, seed } => Box::new(Mlp::new(
                lookback,
                hidden,
                TrainConfig { seed, ..TrainConfig::default() },
            )?),
            ModelSpec::Rnn { lookback, hidden, seed } => Box::new(Rnn::new(
                lookback,
                hidden,
                TrainConfig { seed, epochs: 60, ..TrainConfig::default() },
            )?),
            ModelSpec::GradientBoost { lookback, rounds } => {
                Box::new(GradientBoost::new(lookback, rounds, 0.2)?)
            }
        })
    }

    /// Resolves a canonical method name back to its spec (default zoo
    /// parameters). Used by config files and the Q&A module.
    pub fn parse(name: &str) -> Result<ModelSpec> {
        let name = name.trim().to_ascii_lowercase();
        for entry in standard_zoo() {
            if entry.spec.name() == name {
                return Ok(entry.spec);
            }
        }
        // Parameterized names not in the standard roster.
        if let Some(rest) = name.strip_prefix("window_average_") {
            if let Ok(w) = rest.parse::<usize>() {
                return Ok(ModelSpec::WindowAverage(w));
            }
        }
        if let Some(rest) = name.strip_prefix("ar_") {
            if let Ok(p) = rest.parse::<usize>() {
                return Ok(ModelSpec::Ar(p));
            }
        }
        if let Some(rest) = name.strip_prefix("arima_") {
            let digits: Vec<usize> = rest
                .chars()
                .filter_map(|c| c.to_digit(10))
                .filter_map(|d| usize::try_from(d).ok())
                .collect();
            if digits.len() == 3 && rest.len() == 3 {
                return Ok(ModelSpec::Arima(digits[0], digits[1], digits[2]));
            }
        }
        if let Some(rest) = name.strip_prefix("lag_ridge_") {
            if let Ok(l) = rest.parse::<usize>() {
                return Ok(ModelSpec::LagRidge { lookback: l, lambda: 1e-2 });
            }
        }
        if let Some(rest) = name.strip_prefix("nlinear_") {
            if let Ok(l) = rest.parse::<usize>() {
                return Ok(ModelSpec::NLinear { lookback: l });
            }
        }
        if let Some(rest) = name.strip_prefix("dlinear_") {
            if let Ok(l) = rest.parse::<usize>() {
                return Ok(ModelSpec::DLinear { lookback: l, kernel: 25 });
            }
        }
        Err(ModelError::UnknownMethod { name })
    }
}

/// One roster entry of the default zoo.
#[derive(Debug, Clone, PartialEq)]
pub struct ZooEntry {
    /// The method spec.
    pub spec: ModelSpec,
    /// Short description shown in reports and Q&A answers.
    pub description: &'static str,
}

/// The default method roster registered in the benchmark (the stand-in for
/// the paper's 30+ methods). Ordering is stable; names are unique.
pub fn standard_zoo() -> Vec<ZooEntry> {
    vec![
        ZooEntry { spec: ModelSpec::Naive, description: "repeat the last observation" },
        ZooEntry {
            spec: ModelSpec::SeasonalNaive(None),
            description: "repeat the last seasonal cycle",
        },
        ZooEntry { spec: ModelSpec::Drift, description: "random walk with drift" },
        ZooEntry { spec: ModelSpec::Mean, description: "grand mean of the training data" },
        ZooEntry {
            spec: ModelSpec::WindowAverage(8),
            description: "mean of the last 8 observations",
        },
        ZooEntry {
            spec: ModelSpec::SeasonalAverage { period: None, cycles: 4 },
            description: "mean of the last 4 same-phase values",
        },
        ZooEntry {
            spec: ModelSpec::LinearTrend,
            description: "least-squares trend line extrapolation",
        },
        ZooEntry { spec: ModelSpec::Ses(None), description: "simple exponential smoothing" },
        ZooEntry { spec: ModelSpec::Holt, description: "Holt's linear trend method" },
        ZooEntry { spec: ModelSpec::DampedHolt, description: "damped-trend Holt" },
        ZooEntry {
            spec: ModelSpec::HoltWinters(None),
            description: "additive Holt-Winters seasonal smoothing",
        },
        ZooEntry { spec: ModelSpec::Theta(None), description: "the Theta method (M3 winner)" },
        ZooEntry { spec: ModelSpec::Ar(2), description: "autoregression of order 2" },
        ZooEntry { spec: ModelSpec::ArAuto, description: "autoregression with AIC order selection" },
        ZooEntry { spec: ModelSpec::Arima(1, 1, 1), description: "ARIMA(1,1,1)" },
        ZooEntry { spec: ModelSpec::Arima(2, 1, 0), description: "ARIMA(2,1,0)" },
        ZooEntry { spec: ModelSpec::ArimaAuto, description: "auto-ARIMA" },
        ZooEntry {
            spec: ModelSpec::Sarima { period: None, p: 1, q: 0 },
            description: "seasonal ARIMA (seasonal differencing + AR core)",
        },
        ZooEntry {
            spec: ModelSpec::LagRidge { lookback: 16, lambda: 1e-2 },
            description: "ridge regression on 16 lags",
        },
        ZooEntry {
            spec: ModelSpec::LagRidge { lookback: 32, lambda: 1e-2 },
            description: "ridge regression on 32 lags",
        },
        ZooEntry {
            spec: ModelSpec::DLinear { lookback: 32, kernel: 25 },
            description: "decomposition linear model (DLinear)",
        },
        ZooEntry {
            spec: ModelSpec::NLinear { lookback: 32 },
            description: "last-value-normalized linear model (NLinear)",
        },
        ZooEntry {
            spec: ModelSpec::GradientBoost { lookback: 12, rounds: 60 },
            description: "gradient-boosted decision stumps on lag features",
        },
        ZooEntry {
            spec: ModelSpec::Mlp { lookback: 24, hidden: 16, seed: 17 },
            description: "multi-layer perceptron on the lag window",
        },
        ZooEntry {
            spec: ModelSpec::Rnn { lookback: 16, hidden: 8, seed: 17 },
            description: "Elman recurrent network",
        },
    ]
}

/// Names of the standard zoo in roster order (test diagnostics).
#[cfg(test)]
pub(crate) fn standard_zoo_names() -> Vec<String> {
    standard_zoo().iter().map(|e| e.spec.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use easytime_data::{Frequency, TimeSeries};
    use std::collections::HashSet;

    #[test]
    fn zoo_names_are_unique_and_stable() {
        let names = standard_zoo_names();
        let set: HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len(), "duplicate zoo names");
        assert!(names.len() >= 20, "zoo should have at least 20 methods, has {}", names.len());
        assert!(names.contains(&"naive".to_string()));
        assert!(names.contains(&"theta".to_string()));
        assert!(names.contains(&"dlinear_32".to_string()));
    }

    #[test]
    fn spec_names_match_built_forecaster_names() {
        for entry in standard_zoo() {
            let model = entry.spec.build().unwrap();
            assert_eq!(model.name(), entry.spec.name(), "name mismatch for {:?}", entry.spec);
        }
    }

    #[test]
    fn parse_round_trips_roster_names() {
        for entry in standard_zoo() {
            let parsed = ModelSpec::parse(&entry.spec.name()).unwrap();
            assert_eq!(parsed.name(), entry.spec.name());
        }
        assert!(matches!(
            ModelSpec::parse("transformer_xl"),
            Err(ModelError::UnknownMethod { .. })
        ));
    }

    #[test]
    fn parse_handles_parameterized_names() {
        assert_eq!(ModelSpec::parse("ar_5").unwrap(), ModelSpec::Ar(5));
        assert_eq!(ModelSpec::parse("window_average_3").unwrap(), ModelSpec::WindowAverage(3));
        assert_eq!(ModelSpec::parse("nlinear_8").unwrap(), ModelSpec::NLinear { lookback: 8 });
        assert!(matches!(
            ModelSpec::parse("ar_x").unwrap_err(),
            ModelError::UnknownMethod { .. }
        ));
    }

    #[test]
    fn families_cover_all_three_tiers() {
        let zoo = standard_zoo();
        let fams: HashSet<_> = zoo.iter().map(|e| e.spec.family()).collect();
        assert!(fams.contains(&Family::Statistical));
        assert!(fams.contains(&Family::MachineLearning));
        assert!(fams.contains(&Family::DeepLearning));
        assert_eq!(Family::Statistical.name(), "statistical");
    }

    #[test]
    fn every_zoo_member_fits_and_forecasts_a_seasonal_series() {
        let values: Vec<f64> = (0..180)
            .map(|t| {
                20.0 + 0.05 * t as f64
                    + 5.0 * (2.0 * std::f64::consts::PI * t as f64 / 12.0).sin()
                    + 0.3 * ((t as f64 * 12.9898).sin() * 43758.5453).fract()
            })
            .collect();
        let train = TimeSeries::new("smoke", values, Frequency::Monthly).unwrap();
        for entry in standard_zoo() {
            let mut model = entry.spec.build().unwrap();
            model.fit(&train).unwrap_or_else(|e| panic!("{} failed to fit: {e}", model.name()));
            let f = model
                .forecast(12)
                .unwrap_or_else(|e| panic!("{} failed to forecast: {e}", model.name()));
            assert_eq!(f.len(), 12);
            assert!(
                f.iter().all(|v| v.is_finite()),
                "{} produced non-finite forecasts",
                model.name()
            );
        }
    }
}
