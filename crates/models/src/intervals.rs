//! Prediction intervals via backtest-calibrated residual quantiles.
//!
//! The zoo's forecasters are point forecasters (as in TFB); practitioners
//! also want uncertainty bands. This module derives them empirically, the
//! way production systems calibrate any black-box forecaster: run a short
//! rolling backtest *inside the training data*, collect per-step forecast
//! errors, and read the band offsets off the error quantiles. The approach
//! is model-agnostic — it works for every [`crate::Forecaster`] in the zoo — and
//! distribution-free.

use crate::{ModelError, ModelSpec, Result};
use easytime_data::TimeSeries;
use easytime_linalg::stats::quantile;

/// A point forecast with calibrated lower/upper bands.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalForecast {
    /// Point forecasts, one per horizon step.
    pub point: Vec<f64>,
    /// Lower band (same length).
    pub lower: Vec<f64>,
    /// Upper band (same length).
    pub upper: Vec<f64>,
    /// Nominal coverage level in `(0, 1)` (e.g. 0.8 for an 80% interval).
    pub level: f64,
}

impl IntervalForecast {
    /// Mean interval width across the horizon (test diagnostics).
    #[cfg(test)]
    pub(crate) fn mean_width(&self) -> f64 {
        if self.point.is_empty() {
            return 0.0;
        }
        self.lower
            .iter()
            .zip(&self.upper)
            .map(|(lo, hi)| hi - lo)
            .sum::<f64>()
            / self.point.len() as f64
    }

    /// Fraction of `actual` values falling inside the band.
    pub fn coverage(&self, actual: &[f64]) -> f64 {
        if actual.is_empty() {
            return f64::NAN;
        }
        let inside = actual
            .iter()
            .zip(self.lower.iter().zip(&self.upper))
            .filter(|(a, (lo, hi))| **a >= **lo && **a <= **hi)
            .count();
        inside as f64 / actual.len() as f64
    }

}

/// Produces an interval forecast for `spec` on `train`.
///
/// `backtest_windows` rolling origins inside the training data supply the
/// forecast-error sample (more windows → smoother bands, more compute).
/// Per-step error quantiles need a real sample to be trustworthy — tail
/// quantiles from a handful of points systematically undercover — so they
/// are only used once a step has 24+ samples; otherwise the pooled error
/// distribution fills in and long horizons degrade gracefully.
pub fn forecast_with_intervals(
    spec: &ModelSpec,
    train: &TimeSeries,
    horizon: usize,
    level: f64,
    backtest_windows: usize,
) -> Result<IntervalForecast> {
    if !(0.0 < level && level < 1.0) {
        return Err(ModelError::InvalidParam {
            what: format!("interval level {level} must be in (0, 1)"),
        });
    }
    if horizon == 0 {
        return Err(ModelError::InvalidParam { what: "horizon must be at least 1".into() });
    }
    let windows = backtest_windows.max(2);
    let n = train.len();

    // --- Backtest inside the training data. ---
    let mut per_step: Vec<Vec<f64>> = vec![Vec::new(); horizon];
    let mut pooled: Vec<f64> = Vec::new();
    let mut usable = 0usize;
    for w in 1..=windows {
        let origin = n.saturating_sub(w * horizon);
        if origin < 8 {
            break;
        }
        let prefix = train.slice(0, origin).map_err(ModelError::Data)?;
        let mut model = spec.build()?;
        if model.fit(&prefix).is_err() {
            continue;
        }
        let steps = horizon.min(n - origin);
        let Ok(pred) = model.forecast(steps) else { continue };
        let actual = &train.values()[origin..origin + steps];
        for (h, (p, a)) in pred.iter().zip(actual).enumerate() {
            let err = a - p;
            per_step[h].push(err);
            pooled.push(err);
        }
        usable += 1;
    }
    if usable == 0 || pooled.is_empty() {
        return Err(ModelError::TooShort {
            needed: 8 + horizon,
            got: n,
        });
    }

    // --- Final fit on the full training data. ---
    let mut model = spec.build()?;
    model.fit(train)?;
    let point = model.forecast(horizon)?;

    let q_lo = (1.0 - level) / 2.0;
    let q_hi = 1.0 - q_lo;
    let empty_pool = || ModelError::Numeric {
        what: "interval calibration produced no residuals".into(),
    };
    let pooled_lo = quantile(&pooled, q_lo).ok_or_else(empty_pool)?;
    let pooled_hi = quantile(&pooled, q_hi).ok_or_else(empty_pool)?;

    let mut lower = Vec::with_capacity(horizon);
    let mut upper = Vec::with_capacity(horizon);
    for (h, p) in point.iter().enumerate() {
        let (off_lo, off_hi) = if per_step[h].len() >= 24 {
            (
                quantile(&per_step[h], q_lo).ok_or_else(empty_pool)?,
                quantile(&per_step[h], q_hi).ok_or_else(empty_pool)?,
            )
        } else {
            (pooled_lo, pooled_hi)
        };
        lower.push(p + off_lo.min(0.0));
        upper.push(p + off_hi.max(0.0));
    }
    Ok(IntervalForecast { point, lower, upper, level })
}

#[cfg(test)]
mod tests {
    use super::*;
    use easytime_data::Frequency;
    use std::f64::consts::PI;

    fn noisy_seasonal(n: usize, sigma: f64, seed: u64) -> TimeSeries {
        let mut state = seed | 1;
        let mut noise = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 2.0 * sigma
        };
        let values: Vec<f64> = (0..n)
            .map(|t| 20.0 + 5.0 * (2.0 * PI * t as f64 / 12.0).sin() + noise())
            .collect();
        TimeSeries::new("ns", values, Frequency::Monthly).unwrap()
    }

    #[test]
    fn bands_bracket_the_point_forecast() {
        let train = noisy_seasonal(240, 1.0, 3);
        let f =
            forecast_with_intervals(&ModelSpec::SeasonalNaive(None), &train, 12, 0.8, 6).unwrap();
        assert_eq!(f.point.len(), 12);
        for h in 0..12 {
            assert!(f.lower[h] <= f.point[h], "h={h}");
            assert!(f.upper[h] >= f.point[h], "h={h}");
        }
        assert!(f.mean_width() > 0.0);
    }

    #[test]
    fn empirical_coverage_is_near_nominal() {
        // Average coverage over several independent futures should land in
        // a loose window around the nominal 80%.
        let mut coverages = Vec::new();
        for seed in [5u64, 6, 7, 8, 9, 10] {
            let full = noisy_seasonal(300, 1.5, seed);
            let train = full.slice(0, 288).unwrap();
            let actual = &full.values()[288..300];
            let f = forecast_with_intervals(&ModelSpec::SeasonalNaive(None), &train, 12, 0.8, 8)
                .unwrap();
            coverages.push(f.coverage(actual));
        }
        let mean = coverages.iter().sum::<f64>() / coverages.len() as f64;
        // Finite-sample quantile estimation plus 12-point evaluation
        // granularity biases empirical coverage a little below nominal;
        // the guard is against *gross* miscalibration (e.g. bands built on
        // the wrong scale), not exact coverage.
        assert!(
            (0.5..=1.0).contains(&mean),
            "mean coverage {mean} too far from nominal 0.8 ({coverages:?})"
        );
    }

    #[test]
    fn wider_level_means_wider_bands() {
        let train = noisy_seasonal(240, 1.0, 11);
        let narrow =
            forecast_with_intervals(&ModelSpec::Theta(None), &train, 8, 0.5, 6).unwrap();
        let wide = forecast_with_intervals(&ModelSpec::Theta(None), &train, 8, 0.95, 6).unwrap();
        assert!(
            wide.mean_width() > narrow.mean_width(),
            "95% band {} should exceed 50% band {}",
            wide.mean_width(),
            narrow.mean_width()
        );
    }

    #[test]
    fn noisier_series_get_wider_bands() {
        let quiet = noisy_seasonal(240, 0.5, 13);
        let loud = noisy_seasonal(240, 3.0, 13);
        let fq = forecast_with_intervals(&ModelSpec::SeasonalNaive(None), &quiet, 8, 0.8, 6)
            .unwrap();
        let fl =
            forecast_with_intervals(&ModelSpec::SeasonalNaive(None), &loud, 8, 0.8, 6).unwrap();
        assert!(fl.mean_width() > fq.mean_width());
    }

    #[test]
    fn validates_inputs() {
        let train = noisy_seasonal(100, 1.0, 17);
        assert!(forecast_with_intervals(&ModelSpec::Naive, &train, 0, 0.8, 4).is_err());
        assert!(forecast_with_intervals(&ModelSpec::Naive, &train, 4, 0.0, 4).is_err());
        assert!(forecast_with_intervals(&ModelSpec::Naive, &train, 4, 1.0, 4).is_err());
        // Far too short for any backtest window.
        let tiny = TimeSeries::new("t", vec![1.0; 10], Frequency::Monthly).unwrap();
        assert!(forecast_with_intervals(&ModelSpec::Naive, &tiny, 8, 0.8, 4).is_err());
    }

    #[test]
    fn coverage_helper_counts_correctly() {
        let f = IntervalForecast {
            point: vec![0.0; 4],
            lower: vec![-1.0; 4],
            upper: vec![1.0; 4],
            level: 0.8,
        };
        assert_eq!(f.coverage(&[0.0, 0.5, 2.0, -3.0]), 0.5);
        assert!(f.coverage(&[]).is_nan());
    }
}
