//! Neural forecasters with manual backpropagation.
//!
//! Stands in for the paper's deep-learning zoo tier (PatchTST, TimesNet, …)
//! with two compact, dependency-free networks sized for CPU training on
//! benchmark-scale series:
//!
//! * [`Mlp`] — a one-hidden-layer perceptron on the normalized lag window.
//! * [`Rnn`] — an Elman recurrent network unrolled over the lag window with
//!   full backpropagation through time.
//!
//! Both train with Adam on z-scored data, take explicit seeds, and forecast
//! recursively (one-step-ahead), making them horizon-agnostic like the rest
//! of the zoo.

use crate::optimize::Adam;
use crate::{check_horizon, check_train, Forecaster, ModelError, Result};
use easytime_data::TimeSeries;
use easytime_linalg::kernels::{axpy, dot, norm2};
use easytime_linalg::stats::{mean, std_dev};
use easytime_rng::StdRng;

/// Training hyper-parameters shared by the neural models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the window set.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// RNG seed for weight init and shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 120, learning_rate: 0.01, batch_size: 32, seed: 17 }
    }
}

/// Builds the z-scored training windows `(inputs, targets)`.
fn windows(values: &[f64], lookback: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let n = values.len();
    let mut xs = Vec::with_capacity(n - lookback);
    let mut ys = Vec::with_capacity(n - lookback);
    for t in lookback..n {
        xs.push(values[t - lookback..t].to_vec());
        ys.push(values[t]);
    }
    (xs, ys)
}

fn uniform_init(rng: &mut StdRng, n: usize, scale: f64) -> Vec<f64> {
    (0..n).map(|_| (rng.gen_f64() * 2.0 - 1.0) * scale).collect()
}

/// One-hidden-layer MLP forecaster (tanh activation).
#[derive(Debug, Clone)]
pub struct Mlp {
    lookback: usize,
    hidden: usize,
    config: TrainConfig,
    name: String,
    fitted: Option<MlpState>,
}

#[derive(Debug, Clone)]
struct MlpState {
    /// Hidden weights, `hidden × lookback`, row-major.
    w1: Vec<f64>,
    b1: Vec<f64>,
    /// Output weights, `hidden`.
    w2: Vec<f64>,
    b2: f64,
    /// z-score statistics fitted on training data.
    mu: f64,
    sigma: f64,
    /// Trailing raw values, newest last.
    tail: Vec<f64>,
    lookback: usize,
}

impl Mlp {
    /// Creates an MLP forecaster with the given window and hidden width.
    pub fn new(lookback: usize, hidden: usize, config: TrainConfig) -> Result<Mlp> {
        if lookback == 0 || hidden == 0 {
            return Err(ModelError::InvalidParam {
                what: "MLP needs lookback ≥ 1 and hidden ≥ 1".into(),
            });
        }
        Ok(Mlp { lookback, hidden, config, name: format!("mlp_{lookback}x{hidden}"), fitted: None })
    }

    fn forward(state: &MlpState, x: &[f64], hidden_out: &mut [f64]) -> f64 {
        let lb = state.lookback;
        for (h, ho) in hidden_out.iter_mut().enumerate() {
            let s = state.b1[h] + dot(&state.w1[h * lb..(h + 1) * lb], x);
            *ho = s.tanh();
        }
        state.b2 + dot(&state.w2, hidden_out)
    }
}

impl Forecaster for Mlp {
    fn name(&self) -> &str {
        &self.name
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        check_train(train, self.min_train_len())?;
        let raw = train.values();
        let lookback = self.lookback.min(raw.len() / 2).max(1);
        let hidden = self.hidden;

        let mu = mean(raw);
        let sigma = std_dev(raw).max(1e-9);
        let z: Vec<f64> = raw.iter().map(|v| (v - mu) / sigma).collect();
        let (xs, ys) = windows(&z, lookback);

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let scale = (1.0 / lookback as f64).sqrt();
        let mut state = MlpState {
            w1: uniform_init(&mut rng, hidden * lookback, scale),
            b1: vec![0.0; hidden],
            w2: uniform_init(&mut rng, hidden, (1.0 / hidden as f64).sqrt()),
            b2: 0.0,
            mu,
            sigma,
            tail: raw[raw.len() - lookback..].to_vec(),
            lookback,
        };

        let dim = hidden * lookback + hidden + hidden + 1;
        let mut opt = Adam::new(dim, self.config.learning_rate);
        let mut order: Vec<usize> = (0..xs.len()).collect();
        let mut hidden_buf = vec![0.0; hidden];

        for _ in 0..self.config.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(self.config.batch_size.max(1)) {
                let mut grads = vec![0.0; dim];
                for &idx in chunk {
                    let x = &xs[idx];
                    let y = ys[idx];
                    let pred = Self::forward(&state, x, &mut hidden_buf);
                    let err = pred - y; // d(0.5 e²)/d pred
                    // Output layer gradients.
                    let (gw1, rest) = grads.split_at_mut(hidden * lookback);
                    let (gb1, rest) = rest.split_at_mut(hidden);
                    let (gw2, gb2) = rest.split_at_mut(hidden);
                    gb2[0] += err;
                    axpy(err, &hidden_buf, gw2);
                    for h in 0..hidden {
                        let dh = err * state.w2[h] * (1.0 - hidden_buf[h] * hidden_buf[h]);
                        gb1[h] += dh;
                        axpy(dh, x, &mut gw1[h * lookback..(h + 1) * lookback]);
                    }
                }
                let inv = 1.0 / chunk.len() as f64;
                for g in &mut grads {
                    *g *= inv;
                }
                // Flatten parameters, step, and unflatten.
                let mut params = Vec::with_capacity(dim);
                params.extend_from_slice(&state.w1);
                params.extend_from_slice(&state.b1);
                params.extend_from_slice(&state.w2);
                params.push(state.b2);
                opt.step(&mut params, &grads);
                let (w1, rest) = params.split_at(hidden * lookback);
                let (b1, rest) = rest.split_at(hidden);
                let (w2, b2) = rest.split_at(hidden);
                state.w1.copy_from_slice(w1);
                state.b1.copy_from_slice(b1);
                state.w2.copy_from_slice(w2);
                state.b2 = b2[0];
            }
        }
        self.fitted = Some(state);
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        let st = self.fitted.as_ref().ok_or(ModelError::NotFitted)?;
        let mut hist: Vec<f64> = st.tail.iter().map(|v| (v - st.mu) / st.sigma).collect();
        let mut hidden_buf = vec![0.0; st.w2.len()];
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let x = &hist[hist.len() - st.lookback..];
            let z = Self::forward(st, x, &mut hidden_buf);
            out.push(z * st.sigma + st.mu);
            hist.push(z);
        }
        Ok(out)
    }

    fn min_train_len(&self) -> usize {
        12
    }
}

/// Elman recurrent forecaster trained with backpropagation through time.
#[derive(Debug, Clone)]
pub struct Rnn {
    lookback: usize,
    hidden: usize,
    config: TrainConfig,
    name: String,
    fitted: Option<RnnState>,
}

#[derive(Debug, Clone)]
struct RnnState {
    /// Input-to-hidden weights, `hidden`.
    wx: Vec<f64>,
    /// Hidden-to-hidden weights, `hidden × hidden`, row-major.
    wh: Vec<f64>,
    bh: Vec<f64>,
    /// Hidden-to-output weights, `hidden`.
    wo: Vec<f64>,
    bo: f64,
    mu: f64,
    sigma: f64,
    tail: Vec<f64>,
    lookback: usize,
}

impl Rnn {
    /// Creates an Elman RNN forecaster.
    pub fn new(lookback: usize, hidden: usize, config: TrainConfig) -> Result<Rnn> {
        if lookback == 0 || hidden == 0 {
            return Err(ModelError::InvalidParam {
                what: "RNN needs lookback ≥ 1 and hidden ≥ 1".into(),
            });
        }
        Ok(Rnn { lookback, hidden, config, name: format!("rnn_{hidden}"), fitted: None })
    }

    /// Forward pass over a window; returns hidden states per step and the
    /// prediction.
    fn forward(state: &RnnState, x: &[f64]) -> (Vec<Vec<f64>>, f64) {
        let hdim = state.wx.len();
        let mut hs: Vec<Vec<f64>> = Vec::with_capacity(x.len());
        let mut prev = vec![0.0; hdim];
        for &xt in x {
            let mut h = vec![0.0; hdim];
            for (j, hj) in h.iter_mut().enumerate() {
                let s = state.bh[j]
                    + state.wx[j] * xt
                    + dot(&state.wh[j * hdim..(j + 1) * hdim], &prev);
                *hj = s.tanh();
            }
            hs.push(h.clone());
            prev = h;
        }
        let y = state.bo + dot(&state.wo, &prev);
        (hs, y)
    }
}

impl Forecaster for Rnn {
    fn name(&self) -> &str {
        &self.name
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        check_train(train, self.min_train_len())?;
        let raw = train.values();
        let lookback = self.lookback.min(raw.len() / 2).max(2);
        let hdim = self.hidden;

        let mu = mean(raw);
        let sigma = std_dev(raw).max(1e-9);
        let z: Vec<f64> = raw.iter().map(|v| (v - mu) / sigma).collect();
        let (xs, ys) = windows(&z, lookback);

        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x5A5A);
        let mut state = RnnState {
            wx: uniform_init(&mut rng, hdim, 0.5),
            wh: uniform_init(&mut rng, hdim * hdim, (1.0 / hdim as f64).sqrt() * 0.5),
            bh: vec![0.0; hdim],
            wo: uniform_init(&mut rng, hdim, (1.0 / hdim as f64).sqrt()),
            bo: 0.0,
            mu,
            sigma,
            tail: raw[raw.len() - lookback..].to_vec(),
            lookback,
        };

        let dim = hdim + hdim * hdim + hdim + hdim + 1;
        let mut opt = Adam::new(dim, self.config.learning_rate);
        let mut order: Vec<usize> = (0..xs.len()).collect();

        for _ in 0..self.config.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(self.config.batch_size.max(1)) {
                let mut g_wx = vec![0.0; hdim];
                let mut g_wh = vec![0.0; hdim * hdim];
                let mut g_bh = vec![0.0; hdim];
                let mut g_wo = vec![0.0; hdim];
                let mut g_bo = 0.0;

                for &idx in chunk {
                    let x = &xs[idx];
                    let y = ys[idx];
                    let (hs, pred) = Self::forward(&state, x);
                    let err = pred - y;
                    let t_last = x.len() - 1;

                    g_bo += err;
                    axpy(err, &hs[t_last], &mut g_wo);
                    // BPTT: delta at the last step from the output layer.
                    let mut delta: Vec<f64> = (0..hdim)
                        .map(|j| err * state.wo[j] * (1.0 - hs[t_last][j] * hs[t_last][j]))
                        .collect();
                    for t in (0..=t_last).rev() {
                        let prev_h: Option<&Vec<f64>> = if t > 0 { Some(&hs[t - 1]) } else { None };
                        axpy(1.0, &delta, &mut g_bh);
                        axpy(x[t], &delta, &mut g_wx);
                        if let Some(ph) = prev_h {
                            for j in 0..hdim {
                                axpy(delta[j], ph, &mut g_wh[j * hdim..(j + 1) * hdim]);
                            }
                        }
                        if t > 0 {
                            let mut new_delta = vec![0.0; hdim];
                            for (k, nd) in new_delta.iter_mut().enumerate() {
                                let mut s = 0.0;
                                for (j, &dj) in delta.iter().enumerate() {
                                    s += dj * state.wh[j * hdim + k];
                                }
                                *nd = s * (1.0 - hs[t - 1][k] * hs[t - 1][k]);
                            }
                            delta = new_delta;
                        }
                    }
                }

                let inv = 1.0 / chunk.len() as f64;
                let mut grads = Vec::with_capacity(dim);
                grads.extend(g_wx.iter().map(|g| g * inv));
                grads.extend(g_wh.iter().map(|g| g * inv));
                grads.extend(g_bh.iter().map(|g| g * inv));
                grads.extend(g_wo.iter().map(|g| g * inv));
                grads.push(g_bo * inv);
                // Gradient clipping keeps BPTT stable on trending data.
                let norm = norm2(&grads);
                if norm > 5.0 {
                    let s = 5.0 / norm;
                    for g in &mut grads {
                        *g *= s;
                    }
                }

                let mut params = Vec::with_capacity(dim);
                params.extend_from_slice(&state.wx);
                params.extend_from_slice(&state.wh);
                params.extend_from_slice(&state.bh);
                params.extend_from_slice(&state.wo);
                params.push(state.bo);
                opt.step(&mut params, &grads);
                let (wx, rest) = params.split_at(hdim);
                let (wh, rest) = rest.split_at(hdim * hdim);
                let (bh, rest) = rest.split_at(hdim);
                let (wo, bo) = rest.split_at(hdim);
                state.wx.copy_from_slice(wx);
                state.wh.copy_from_slice(wh);
                state.bh.copy_from_slice(bh);
                state.wo.copy_from_slice(wo);
                state.bo = bo[0];
            }
        }
        self.fitted = Some(state);
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        let st = self.fitted.as_ref().ok_or(ModelError::NotFitted)?;
        let mut hist: Vec<f64> = st.tail.iter().map(|v| (v - st.mu) / st.sigma).collect();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let x = &hist[hist.len() - st.lookback..];
            let (_, z) = Self::forward(st, x);
            out.push(z * st.sigma + st.mu);
            hist.push(z);
        }
        Ok(out)
    }

    fn min_train_len(&self) -> usize {
        16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easytime_data::Frequency;
    use std::f64::consts::PI;

    fn ts(values: Vec<f64>) -> TimeSeries {
        TimeSeries::new("t", values, Frequency::Unknown).unwrap()
    }

    fn quick_config() -> TrainConfig {
        TrainConfig { epochs: 60, learning_rate: 0.02, batch_size: 16, seed: 7 }
    }

    #[test]
    fn mlp_learns_sine_wave() {
        let values: Vec<f64> =
            (0..200).map(|t| (2.0 * PI * t as f64 / 12.0).sin() * 4.0 + 10.0).collect();
        let mut m = Mlp::new(12, 8, quick_config()).unwrap();
        m.fit(&ts(values)).unwrap();
        let f = m.forecast(12).unwrap();
        let mut err = 0.0;
        for (h, v) in f.iter().enumerate() {
            let t = 200 + h;
            let expected = (2.0 * PI * t as f64 / 12.0).sin() * 4.0 + 10.0;
            err += (v - expected).abs();
        }
        assert!(err / 12.0 < 1.5, "mean abs error {}", err / 12.0);
    }

    #[test]
    fn mlp_is_deterministic_given_seed() {
        let values: Vec<f64> = (0..100).map(|t| (t as f64 * 0.2).sin()).collect();
        let mut a = Mlp::new(8, 4, quick_config()).unwrap();
        a.fit(&ts(values.clone())).unwrap();
        let mut b = Mlp::new(8, 4, quick_config()).unwrap();
        b.fit(&ts(values)).unwrap();
        assert_eq!(a.forecast(5).unwrap(), b.forecast(5).unwrap());
    }

    #[test]
    fn rnn_learns_short_memory_pattern() {
        // Alternating pattern: next value depends on the previous one.
        let values: Vec<f64> =
            (0..160).map(|t| if t % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let mut m = Rnn::new(8, 6, quick_config()).unwrap();
        m.fit(&ts(values)).unwrap();
        let f = m.forecast(4).unwrap();
        // Last train value is at t=159 (odd → −1), so forecasts alternate
        // starting with +1.
        assert!(f[0] > 0.2, "f[0]={}", f[0]);
        assert!(f[1] < -0.2, "f[1]={}", f[1]);
    }

    #[test]
    fn rnn_is_deterministic_given_seed() {
        let values: Vec<f64> = (0..80).map(|t| (t as f64 * 0.3).cos()).collect();
        let mut a = Rnn::new(6, 4, quick_config()).unwrap();
        a.fit(&ts(values.clone())).unwrap();
        let mut b = Rnn::new(6, 4, quick_config()).unwrap();
        b.fit(&ts(values)).unwrap();
        assert_eq!(a.forecast(3).unwrap(), b.forecast(3).unwrap());
    }

    #[test]
    fn constructors_validate() {
        assert!(Mlp::new(0, 4, TrainConfig::default()).is_err());
        assert!(Mlp::new(4, 0, TrainConfig::default()).is_err());
        assert!(Rnn::new(0, 4, TrainConfig::default()).is_err());
        assert!(Rnn::new(4, 0, TrainConfig::default()).is_err());
    }

    #[test]
    fn unfitted_errors_and_min_lengths() {
        assert!(matches!(
            Mlp::new(4, 4, TrainConfig::default()).unwrap().forecast(1),
            Err(ModelError::NotFitted)
        ));
        assert!(matches!(
            Rnn::new(4, 4, TrainConfig::default()).unwrap().forecast(1),
            Err(ModelError::NotFitted)
        ));
        let mut m = Mlp::new(4, 4, TrainConfig::default()).unwrap();
        assert!(matches!(m.fit(&ts(vec![1.0; 5])), Err(ModelError::TooShort { .. })));
    }

    #[test]
    fn forecasts_are_finite_on_trending_data() {
        let values: Vec<f64> = (0..120).map(|t| t as f64 * 0.5).collect();
        let mut m = Rnn::new(8, 4, quick_config()).unwrap();
        m.fit(&ts(values)).unwrap();
        assert!(m.forecast(24).unwrap().iter().all(|v| v.is_finite()));
    }
}
