//! The Theta method (Assimakopoulos & Nikolopoulos), the M3 competition
//! winner and a strong statistical baseline in TFB.
//!
//! Implementation follows the standard decomposition-based formulation:
//! deseasonalize (additively) when a seasonal period is available, combine
//! the theta-0 line (linear trend) with the theta-2 line (SES on the
//! double-curvature series), then reseasonalize.

use crate::smoothing::Ses;
use crate::{check_horizon, check_train, Forecaster, ModelError, Result};
use easytime_data::decompose::decompose_values;
use easytime_data::TimeSeries;
use easytime_linalg::stats::linear_trend;

/// Theta forecaster with optional explicit seasonal period.
#[derive(Debug, Clone)]
pub struct Theta {
    period: Option<usize>,
    fitted: Option<ThetaState>,
}

#[derive(Debug, Clone)]
struct ThetaState {
    /// Intercept of the theta-0 (trend) line.
    intercept: f64,
    /// Slope of the theta-0 line.
    slope: f64,
    /// SES level of the theta-2 line.
    ses_level: f64,
    /// Length of the training series (trend extrapolation origin).
    n: usize,
    /// Seasonal profile aligned to forecast steps (empty when none).
    seasonal: Vec<f64>,
}

impl Theta {
    /// Creates a Theta forecaster; `period` of `None` uses the frequency
    /// default (falling back to non-seasonal Theta).
    pub fn new(period: Option<usize>) -> Theta {
        Theta { period, fitted: None }
    }
}

impl Forecaster for Theta {
    fn name(&self) -> &str {
        "theta"
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        check_train(train, self.min_train_len())?;
        let v = train.values();
        let n = v.len();

        // Additive deseasonalization when a period is usable.
        let period = self
            .period
            .or_else(|| train.frequency().default_period())
            .filter(|&p| p >= 2 && n >= 2 * p)
            .unwrap_or(0);
        let (work, seasonal): (Vec<f64>, Vec<f64>) = if period >= 2 {
            let d = decompose_values(v, period);
            let deseason: Vec<f64> = v.iter().zip(&d.seasonal).map(|(x, s)| x - s).collect();
            // Seasonal profile for forecast steps h = 1.. (phase-aligned).
            let profile: Vec<f64> = (0..period).map(|h| d.seasonal[(n + h) % period]).collect();
            (deseason, profile)
        } else {
            (v.to_vec(), Vec::new())
        };

        // Theta-0 line: linear regression on time.
        let (intercept, slope) = linear_trend(&work);

        // Theta-2 line: 2 * work - theta0, smoothed by SES.
        let theta2: Vec<f64> = work
            .iter()
            .enumerate()
            .map(|(t, &x)| 2.0 * x - (intercept + slope * t as f64))
            .collect();
        let theta2_series = train.with_values(theta2).map_err(ModelError::Data)?;
        let mut ses = Ses::new(None)?;
        ses.fit(&theta2_series)?;
        let ses_level = ses.forecast(1)?[0];

        self.fitted = Some(ThetaState { intercept, slope, ses_level, n, seasonal });
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        let st = self.fitted.as_ref().ok_or(ModelError::NotFitted)?;
        let mut out = Vec::with_capacity(horizon);
        for h in 0..horizon {
            let t = (st.n + h) as f64;
            let theta0 = st.intercept + st.slope * t;
            // Equal-weight combination of the theta-0 and theta-2 forecasts.
            let mut v = 0.5 * theta0 + 0.5 * st.ses_level;
            if !st.seasonal.is_empty() {
                v += st.seasonal[h % st.seasonal.len()];
            }
            out.push(v);
        }
        Ok(out)
    }

    fn min_train_len(&self) -> usize {
        5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easytime_data::Frequency;
    use std::f64::consts::PI;

    #[test]
    fn theta_tracks_trend_at_half_strength_or_better() {
        let values: Vec<f64> = (0..80).map(|t| 3.0 + 0.4 * t as f64).collect();
        let ts = TimeSeries::new("t", values, Frequency::Unknown).unwrap();
        let mut m = Theta::new(None);
        m.fit(&ts).unwrap();
        let f = m.forecast(4).unwrap();
        // On a pure line, theta-2 ≈ the line too, so forecasts stay close.
        for (h, v) in f.iter().enumerate() {
            let expected = 3.0 + 0.4 * (80 + h) as f64;
            assert!((v - expected).abs() < 2.0, "h={h}: {v} vs {expected}");
        }
    }

    #[test]
    fn theta_reseasonalizes() {
        let values: Vec<f64> = (0..120)
            .map(|t| 20.0 + 5.0 * (2.0 * PI * t as f64 / 12.0).sin())
            .collect();
        let ts = TimeSeries::new("t", values, Frequency::Monthly).unwrap();
        let mut m = Theta::new(None);
        m.fit(&ts).unwrap();
        let f = m.forecast(12).unwrap();
        for (h, v) in f.iter().enumerate() {
            let t = 120 + h;
            let expected = 20.0 + 5.0 * (2.0 * PI * t as f64 / 12.0).sin();
            assert!((v - expected).abs() < 1.0, "h={h}: {v} vs {expected}");
        }
    }

    #[test]
    fn theta_works_without_period() {
        let values: Vec<f64> = (0..40).map(|t| (t as f64 * 0.3).cos() * 2.0 + 9.0).collect();
        let ts = TimeSeries::new("t", values, Frequency::Unknown).unwrap();
        let mut m = Theta::new(None);
        m.fit(&ts).unwrap();
        let f = m.forecast(3).unwrap();
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn theta_errors_before_fit_and_on_short_series() {
        assert!(matches!(Theta::new(None).forecast(1), Err(ModelError::NotFitted)));
        let short = TimeSeries::new("s", vec![1.0, 2.0], Frequency::Unknown).unwrap();
        assert!(matches!(Theta::new(None).fit(&short), Err(ModelError::TooShort { .. })));
    }
}
