//! Exponential-smoothing family: SES, Holt, and Holt–Winters.
//!
//! Parameters are either fixed at construction or optimized by minimizing
//! the sum of squared one-step-ahead errors (grid initialization +
//! Nelder–Mead refinement), the standard ETS fitting approach.

use crate::optimize::{grid_search, nelder_mead};
use crate::{check_horizon, check_train, Forecaster, ModelError, Result};
use easytime_data::TimeSeries;
use easytime_linalg::stats::mean;

fn clamp01(x: f64) -> f64 {
    x.clamp(1e-4, 1.0 - 1e-4)
}

/// Simple exponential smoothing (constant level).
#[derive(Debug, Clone)]
pub struct Ses {
    alpha: Option<f64>,
    fitted: Option<SesState>,
}

#[derive(Debug, Clone, Copy)]
struct SesState {
    level: f64,
}

impl Ses {
    /// Creates SES; `alpha` in `(0, 1)` or `None` to optimize it.
    pub fn new(alpha: Option<f64>) -> Result<Ses> {
        if let Some(a) = alpha {
            if !(0.0 < a && a < 1.0) {
                return Err(ModelError::InvalidParam { what: format!("alpha {a} not in (0,1)") });
            }
        }
        Ok(Ses { alpha, fitted: None })
    }

    fn sse(values: &[f64], alpha: f64) -> f64 {
        let mut level = values[0];
        let mut sse = 0.0;
        for &y in &values[1..] {
            let err = y - level;
            sse += err * err;
            level += alpha * err;
        }
        sse
    }
}

impl Forecaster for Ses {
    fn name(&self) -> &str {
        "ses"
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        check_train(train, self.min_train_len())?;
        let v = train.values();
        let alpha = match self.alpha {
            Some(a) => a,
            None => {
                let axes = vec![(1..20).map(|i| i as f64 / 20.0).collect::<Vec<_>>()];
                let start = grid_search(&axes, |p| Self::sse(v, clamp01(p[0])))
                    .map(|(p, _)| p[0])
                    .unwrap_or(0.3);
                let (p, _) = nelder_mead(&[start], 0.05, 100, |p| Self::sse(v, clamp01(p[0])));
                clamp01(p[0])
            }
        };
        let mut level = v[0];
        for &y in &v[1..] {
            level += alpha * (y - level);
        }
        self.fitted = Some(SesState { level });
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        let st = self.fitted.ok_or(ModelError::NotFitted)?;
        Ok(vec![st.level; horizon])
    }

    fn min_train_len(&self) -> usize {
        3
    }
}

/// Holt's linear method (level + trend), optionally damped.
#[derive(Debug, Clone)]
pub struct Holt {
    damped: bool,
    fitted: Option<HoltState>,
}

#[derive(Debug, Clone, Copy)]
struct HoltState {
    level: f64,
    trend: f64,
    phi: f64,
}

impl Holt {
    /// Creates Holt's method; `damped` enables trend damping.
    pub fn new(damped: bool) -> Holt {
        Holt { damped, fitted: None }
    }

    fn sse(values: &[f64], alpha: f64, beta: f64, phi: f64) -> f64 {
        let mut level = values[0];
        let mut trend = values[1] - values[0];
        let mut sse = 0.0;
        for &y in &values[1..] {
            let pred = level + phi * trend;
            let err = y - pred;
            sse += err * err;
            let new_level = pred + alpha * err;
            trend = phi * trend + alpha * beta * err;
            level = new_level;
        }
        sse
    }
}

impl Forecaster for Holt {
    fn name(&self) -> &str {
        if self.damped {
            "damped_holt"
        } else {
            "holt"
        }
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        check_train(train, self.min_train_len())?;
        let v = train.values();
        let phi_fixed = if self.damped { None } else { Some(1.0) };

        let grid: Vec<f64> = (1..10).map(|i| i as f64 / 10.0).collect();
        let axes = if self.damped {
            vec![grid.clone(), grid.clone(), vec![0.8, 0.9, 0.98]]
        } else {
            vec![grid.clone(), grid]
        };
        let eval = |p: &[f64]| {
            let phi = phi_fixed.unwrap_or_else(|| clamp01(p[2]));
            Self::sse(v, clamp01(p[0]), clamp01(p[1]), phi)
        };
        let start = grid_search(&axes, eval).map(|(p, _)| p).unwrap_or_else(|| {
            if self.damped {
                vec![0.3, 0.1, 0.9]
            } else {
                vec![0.3, 0.1]
            }
        });
        let (p, _) = nelder_mead(&start, 0.05, 200, eval);
        let alpha = clamp01(p[0]);
        let beta = clamp01(p[1]);
        let phi = phi_fixed.unwrap_or_else(|| clamp01(p[2]));

        let mut level = v[0];
        let mut trend = v[1] - v[0];
        for &y in &v[1..] {
            let pred = level + phi * trend;
            let err = y - pred;
            let new_level = pred + alpha * err;
            trend = phi * trend + alpha * beta * err;
            level = new_level;
        }
        self.fitted = Some(HoltState { level, trend, phi });
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        let st = self.fitted.ok_or(ModelError::NotFitted)?;
        let mut out = Vec::with_capacity(horizon);
        let mut damp_sum = 0.0;
        for h in 1..=horizon {
            // lint: allow(lossy-cast) — forecast horizons are tiny
            // (hundreds at most), far below i32::MAX.
            damp_sum += st.phi.powi(h as i32);
            out.push(st.level + damp_sum * st.trend);
        }
        Ok(out)
    }

    fn min_train_len(&self) -> usize {
        5
    }
}

/// Additive Holt–Winters (level + trend + seasonal).
#[derive(Debug, Clone)]
pub struct HoltWinters {
    period: Option<usize>,
    fitted: Option<HwState>,
}

#[derive(Debug, Clone)]
struct HwState {
    level: f64,
    trend: f64,
    seasonal: Vec<f64>,
}

impl HoltWinters {
    /// Creates additive Holt–Winters with an optional explicit period.
    pub fn new(period: Option<usize>) -> HoltWinters {
        HoltWinters { period, fitted: None }
    }

    fn effective_period(&self, train: &TimeSeries) -> Result<usize> {
        let p = self
            .period
            .or_else(|| train.frequency().default_period())
            .ok_or_else(|| ModelError::InvalidParam {
                what: "holt_winters needs a seasonal period (explicit or via frequency)".into(),
            })?;
        if p < 2 {
            return Err(ModelError::InvalidParam { what: format!("period {p} must be ≥ 2") });
        }
        Ok(p)
    }

    /// Runs the smoothing recursion; returns SSE and final state.
    fn run(values: &[f64], period: usize, alpha: f64, beta: f64, gamma: f64) -> (f64, HwState) {
        // Initialization: first-cycle mean level, averaged first differences
        // across the first two cycles for trend, first-cycle deviations for
        // seasonals.
        let level0 = mean(&values[..period]);
        let trend0 = if values.len() >= 2 * period {
            (mean(&values[period..2 * period]) - level0) / period as f64
        } else {
            0.0
        };
        let mut seasonal: Vec<f64> = values[..period].iter().map(|v| v - level0).collect();
        let mut level = level0;
        let mut trend = trend0;
        let mut sse = 0.0;

        for (t, &y) in values.iter().enumerate().skip(period) {
            let s = seasonal[t % period];
            let pred = level + trend + s;
            let err = y - pred;
            sse += err * err;
            let new_level = alpha * (y - s) + (1.0 - alpha) * (level + trend);
            let new_trend = beta * (new_level - level) + (1.0 - beta) * trend;
            seasonal[t % period] = gamma * (y - new_level) + (1.0 - gamma) * s;
            level = new_level;
            trend = new_trend;
        }
        (sse, HwState { level, trend, seasonal })
    }
}

impl Forecaster for HoltWinters {
    fn name(&self) -> &str {
        "holt_winters"
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        let period = self.effective_period(train)?;
        check_train(train, 2 * period + 1)?;
        let v = train.values();

        let grid: Vec<f64> = vec![0.05, 0.1, 0.3, 0.5, 0.7];
        let axes = vec![grid.clone(), grid.clone(), grid];
        let eval = |p: &[f64]| {
            Self::run(v, period, clamp01(p[0]), clamp01(p[1]), clamp01(p[2])).0
        };
        let start = grid_search(&axes, eval).map(|(p, _)| p).unwrap_or(vec![0.3, 0.1, 0.1]);
        let (p, _) = nelder_mead(&start, 0.05, 200, eval);
        let (_, state) = Self::run(v, period, clamp01(p[0]), clamp01(p[1]), clamp01(p[2]));
        // The seasonal state is phase-aligned to the *next* time step.
        let mut rotated = vec![0.0; period];
        let n = v.len();
        for (h, r) in rotated.iter_mut().enumerate() {
            *r = state.seasonal[(n + h) % period];
        }
        self.fitted = Some(HwState { level: state.level, trend: state.trend, seasonal: rotated });
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        let st = self.fitted.as_ref().ok_or(ModelError::NotFitted)?;
        let p = st.seasonal.len();
        Ok((0..horizon)
            .map(|h| st.level + (h + 1) as f64 * st.trend + st.seasonal[h % p])
            .collect())
    }

    fn min_train_len(&self) -> usize {
        // Conservative default (period is only known at fit time).
        9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easytime_data::Frequency;
    use std::f64::consts::PI;

    fn ts(values: Vec<f64>) -> TimeSeries {
        TimeSeries::new("t", values, Frequency::Monthly).unwrap()
    }

    #[test]
    fn ses_on_constant_series_predicts_constant() {
        let mut m = Ses::new(Some(0.5)).unwrap();
        m.fit(&ts(vec![5.0; 30])).unwrap();
        let f = m.forecast(4).unwrap();
        for v in f {
            assert!((v - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ses_rejects_bad_alpha() {
        assert!(Ses::new(Some(0.0)).is_err());
        assert!(Ses::new(Some(1.0)).is_err());
        assert!(Ses::new(Some(-0.2)).is_err());
    }

    #[test]
    fn ses_optimizes_alpha_for_noisy_level() {
        // Level series with a late shift: optimized SES should track toward
        // the post-shift level.
        let mut values = vec![10.0; 40];
        values.extend(vec![20.0; 40]);
        let mut m = Ses::new(None).unwrap();
        m.fit(&ts(values)).unwrap();
        let f = m.forecast(1).unwrap()[0];
        assert!(f > 17.0, "forecast {f} should be near the recent level");
    }

    #[test]
    fn holt_tracks_linear_trend() {
        let values: Vec<f64> = (0..60).map(|t| 2.0 + 0.5 * t as f64).collect();
        let mut m = Holt::new(false);
        m.fit(&ts(values)).unwrap();
        let f = m.forecast(5).unwrap();
        for (h, v) in f.iter().enumerate() {
            let expected = 2.0 + 0.5 * (60 + h) as f64;
            assert!((v - expected).abs() < 0.2, "h={h}: {v} vs {expected}");
        }
    }

    #[test]
    fn damped_holt_flattens_far_horizon() {
        let values: Vec<f64> = (0..60).map(|t| 2.0 + 0.5 * t as f64).collect();
        let mut damped = Holt::new(true);
        damped.fit(&ts(values.clone())).unwrap();
        let mut plain = Holt::new(false);
        plain.fit(&ts(values)).unwrap();
        let fd = damped.forecast(100).unwrap();
        let fp = plain.forecast(100).unwrap();
        // Damping must not *increase* the far-horizon extrapolation.
        assert!(fd[99] <= fp[99] + 1e-6, "damped {} vs plain {}", fd[99], fp[99]);
        assert_eq!(damped.name(), "damped_holt");
        assert_eq!(plain.name(), "holt");
    }

    #[test]
    fn holt_winters_fits_seasonal_with_trend() {
        let values: Vec<f64> = (0..96)
            .map(|t| 10.0 + 0.2 * t as f64 + 6.0 * (2.0 * PI * t as f64 / 12.0).sin())
            .collect();
        let mut m = HoltWinters::new(Some(12));
        m.fit(&ts(values)).unwrap();
        let f = m.forecast(12).unwrap();
        for (h, v) in f.iter().enumerate() {
            let t = 96 + h;
            let expected = 10.0 + 0.2 * t as f64 + 6.0 * (2.0 * PI * t as f64 / 12.0).sin();
            assert!((v - expected).abs() < 1.5, "h={h}: {v} vs {expected}");
        }
    }

    #[test]
    fn holt_winters_needs_two_cycles() {
        let mut m = HoltWinters::new(Some(12));
        assert!(matches!(
            m.fit(&ts((0..20).map(|t| t as f64).collect())),
            Err(ModelError::TooShort { .. })
        ));
    }

    #[test]
    fn holt_winters_requires_some_period() {
        let values: Vec<f64> = (0..50).map(|t| t as f64).collect();
        let series = TimeSeries::new("u", values, Frequency::Unknown).unwrap();
        let mut m = HoltWinters::new(None);
        assert!(matches!(m.fit(&series), Err(ModelError::InvalidParam { .. })));
        assert!(matches!(HoltWinters::new(Some(1)).fit(&series), Err(ModelError::InvalidParam { .. })));
    }

    #[test]
    fn unfitted_forecasts_error() {
        assert!(matches!(Ses::new(None).unwrap().forecast(1), Err(ModelError::NotFitted)));
        assert!(matches!(Holt::new(false).forecast(1), Err(ModelError::NotFitted)));
        assert!(matches!(HoltWinters::new(Some(4)).forecast(1), Err(ModelError::NotFitted)));
    }
}
