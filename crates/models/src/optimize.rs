//! Small optimizers used by the statistical model fits.
//!
//! * [`grid_search`] — coarse deterministic search over parameter grids,
//!   used to initialize smoothing-parameter fits.
//! * [`nelder_mead`] — derivative-free simplex refinement for continuous
//!   objectives (SSE of one-step-ahead errors in SES/Holt/Holt–Winters and
//!   the ARMA CSS objective).
//! * [`Adam`] — the stochastic-gradient optimizer used by the neural models
//!   and the AutoML classifier.

/// Exhaustively evaluates `objective` on the cartesian grid and returns the
/// best point. `axes` holds the candidate values per dimension.
///
/// Returns `None` when the grid is empty or every objective value is
/// non-finite.
pub(crate) fn grid_search(
    axes: &[Vec<f64>],
    mut objective: impl FnMut(&[f64]) -> f64,
) -> Option<(Vec<f64>, f64)> {
    if axes.is_empty() || axes.iter().any(Vec::is_empty) {
        return None;
    }
    let mut idx = vec![0usize; axes.len()];
    let mut point = vec![0.0; axes.len()];
    let mut best: Option<(Vec<f64>, f64)> = None;
    loop {
        for (d, &i) in idx.iter().enumerate() {
            point[d] = axes[d][i];
        }
        let val = objective(&point);
        if val.is_finite() && best.as_ref().map_or(true, |(_, b)| val < *b) {
            best = Some((point.clone(), val));
        }
        // Odometer increment.
        let mut d = 0;
        loop {
            idx[d] += 1;
            if idx[d] < axes[d].len() {
                break;
            }
            idx[d] = 0;
            d += 1;
            if d == axes.len() {
                return best;
            }
        }
    }
}

/// Nelder–Mead simplex minimization.
///
/// Starts from `x0` with per-coordinate step `step`, runs at most
/// `max_iter` iterations, and returns the best point found with its
/// objective value. Deterministic; suitable for the low-dimensional
/// smoothing/ARMA objectives in this crate.
pub(crate) fn nelder_mead(
    x0: &[f64],
    step: f64,
    max_iter: usize,
    mut objective: impl FnMut(&[f64]) -> f64,
) -> (Vec<f64>, f64) {
    let n = x0.len();
    if n == 0 {
        return (Vec::new(), objective(&[]));
    }
    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);

    // Initial simplex: x0 plus one perturbed vertex per dimension.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let f0 = objective(x0);
    simplex.push((x0.to_vec(), f0));
    for d in 0..n {
        let mut v = x0.to_vec();
        v[d] += step;
        let fv = objective(&v);
        simplex.push((v, fv));
    }

    let finite = |v: f64| if v.is_finite() { v } else { f64::INFINITY };

    for _ in 0..max_iter {
        simplex.sort_by(|a, b| finite(a.1).total_cmp(&finite(b.1)));
        let best = simplex[0].1;
        let worst = simplex[n].1;
        if (finite(worst) - finite(best)).abs() < 1e-12 {
            break;
        }

        // Centroid of all but the worst vertex: one contiguous axpy per
        // vertex with the reciprocal hoisted out of the inner loop.
        let inv_n = 1.0 / n as f64;
        let mut centroid = vec![0.0; n];
        for (v, _) in simplex.iter().take(n) {
            easytime_linalg::kernels::axpy(inv_n, v, &mut centroid);
        }

        let reflect: Vec<f64> = centroid
            .iter()
            .zip(&simplex[n].0)
            .map(|(c, w)| c + alpha * (c - w))
            .collect();
        let fr = finite(objective(&reflect));

        if fr < finite(simplex[0].1) {
            // Try expanding further.
            let expand: Vec<f64> = centroid
                .iter()
                .zip(&reflect)
                .map(|(c, r)| c + gamma * (r - c))
                .collect();
            let fe = finite(objective(&expand));
            simplex[n] = if fe < fr { (expand, fe) } else { (reflect, fr) };
        } else if fr < finite(simplex[n - 1].1) {
            simplex[n] = (reflect, fr);
        } else {
            // Contract towards the centroid.
            let contract: Vec<f64> = centroid
                .iter()
                .zip(&simplex[n].0)
                .map(|(c, w)| c + rho * (w - c))
                .collect();
            let fc = finite(objective(&contract));
            if fc < finite(simplex[n].1) {
                simplex[n] = (contract, fc);
            } else {
                // Shrink everything towards the best vertex.
                let best_v = simplex[0].0.clone();
                for vertex in simplex.iter_mut().skip(1) {
                    for (x, &b) in vertex.0.iter_mut().zip(&best_v) {
                        *x = b + sigma * (*x - b);
                    }
                    vertex.1 = objective(&vertex.0);
                }
            }
        }
    }
    simplex.sort_by(|a, b| finite(a.1).total_cmp(&finite(b.1)));
    simplex.swap_remove(0)
}

/// Adam optimizer state for a flat parameter vector.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates an Adam optimizer for `dim` parameters with learning rate `lr`.
    pub fn new(dim: usize, lr: f64) -> Adam {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, m: vec![0.0; dim], v: vec![0.0; dim], t: 0 }
    }

    /// Applies one update step: `params -= lr * m̂ / (√v̂ + ε)`.
    ///
    /// # Panics
    /// Panics if `params`/`grads` lengths differ from the construction `dim`.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "Adam: parameter dim mismatch");
        assert_eq!(grads.len(), self.m.len(), "Adam: gradient dim mismatch");
        self.t += 1;
        // lint: allow(lossy-cast) — the step counter counts optimizer
        // updates within one training run, far below i32::MAX.
        let t = self.t as i32;
        let b1t = 1.0 - self.beta1.powi(t);
        let b2t = 1.0 - self.beta2.powi(t);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_search_finds_minimum_cell() {
        let axes = vec![vec![-1.0, 0.0, 1.0, 2.0], vec![-2.0, 0.5, 3.0]];
        let (best, val) =
            grid_search(&axes, |p| (p[0] - 1.0).powi(2) + (p[1] - 0.5).powi(2)).unwrap();
        assert_eq!(best, vec![1.0, 0.5]);
        assert_eq!(val, 0.0);
    }

    #[test]
    fn grid_search_ignores_non_finite_cells() {
        let axes = vec![vec![0.0, 1.0]];
        let (best, _) =
            grid_search(&axes, |p| if p[0] == 0.0 { f64::NAN } else { 5.0 }).unwrap();
        assert_eq!(best, vec![1.0]);
        assert!(grid_search(&[], |_| 0.0).is_none());
        assert!(grid_search(&[vec![]], |_| 0.0).is_none());
    }

    #[test]
    fn nelder_mead_minimizes_quadratic() {
        let (x, f) = nelder_mead(&[5.0, -3.0], 0.5, 500, |p| {
            (p[0] - 1.0).powi(2) + 10.0 * (p[1] - 2.0).powi(2)
        });
        assert!(f < 1e-8, "objective {f}");
        assert!((x[0] - 1.0).abs() < 1e-3);
        assert!((x[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn nelder_mead_minimizes_rosenbrock() {
        let (x, f) = nelder_mead(&[-1.2, 1.0], 0.5, 2000, |p| {
            (1.0 - p[0]).powi(2) + 100.0 * (p[1] - p[0] * p[0]).powi(2)
        });
        assert!(f < 1e-4, "objective {f} at {x:?}");
    }

    #[test]
    fn nelder_mead_survives_nan_regions() {
        // NaN outside the unit box; the optimum on the boundary region is
        // still found.
        let (x, f) = nelder_mead(&[0.5], 0.1, 200, |p| {
            if p[0].abs() > 1.0 {
                f64::NAN
            } else {
                (p[0] - 0.3).powi(2)
            }
        });
        assert!(f < 1e-6);
        assert!((x[0] - 0.3).abs() < 1e-2);
    }

    #[test]
    fn adam_converges_on_convex_problem() {
        let mut params = vec![4.0, -7.0];
        let mut opt = Adam::new(2, 0.1);
        for _ in 0..2000 {
            let grads = vec![2.0 * (params[0] - 1.0), 2.0 * (params[1] + 2.0)];
            opt.step(&mut params, &grads);
        }
        assert!((params[0] - 1.0).abs() < 1e-3, "{params:?}");
        assert!((params[1] + 2.0).abs() < 1e-3, "{params:?}");
    }
}
