//! Error type for the model zoo.

use easytime_data::DataError;
use std::fmt;

/// Errors produced while fitting or forecasting.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// `forecast` was called before a successful `fit`.
    NotFitted,
    /// The training series is shorter than the method's minimum.
    TooShort {
        /// Minimum number of observations required.
        needed: usize,
        /// Observations actually provided.
        got: usize,
    },
    /// A construction or call parameter is invalid.
    InvalidParam {
        /// Human-readable description.
        what: String,
    },
    /// A numerical routine failed (singular system, divergence, …).
    Numeric {
        /// Human-readable description.
        what: String,
    },
    /// The method name is not registered in the zoo.
    UnknownMethod {
        /// The name that failed to resolve.
        name: String,
    },
    /// An underlying data-layer error.
    Data(DataError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NotFitted => write!(f, "model must be fitted before forecasting"),
            ModelError::TooShort { needed, got } => {
                write!(f, "training series too short: need {needed}, got {got}")
            }
            ModelError::InvalidParam { what } => write!(f, "invalid parameter: {what}"),
            ModelError::Numeric { what } => write!(f, "numerical failure: {what}"),
            ModelError::UnknownMethod { name } => write!(f, "unknown method '{name}'"),
            ModelError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for ModelError {
    fn from(e: DataError) -> Self {
        ModelError::Data(e)
    }
}
