//! Autoregressive models: AR(p) and ARIMA(p, d, q).
//!
//! AR coefficients are estimated by conditional least squares on the lag
//! design matrix. ARMA terms use the Hannan–Rissanen two-stage procedure:
//! a long autoregression produces innovation estimates, then the series is
//! regressed on its own lags and lagged innovations. Order selection (for
//! the `auto` constructors) minimizes AIC; the differencing order is chosen
//! by variance reduction.

use crate::{check_horizon, check_train, Forecaster, ModelError, Result};
use easytime_data::TimeSeries;
use easytime_linalg::kernels::dot;
use easytime_linalg::stats::variance;
use easytime_linalg::{ridge, Matrix};

/// Lag coefficients reversed so that each AR/MA prediction becomes one
/// contiguous dot over the trailing window (oldest lag first).
fn reversed(coeffs: &[f64]) -> Vec<f64> {
    coeffs.iter().rev().copied().collect()
}

/// Builds the lag design matrix with an intercept column.
///
/// Row `t` holds `[1, y[t-1], …, y[t-p]]` targeting `y[t]`.
fn lag_design(values: &[f64], p: usize) -> (Matrix, Vec<f64>) {
    let n = values.len() - p;
    let x = Matrix::from_fn(n, p + 1, |i, j| {
        if j == 0 {
            1.0
        } else {
            values[p + i - j]
        }
    });
    let y = values[p..].to_vec();
    (x, y)
}

/// Fits AR(p) by conditional least squares; returns `(intercept, coeffs, sse)`.
fn fit_ar(values: &[f64], p: usize) -> Result<(f64, Vec<f64>, f64)> {
    if values.len() < p + 2 {
        return Err(ModelError::TooShort { needed: p + 2, got: values.len() });
    }
    let (x, y) = lag_design(values, p);
    // Scale-aware ridge: enough to keep collinear lag designs (long AR
    // stages, strong seasonality) from producing wild coefficients.
    let lambda = 1e-4 * values.len() as f64 * variance(values).max(1e-12);
    let beta = ridge(&x, &y, lambda).map_err(|e| ModelError::Numeric { what: e.to_string() })?;
    let yhat = x.matvec(&beta);
    let sse: f64 = y.iter().zip(&yhat).map(|(a, b)| (a - b) * (a - b)).sum();
    let coeffs = beta[1..].to_vec();
    Ok((beta[0], coeffs, sse))
}

/// Result of a Hannan–Rissanen ARMA fit:
/// `(intercept, ar, ma, residuals, sse)`.
type ArmaFit = (f64, Vec<f64>, Vec<f64>, Vec<f64>, f64);

/// Spectral radius of the AR companion matrix, by power iteration.
///
/// The AR recursion `y[t] = Σ φⱼ y[t−j]` diverges iff this radius is ≥ 1.
fn ar_spectral_radius(coeffs: &[f64]) -> f64 {
    let p = coeffs.len();
    if p == 0 {
        return 0.0;
    }
    if p == 1 {
        return coeffs[0].abs();
    }
    let mut v = vec![1.0 / (p as f64).sqrt(); p];
    let mut radius = 0.0;
    for _ in 0..60 {
        // Companion-matrix multiply: top row is the coefficients, the
        // sub-diagonal shifts.
        let mut next = vec![0.0; p];
        next[0] = coeffs.iter().zip(&v).map(|(c, x)| c * x).sum();
        next[1..p].copy_from_slice(&v[..(p - 1)]);
        let norm = next.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-300 {
            return 0.0;
        }
        radius = norm;
        for x in &mut next {
            *x /= norm;
        }
        v = next;
    }
    radius
}

/// Shrinks an unstable CSS fit back inside the unit circle.
///
/// Conditional least squares does not constrain the AR polynomial; on
/// near-unit-root or heavy-tailed data the estimated recursion can be
/// explosive. Multiplying φⱼ by `cʲ` scales every characteristic root by
/// `c`, so choosing `c = target / radius` restores stationarity while
/// preserving the fit's short-horizon dynamics.
fn stabilize_ar(coeffs: &mut [f64]) {
    const TARGET: f64 = 0.97;
    let radius = ar_spectral_radius(coeffs);
    if radius <= TARGET || !radius.is_finite() {
        return;
    }
    let c = TARGET / radius;
    let mut factor = 1.0;
    for coef in coeffs.iter_mut() {
        factor *= c;
        *coef *= factor;
    }
}

/// Clamps recursive forecasts to a sane envelope around the training data.
///
/// Conditional-least-squares AR fits are not guaranteed stationary; on
/// heavy-tailed series an estimated root slightly outside the unit circle
/// makes the recursion diverge geometrically. Production forecasting
/// systems bound such forecasts rather than emit astronomically wrong
/// values; we allow five training ranges of headroom, which never binds
/// for stable fits.
fn clamp_forecasts(out: &mut [f64], train: &[f64]) {
    let lo = train.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = train.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let range = (hi - lo).max(1e-9);
    let (floor, ceil) = (lo - 5.0 * range, hi + 5.0 * range);
    for v in out {
        *v = v.clamp(floor, ceil);
    }
}

/// AIC of a least-squares fit with `k` parameters on `n` effective points.
fn aic(sse: f64, n: usize, k: usize) -> f64 {
    let nf = n as f64;
    nf * (sse / nf).max(1e-300).ln() + 2.0 * k as f64
}

/// Pure autoregressive forecaster AR(p).
#[derive(Debug, Clone)]
pub struct Ar {
    order: Option<usize>,
    name: String,
    fitted: Option<ArState>,
}

#[derive(Debug, Clone)]
struct ArState {
    intercept: f64,
    coeffs: Vec<f64>,
    history: Vec<f64>,
    /// (min, max) of the training data, for forecast clamping.
    bounds: (f64, f64),
}

impl Ar {
    /// Creates AR with a fixed order.
    pub fn new(order: usize) -> Result<Ar> {
        if order == 0 {
            return Err(ModelError::InvalidParam { what: "AR order must be ≥ 1".into() });
        }
        Ok(Ar { order: Some(order), name: format!("ar_{order}"), fitted: None })
    }

    /// Creates AR with AIC-selected order in `1..=max_order`.
    pub fn auto(max_order: usize) -> Result<Ar> {
        if max_order == 0 {
            return Err(ModelError::InvalidParam { what: "max AR order must be ≥ 1".into() });
        }
        Ok(Ar { order: None, name: "ar_auto".into(), fitted: None })
    }
}

const AUTO_MAX_AR: usize = 8;

impl Forecaster for Ar {
    fn name(&self) -> &str {
        &self.name
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        check_train(train, self.min_train_len())?;
        let v = train.values();
        let order = match self.order {
            Some(p) => p,
            None => {
                let max_p = AUTO_MAX_AR.min(v.len() / 4).max(1);
                let mut best = (1usize, f64::INFINITY);
                for p in 1..=max_p {
                    if let Ok((_, _, sse)) = fit_ar(v, p) {
                        let score = aic(sse, v.len() - p, p + 1);
                        if score < best.1 {
                            best = (p, score);
                        }
                    }
                }
                best.0
            }
        };
        let (intercept, mut coeffs, _) = fit_ar(v, order)?;
        stabilize_ar(&mut coeffs);
        let keep = order.max(1);
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        self.fitted = Some(ArState {
            intercept,
            coeffs,
            history: v[v.len().saturating_sub(keep)..].to_vec(),
            bounds: (lo, hi),
        });
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        let st = self.fitted.as_ref().ok_or(ModelError::NotFitted)?;
        let p = st.coeffs.len();
        let rev = reversed(&st.coeffs);
        let mut hist = st.history.clone();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let v = st.intercept + dot(&rev, &hist[hist.len() - p..]);
            out.push(v);
            hist.push(v);
            if hist.len() > p + 1 {
                hist.remove(0);
            }
        }
        clamp_forecasts(&mut out, &[st.bounds.0, st.bounds.1]);
        Ok(out)
    }

    fn min_train_len(&self) -> usize {
        self.order.unwrap_or(AUTO_MAX_AR).max(1) + 2
    }
}

/// ARIMA(p, d, q) with Hannan–Rissanen ARMA estimation.
#[derive(Debug, Clone)]
pub struct Arima {
    p: usize,
    d: usize,
    q: usize,
    auto: bool,
    name: String,
    fitted: Option<ArimaState>,
}

#[derive(Debug, Clone)]
struct ArimaState {
    intercept: f64,
    ar: Vec<f64>,
    ma: Vec<f64>,
    /// Trailing differenced values (most recent last).
    hist: Vec<f64>,
    /// Trailing innovations aligned with `hist`.
    resid: Vec<f64>,
    /// The last `d` original values needed to integrate forecasts back.
    integrate_tail: Vec<f64>,
    d: usize,
    /// (min, max) of the raw training data, for forecast clamping.
    bounds: (f64, f64),
}

impl Arima {
    /// Creates ARIMA with fixed orders.
    pub fn new(p: usize, d: usize, q: usize) -> Result<Arima> {
        if p == 0 && q == 0 {
            return Err(ModelError::InvalidParam {
                what: "ARIMA requires p ≥ 1 or q ≥ 1".into(),
            });
        }
        if d > 2 {
            return Err(ModelError::InvalidParam { what: format!("d = {d} > 2 unsupported") });
        }
        Ok(Arima { p, d, q, auto: false, name: format!("arima_{p}{d}{q}"), fitted: None })
    }

    /// Creates auto-ARIMA: d by variance reduction, (p, q) by AIC over a
    /// small grid.
    pub fn auto() -> Arima {
        Arima { p: 2, d: 0, q: 1, auto: true, name: "arima_auto".into(), fitted: None }
    }

    /// Differences `values` `d` times, returning the working series and the
    /// tail needed to invert the differencing.
    fn difference(values: &[f64], d: usize) -> (Vec<f64>, Vec<f64>) {
        let mut work = values.to_vec();
        let mut tail = Vec::with_capacity(d);
        for _ in 0..d {
            let Some(&last) = work.last() else {
                break;
            };
            tail.push(last);
            work = work.windows(2).map(|w| w[1] - w[0]).collect();
        }
        (work, tail)
    }

    /// Chooses the differencing order (0..=2) by variance reduction.
    fn choose_d(values: &[f64]) -> usize {
        let mut best_d = 0;
        let mut best_var = variance(values);
        let mut work = values.to_vec();
        for d in 1..=2usize {
            if work.len() < 8 {
                break;
            }
            work = work.windows(2).map(|w| w[1] - w[0]).collect();
            let v = variance(&work);
            // Only difference when it reduces variance markedly.
            if v < 0.8 * best_var {
                best_d = d;
                best_var = v;
            } else {
                break;
            }
        }
        best_d
    }

    /// Hannan–Rissanen fit of ARMA(p, q) on `work`.
    /// Returns `(intercept, ar, ma, residuals, sse)`.
    fn fit_arma(work: &[f64], p: usize, q: usize) -> Result<ArmaFit> {
        let n = work.len();
        if q == 0 {
            let (intercept, ar, sse) = fit_ar(work, p.max(1))?;
            // Residuals for state initialization.
            let rev = reversed(&ar);
            let pe = ar.len();
            let mut resid = vec![0.0; n];
            for t in pe..n {
                let pred = intercept + dot(&rev, &work[t - pe..t]);
                resid[t] = work[t] - pred;
            }
            return Ok((intercept, ar, Vec::new(), resid, sse));
        }

        // Stage 1: long AR to estimate innovations.
        // lint: allow(lossy-cast) — ln(n).ceil() is a small non-negative
        // integer-valued float, exactly representable as usize.
        let long_p = ((n as f64).ln().ceil() as usize + p + q).min(n / 3).max(p + 1);
        let (li, lc, _) = fit_ar(work, long_p)?;
        let rev_lc = reversed(&lc);
        let mut innov = vec![0.0; n];
        for t in long_p..n {
            innov[t] = work[t] - (li + dot(&rev_lc, &work[t - long_p..t]));
        }

        // Stage 2: regress y[t] on p lags of y and q lags of innovations.
        let start = long_p + p.max(q);
        if n <= start + p + q + 2 {
            return Err(ModelError::TooShort { needed: start + p + q + 3, got: n });
        }
        let rows = n - start;
        let x = Matrix::from_fn(rows, 1 + p + q, |i, j| {
            let t = start + i;
            if j == 0 {
                1.0
            } else if j <= p {
                work[t - j]
            } else {
                innov[t - (j - p)]
            }
        });
        let y: Vec<f64> = work[start..].to_vec();
        // Innovations are nearly collinear with the lags; unregularized
        // least squares here produces enormous offsetting AR/MA pairs that
        // wreck out-of-sample forecasts. Scale-aware ridge tames that.
        let lambda = 1e-3 * rows as f64 * variance(work).max(1e-12);
        let beta =
            ridge(&x, &y, lambda).map_err(|e| ModelError::Numeric { what: e.to_string() })?;
        let yhat = x.matvec(&beta);
        let sse: f64 = y.iter().zip(&yhat).map(|(a, b)| (a - b) * (a - b)).sum();
        let intercept = beta[0];
        let mut ar = beta[1..=p].to_vec();
        let mut ma = beta[p + 1..].to_vec();
        // Stationarity and invertibility must hold BEFORE the residual
        // pass below: the residual recursion shares the MA characteristic
        // polynomial, so a non-invertible fit would blow the stored
        // residual tail up exponentially.
        stabilize_ar(&mut ar);
        stabilize_ar(&mut ma);

        // Final residual pass with the fitted ARMA parameters.
        let (rev_ar, rev_ma) = (reversed(&ar), reversed(&ma));
        let mut resid = vec![0.0; n];
        for t in p.max(q)..n {
            let pred =
                intercept + dot(&rev_ar, &work[t - p..t]) + dot(&rev_ma, &resid[t - q..t]);
            resid[t] = work[t] - pred;
        }
        Ok((intercept, ar, ma, resid, sse))
    }
}

impl Forecaster for Arima {
    fn name(&self) -> &str {
        &self.name
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        check_train(train, self.min_train_len())?;
        let v = train.values();

        let (p, d, q) = if self.auto {
            let d = Self::choose_d(v);
            let (work, _) = Self::difference(v, d);
            let mut best = (1usize, 0usize, f64::INFINITY);
            for p in 1..=3usize {
                for q in 0..=2usize {
                    if let Ok((_, _, _, _, sse)) = Self::fit_arma(&work, p, q) {
                        let k = p + q + 1;
                        let score = aic(sse, work.len().saturating_sub(p + q + 1).max(1), k);
                        if score < best.2 {
                            best = (p, q, score);
                        }
                    }
                }
            }
            (best.0, d, best.1)
        } else {
            (self.p, self.d, self.q)
        };

        let (work, integrate_tail) = Self::difference(v, d);
        if work.len() < p.max(q) + 4 {
            return Err(ModelError::TooShort { needed: p.max(q) + 4 + d, got: v.len() });
        }
        let (intercept, ar, ma, resid, _) = Self::fit_arma(&work, p, q)?;

        let keep = p.max(q).max(1);
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        self.fitted = Some(ArimaState {
            intercept,
            ar,
            ma,
            hist: work[work.len() - keep..].to_vec(),
            resid: resid[resid.len() - keep..].to_vec(),
            integrate_tail,
            d,
            bounds: (lo, hi),
        });
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        let st = self.fitted.as_ref().ok_or(ModelError::NotFitted)?;
        let (rev_ar, rev_ma) = (reversed(&st.ar), reversed(&st.ma));
        let mut hist = st.hist.clone();
        let mut resid = st.resid.clone();
        let mut diffs = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let v = st.intercept
                + dot(&rev_ar, &hist[hist.len() - rev_ar.len()..])
                + dot(&rev_ma, &resid[resid.len() - rev_ma.len()..]);
            diffs.push(v);
            hist.push(v);
            resid.push(0.0); // future innovations have zero expectation
            hist.remove(0);
            resid.remove(0);
        }

        // Integrate back d times: invert each differencing level.
        let mut out = diffs;
        for level in (0..st.d).rev() {
            let mut last = st.integrate_tail[level];
            for v in &mut out {
                last += *v;
                *v = last;
            }
        }
        clamp_forecasts(&mut out, &[st.bounds.0, st.bounds.1]);
        Ok(out)
    }

    fn min_train_len(&self) -> usize {
        let base = self.p.max(self.q) + self.d;
        (4 * (base + 1)).max(20)
    }
}

/// Seasonal ARIMA: seasonal differencing at the period, then ARMA.
///
/// Implements the SARIMA(p, 0, q)(0, 1, 0)ₘ subfamily — plain ARMA on the
/// seasonally differenced series `y[t] − y[t−m]` — which captures the
/// "seasonal cycle plus short-memory deviations" structure the
/// non-seasonal family misses entirely. The period comes from the
/// constructor or the series frequency.
#[derive(Debug, Clone)]
pub struct SeasonalArima {
    period: Option<usize>,
    inner_p: usize,
    inner_q: usize,
    fitted: Option<SarimaState>,
}

#[derive(Debug, Clone)]
struct SarimaState {
    /// The fitted ARMA core on the seasonally differenced series.
    arma: Arima,
    /// Last `period` original values, for inverting the seasonal difference.
    season_tail: Vec<f64>,
    bounds: (f64, f64),
}

impl SeasonalArima {
    /// Creates SARIMA(p, 0, q)(0, 1, 0)ₘ with an optional explicit period.
    pub fn new(period: Option<usize>, p: usize, q: usize) -> Result<SeasonalArima> {
        if p == 0 && q == 0 {
            return Err(ModelError::InvalidParam {
                what: "SARIMA requires p ≥ 1 or q ≥ 1 for the ARMA core".into(),
            });
        }
        Ok(SeasonalArima { period, inner_p: p, inner_q: q, fitted: None })
    }
}

impl Forecaster for SeasonalArima {
    fn name(&self) -> &str {
        "sarima"
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        let period = self
            .period
            .or_else(|| train.frequency().default_period())
            .ok_or_else(|| ModelError::InvalidParam {
                what: "sarima needs a seasonal period (explicit or via frequency)".into(),
            })?;
        if period < 2 {
            return Err(ModelError::InvalidParam {
                what: format!("seasonal period {period} must be ≥ 2"),
            });
        }
        check_train(train, self.min_train_len().max(2 * period + 8))?;
        let v = train.values();

        // Seasonal difference.
        let sdiff: Vec<f64> = (period..v.len()).map(|t| v[t] - v[t - period]).collect();
        let sdiff_series = train.with_values(sdiff).map_err(ModelError::Data)?;
        let mut arma = Arima::new(self.inner_p, 0, self.inner_q)?;
        arma.fit(&sdiff_series)?;

        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        self.fitted = Some(SarimaState {
            arma,
            season_tail: v[v.len() - period..].to_vec(),
            bounds: (lo, hi),
        });
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        let st = self.fitted.as_ref().ok_or(ModelError::NotFitted)?;
        let period = st.season_tail.len();
        let diffs = st.arma.forecast(horizon)?;
        // Invert the seasonal difference recursively:
        // y[n+h] = y[n+h−m] + Δₘ-forecast[h].
        let mut extended = st.season_tail.clone();
        for d in diffs {
            let base = extended[extended.len() - period];
            extended.push(base + d);
        }
        let mut out = extended[period..].to_vec();
        clamp_forecasts(&mut out, &[st.bounds.0, st.bounds.1]);
        Ok(out)
    }

    fn min_train_len(&self) -> usize {
        // Conservative: two cycles of the most common periods plus the
        // ARMA core's needs; the exact requirement is enforced at fit time
        // once the period is known.
        24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easytime_data::Frequency;

    fn ts(values: Vec<f64>) -> TimeSeries {
        TimeSeries::new("t", values, Frequency::Unknown).expect("construction succeeds with valid parameters")
    }

    /// Deterministic AR(1) driven by white LCG noise in (-0.15, 0.15).
    fn ar1_series(n: usize, phi: f64) -> Vec<f64> {
        let mut state: u64 = 0x2545_F491_4F6C_DD1D;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.3
        };
        let mut v = vec![next()];
        for t in 1..n {
            let prev = v[t - 1];
            v.push(phi * prev + next());
        }
        v
    }

    #[test]
    fn ar_recovers_autoregressive_coefficient() {
        let data = ar1_series(400, 0.8);
        let mut m = Ar::new(1).expect("construction succeeds with valid parameters");
        m.fit(&ts(data)).expect("fit succeeds on valid training data");
        let st = m.fitted.as_ref().expect("state is populated at this point");
        assert!((st.coeffs[0] - 0.8).abs() < 0.1, "phi estimate {}", st.coeffs[0]);
    }

    #[test]
    fn ar_auto_picks_reasonable_order() {
        let data = ar1_series(300, 0.7);
        let mut m = Ar::auto(8).expect("auto-order selection succeeds");
        m.fit(&ts(data)).expect("fit succeeds on valid training data");
        let st = m.fitted.as_ref().expect("state is populated at this point");
        assert!((1..=8).contains(&st.coeffs.len()));
        let f = m.forecast(5).expect("forecast succeeds on a fitted model");
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn ar_forecast_decays_to_process_mean() {
        let data = ar1_series(400, 0.8);
        let m_data = easytime_linalg::stats::mean(&data);
        let mut m = Ar::new(1).expect("construction succeeds with valid parameters");
        m.fit(&ts(data)).expect("fit succeeds on valid training data");
        let f = m.forecast(200).expect("forecast succeeds on a fitted model");
        assert!(
            (f[199] - m_data).abs() < 0.5,
            "long-run forecast {} should approach mean {}",
            f[199],
            m_data
        );
    }

    #[test]
    fn arima_with_differencing_tracks_trend() {
        let values: Vec<f64> = (0..200).map(|t| 5.0 + 0.5 * t as f64).collect();
        let mut m = Arima::new(1, 1, 0).expect("construction succeeds with valid parameters");
        m.fit(&ts(values)).expect("fit succeeds on valid training data");
        let f = m.forecast(5).expect("forecast succeeds on a fitted model");
        for (h, v) in f.iter().enumerate() {
            let expected = 5.0 + 0.5 * (200 + h) as f64;
            assert!((v - expected).abs() < 1.0, "h={h}: {v} vs {expected}");
        }
    }

    #[test]
    fn auto_arima_differences_random_walk() {
        // Deterministic random-walk-like cumulative series.
        let mut v = vec![0.0];
        for t in 1..300 {
            let e = ((t as f64 * 7.13).sin() * 1009.7).fract();
            v.push(v[t - 1] + e);
        }
        assert_eq!(Arima::choose_d(&v), 1);
        let mut m = Arima::auto();
        m.fit(&ts(v)).expect("fit succeeds on valid training data");
        assert_eq!(m.fitted.as_ref().expect("state is populated at this point").d, 1);
        let f = m.forecast(10).expect("forecast succeeds on a fitted model");
        assert!(f.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn stationary_series_is_not_differenced() {
        // Weakly autocorrelated process: differencing would roughly double
        // the variance, so choose_d must keep d = 0.
        let data = ar1_series(300, 0.2);
        assert_eq!(Arima::choose_d(&data), 0);
    }

    #[test]
    fn arma_with_ma_terms_fits() {
        let data = ar1_series(400, 0.6);
        let mut m = Arima::new(1, 0, 1).expect("construction succeeds with valid parameters");
        m.fit(&ts(data)).expect("fit succeeds on valid training data");
        let st = m.fitted.as_ref().expect("state is populated at this point");
        assert_eq!(st.ar.len(), 1);
        assert_eq!(st.ma.len(), 1);
        let f = m.forecast(8).expect("forecast succeeds on a fitted model");
        assert_eq!(f.len(), 8);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn constructors_validate_orders() {
        assert!(Ar::new(0).is_err());
        assert!(Ar::auto(0).is_err());
        assert!(Arima::new(0, 0, 0).is_err());
        assert!(Arima::new(1, 3, 0).is_err());
    }

    #[test]
    fn short_series_yields_too_short() {
        let mut m = Arima::new(2, 1, 1).expect("construction succeeds with valid parameters");
        assert!(matches!(
            m.fit(&ts((0..10).map(|t| t as f64).collect())),
            Err(ModelError::TooShort { .. })
        ));
    }

    #[test]
    fn explosive_fits_are_clamped_to_the_training_envelope() {
        // A near-unit-root heavy-tailed series can produce |phi| > 1 under
        // CSS; the forecast must stay within 5 training ranges regardless.
        let mut v = vec![10.0];
        let mut state: u64 = 99;
        for t in 1..120 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let heavy = if state % 17 == 0 { 30.0 } else { 0.5 };
            let e = ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * heavy;
            let prev: f64 = v[t - 1];
            v.push(prev * 1.02 + e);
        }
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let range = hi - lo;
        let mut m = Arima::new(2, 0, 1).expect("construction succeeds with valid parameters");
        m.fit(&ts(v)).expect("fit succeeds on valid training data");
        let f = m.forecast(500).expect("forecast succeeds on a fitted model");
        for x in &f {
            assert!(
                *x >= lo - 5.0 * range - 1e-9 && *x <= hi + 5.0 * range + 1e-9,
                "forecast {x} escaped the clamping envelope [{lo}, {hi}] range {range}"
            );
        }
    }

    #[test]
    fn sarima_captures_seasonality_plain_arima_misses() {
        // Monthly seasonal + trend: the non-seasonal family cannot model
        // the cycle; SARIMA's seasonal difference removes it exactly.
        let values: Vec<f64> = (0..240)
            .map(|t| {
                20.0 + 0.1 * t as f64
                    + 8.0 * (2.0 * std::f64::consts::PI * t as f64 / 12.0).sin()
            })
            .collect();
        let series = TimeSeries::new("m", values.clone(), Frequency::Monthly).expect("construction succeeds with valid parameters");
        let train = series.slice(0, 216).expect("slice bounds are within the series");
        let actual = &values[216..240];

        let mut sarima = SeasonalArima::new(None, 1, 0).expect("construction succeeds with valid parameters");
        sarima.fit(&train).expect("fit succeeds on valid training data");
        let fs = sarima.forecast(24).expect("forecast succeeds on a fitted model");

        let mut arima = Arima::auto();
        arima.fit(&train).expect("fit succeeds on valid training data");
        let fa = arima.forecast(24).expect("forecast succeeds on a fitted model");

        let mae = |f: &[f64]| {
            f.iter().zip(actual).map(|(p, a)| (p - a).abs()).sum::<f64>() / 24.0
        };
        assert!(
            mae(&fs) < mae(&fa) * 0.5,
            "sarima {} should beat plain arima {} decisively on seasonal data",
            mae(&fs),
            mae(&fa)
        );
        assert!(mae(&fs) < 1.5, "sarima mae {}", mae(&fs));
    }

    #[test]
    fn sarima_validates_inputs() {
        assert!(SeasonalArima::new(Some(12), 0, 0).is_err());
        let mut m = SeasonalArima::new(Some(1), 1, 0).expect("construction succeeds with valid parameters");
        let s = ts((0..100).map(|t| t as f64).collect());
        assert!(matches!(m.fit(&s), Err(ModelError::InvalidParam { .. })));
        // No period available (Unknown frequency, none given).
        let mut m = SeasonalArima::new(None, 1, 0).expect("construction succeeds with valid parameters");
        assert!(matches!(m.fit(&s), Err(ModelError::InvalidParam { .. })));
        // Too short for two cycles.
        let mut m = SeasonalArima::new(Some(12), 1, 0).expect("construction succeeds with valid parameters");
        assert!(matches!(
            m.fit(&ts((0..20).map(|t| t as f64).collect())),
            Err(ModelError::TooShort { .. })
        ));
        assert!(matches!(
            SeasonalArima::new(Some(12), 1, 0).expect("construction succeeds with valid parameters").forecast(1),
            Err(ModelError::NotFitted)
        ));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Ar::new(3).expect("construction succeeds with valid parameters").name(), "ar_3");
        assert_eq!(Arima::new(2, 1, 1).expect("construction succeeds with valid parameters").name(), "arima_211");
        assert_eq!(Arima::auto().name(), "arima_auto");
    }
}
