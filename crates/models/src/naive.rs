//! Naive baseline forecasters.
//!
//! These are the reference methods every benchmark needs: they anchor the
//! leaderboard (a method that loses to `naive` is not working) and MASE is
//! defined relative to the seasonal-naive error.

use crate::{check_horizon, check_train, Forecaster, ModelError, Result};
use easytime_data::TimeSeries;
use easytime_linalg::stats::mean;

/// Repeats the last observed value.
#[derive(Debug, Clone, Default)]
pub struct Naive {
    last: Option<f64>,
}

impl Naive {
    /// Creates an unfitted naive forecaster.
    pub fn new() -> Naive {
        Naive::default()
    }
}

impl Forecaster for Naive {
    fn name(&self) -> &str {
        "naive"
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        check_train(train, 1)?;
        self.last = Some(train.last());
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        let last = self.last.ok_or(ModelError::NotFitted)?;
        Ok(vec![last; horizon])
    }

    fn update(&mut self, appended: &TimeSeries) -> Result<bool> {
        if self.last.is_none() {
            return Ok(false);
        }
        self.last = Some(appended.last());
        Ok(true)
    }

    fn forecast_into(&self, horizon: usize, out: &mut Vec<f64>) -> Result<()> {
        check_horizon(horizon)?;
        let last = self.last.ok_or(ModelError::NotFitted)?;
        out.clear();
        out.resize(horizon, last);
        Ok(())
    }

    fn min_train_len(&self) -> usize {
        1
    }
}

/// Repeats the last full seasonal cycle.
///
/// When no period is supplied, the training series' frequency default is
/// used; series without a usable period degrade to [`Naive`] behaviour.
#[derive(Debug, Clone)]
pub struct SeasonalNaive {
    period: Option<usize>,
    cycle: Vec<f64>,
    seen: usize,
}

impl SeasonalNaive {
    /// Creates a seasonal-naive forecaster with an optional explicit period.
    pub fn new(period: Option<usize>) -> SeasonalNaive {
        SeasonalNaive { period, cycle: Vec::new(), seen: 0 }
    }

    fn effective_period(&self, frequency: easytime_data::Frequency, len: usize) -> usize {
        self.period
            .or_else(|| frequency.default_period())
            .filter(|&p| p >= 1 && p <= len)
            .unwrap_or(1)
    }
}

impl Forecaster for SeasonalNaive {
    fn name(&self) -> &str {
        "seasonal_naive"
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        check_train(train, 1)?;
        let p = self.effective_period(train.frequency(), train.len());
        let v = train.values();
        self.cycle = v[v.len() - p..].to_vec();
        self.seen = train.len();
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        if self.cycle.is_empty() {
            return Err(ModelError::NotFitted);
        }
        Ok((0..horizon).map(|h| self.cycle[h % self.cycle.len()]).collect())
    }

    fn update(&mut self, appended: &TimeSeries) -> Result<bool> {
        if self.cycle.is_empty() {
            return Ok(false);
        }
        let new_len = self.seen + appended.len();
        // Growing data can change the effective period (a degraded short
        // series may now fit a full cycle); that needs a refit.
        if self.effective_period(appended.frequency(), new_len) != self.cycle.len() {
            return Ok(false);
        }
        let p = self.cycle.len();
        let v = appended.values();
        let k = v.len();
        if k >= p {
            self.cycle.copy_from_slice(&v[k - p..]);
        } else {
            // The last p observations are the old cycle's tail plus all of
            // the appended values; rotate in place (no allocation).
            self.cycle.rotate_left(k);
            self.cycle[p - k..].copy_from_slice(v);
        }
        self.seen = new_len;
        Ok(true)
    }

    fn forecast_into(&self, horizon: usize, out: &mut Vec<f64>) -> Result<()> {
        check_horizon(horizon)?;
        if self.cycle.is_empty() {
            return Err(ModelError::NotFitted);
        }
        out.clear();
        out.extend((0..horizon).map(|h| self.cycle[h % self.cycle.len()]));
        Ok(())
    }

    fn min_train_len(&self) -> usize {
        1
    }
}

/// Random-walk-with-drift forecast: extrapolates the average first
/// difference of the training data.
#[derive(Debug, Clone, Default)]
pub struct Drift {
    last: Option<f64>,
    slope: f64,
    first: f64,
    n: usize,
}

impl Drift {
    /// Creates an unfitted drift forecaster.
    pub fn new() -> Drift {
        Drift::default()
    }
}

impl Forecaster for Drift {
    fn name(&self) -> &str {
        "drift"
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        check_train(train, 2)?;
        let v = train.values();
        self.last = Some(train.last());
        self.first = v[0];
        self.n = v.len();
        self.slope = (v[v.len() - 1] - v[0]) / (v.len() - 1) as f64;
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        let last = self.last.ok_or(ModelError::NotFitted)?;
        Ok((1..=horizon).map(|h| last + self.slope * h as f64).collect())
    }

    fn update(&mut self, appended: &TimeSeries) -> Result<bool> {
        if self.last.is_none() {
            return Ok(false);
        }
        let last = appended.last();
        self.last = Some(last);
        self.n += appended.len();
        // Same endpoints a refit would use: bitwise-identical slope.
        self.slope = (last - self.first) / (self.n - 1) as f64;
        Ok(true)
    }

    fn forecast_into(&self, horizon: usize, out: &mut Vec<f64>) -> Result<()> {
        check_horizon(horizon)?;
        let last = self.last.ok_or(ModelError::NotFitted)?;
        out.clear();
        out.extend((1..=horizon).map(|h| last + self.slope * h as f64));
        Ok(())
    }

    fn min_train_len(&self) -> usize {
        2
    }
}

/// Forecasts the grand mean of the training data.
#[derive(Debug, Clone, Default)]
pub struct MeanForecaster {
    mean: Option<f64>,
    sum: f64,
    n: usize,
}

impl MeanForecaster {
    /// Creates an unfitted mean forecaster.
    pub fn new() -> MeanForecaster {
        MeanForecaster::default()
    }
}

impl Forecaster for MeanForecaster {
    fn name(&self) -> &str {
        "mean"
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        check_train(train, 1)?;
        // One left-to-right pass, exactly like `stats::mean`, so a later
        // running-sum `update` stays bitwise-identical to a refit.
        self.sum = train.values().iter().sum();
        self.n = train.len();
        self.mean = Some(self.sum / self.n as f64);
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        let m = self.mean.ok_or(ModelError::NotFitted)?;
        Ok(vec![m; horizon])
    }

    fn update(&mut self, appended: &TimeSeries) -> Result<bool> {
        if self.mean.is_none() {
            return Ok(false);
        }
        for v in appended.values() {
            self.sum += v;
        }
        self.n += appended.len();
        self.mean = Some(self.sum / self.n as f64);
        Ok(true)
    }

    fn forecast_into(&self, horizon: usize, out: &mut Vec<f64>) -> Result<()> {
        check_horizon(horizon)?;
        let m = self.mean.ok_or(ModelError::NotFitted)?;
        out.clear();
        out.resize(horizon, m);
        Ok(())
    }

    fn min_train_len(&self) -> usize {
        1
    }
}

/// Forecasts the mean of the last `window` observations.
#[derive(Debug, Clone)]
pub struct WindowAverage {
    window: usize,
    value: Option<f64>,
    name: String,
    tail: Vec<f64>,
}

impl WindowAverage {
    /// Creates a window-average forecaster over the trailing `window` points.
    pub fn new(window: usize) -> Result<WindowAverage> {
        if window == 0 {
            return Err(ModelError::InvalidParam { what: "window must be at least 1".into() });
        }
        Ok(WindowAverage {
            window,
            value: None,
            name: format!("window_average_{window}"),
            tail: Vec::new(),
        })
    }
}

impl Forecaster for WindowAverage {
    fn name(&self) -> &str {
        &self.name
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        check_train(train, 1)?;
        let v = train.values();
        let w = self.window.min(v.len());
        self.tail.clear();
        self.tail.reserve(self.window);
        self.tail.extend_from_slice(&v[v.len() - w..]);
        self.value = Some(mean(&self.tail));
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        let m = self.value.ok_or(ModelError::NotFitted)?;
        Ok(vec![m; horizon])
    }

    fn update(&mut self, appended: &TimeSeries) -> Result<bool> {
        if self.value.is_none() {
            return Ok(false);
        }
        let v = appended.values();
        let k = v.len();
        if k >= self.window {
            self.tail.clear();
            self.tail.extend_from_slice(&v[k - self.window..]);
        } else {
            let overflow = (self.tail.len() + k).saturating_sub(self.window);
            if overflow > 0 {
                self.tail.drain(..overflow);
            }
            self.tail.extend_from_slice(v);
        }
        self.value = Some(mean(&self.tail));
        Ok(true)
    }

    fn forecast_into(&self, horizon: usize, out: &mut Vec<f64>) -> Result<()> {
        check_horizon(horizon)?;
        let m = self.value.ok_or(ModelError::NotFitted)?;
        out.clear();
        out.resize(horizon, m);
        Ok(())
    }

    fn min_train_len(&self) -> usize {
        1
    }
}

/// Forecasts each step as the mean of the historical values at the same
/// seasonal phase (a smoothed seasonal-naive; robust when single cycles
/// are noisy).
#[derive(Debug, Clone)]
pub struct SeasonalWindowAverage {
    period: Option<usize>,
    cycles: usize,
    profile: Vec<f64>,
    // Warm-start state: per-phase buffers of the newest `cycles`
    // observations (newest first — the order `fit`'s backward scan sums
    // in, so incremental updates stay bitwise-identical to a refit).
    ring: Vec<Vec<f64>>,
    seen: usize,
}

impl SeasonalWindowAverage {
    /// Creates the forecaster, averaging the last `cycles` occurrences of
    /// each phase (period from the argument or the series frequency).
    pub fn new(period: Option<usize>, cycles: usize) -> Result<SeasonalWindowAverage> {
        if cycles == 0 {
            return Err(ModelError::InvalidParam { what: "cycles must be ≥ 1".into() });
        }
        Ok(SeasonalWindowAverage {
            period,
            cycles,
            profile: Vec::new(),
            ring: Vec::new(),
            seen: 0,
        })
    }

    fn effective_period(&self, frequency: easytime_data::Frequency, len: usize) -> usize {
        self.period
            .or_else(|| frequency.default_period())
            .filter(|&p| p >= 1 && p <= len)
            .unwrap_or(1)
    }

    /// Recomputes `profile` from the per-phase buffers: profile[h]
    /// predicts step `seen + h`, whose seasonal phase is `(seen + h) % p`.
    fn rebuild_profile(&mut self) {
        let p = self.ring.len();
        for (h, slot) in self.profile.iter_mut().enumerate() {
            let bucket = &self.ring[(self.seen + h) % p];
            let mut sum = 0.0;
            for v in bucket {
                sum += v;
            }
            *slot = sum / bucket.len().max(1) as f64;
        }
    }
}

impl Forecaster for SeasonalWindowAverage {
    fn name(&self) -> &str {
        "seasonal_avg"
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        check_train(train, 2)?;
        let p = self.effective_period(train.frequency(), train.len());
        let v = train.values();
        let n = v.len();
        self.ring.clear();
        for phase in 0..p {
            let mut bucket = Vec::with_capacity(self.cycles);
            let mut t = n;
            while t > 0 && bucket.len() < self.cycles {
                t -= 1;
                if t % p == phase {
                    bucket.push(v[t]);
                }
            }
            self.ring.push(bucket);
        }
        self.seen = n;
        self.profile.clear();
        self.profile.resize(p, 0.0);
        self.rebuild_profile();
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        if self.profile.is_empty() {
            return Err(ModelError::NotFitted);
        }
        Ok((0..horizon).map(|h| self.profile[h % self.profile.len()]).collect())
    }

    fn update(&mut self, appended: &TimeSeries) -> Result<bool> {
        if self.profile.is_empty() {
            return Ok(false);
        }
        let p = self.ring.len();
        let new_len = self.seen + appended.len();
        // A longer prefix can change the effective period; refit then.
        if self.effective_period(appended.frequency(), new_len) != p {
            return Ok(false);
        }
        for (i, &v) in appended.values().iter().enumerate() {
            let bucket = &mut self.ring[(self.seen + i) % p];
            if bucket.len() == self.cycles {
                // Drop the oldest (back), insert the newest at the front.
                bucket.rotate_right(1);
                bucket[0] = v;
            } else {
                bucket.push(v);
                bucket.rotate_right(1);
            }
        }
        self.seen = new_len;
        self.rebuild_profile();
        Ok(true)
    }

    fn forecast_into(&self, horizon: usize, out: &mut Vec<f64>) -> Result<()> {
        check_horizon(horizon)?;
        if self.profile.is_empty() {
            return Err(ModelError::NotFitted);
        }
        out.clear();
        out.extend((0..horizon).map(|h| self.profile[h % self.profile.len()]));
        Ok(())
    }

    fn min_train_len(&self) -> usize {
        2
    }
}

/// Forecasts by extrapolating the global least-squares line — the pure
/// trend model (distinct from [`Drift`], which uses only the endpoints).
#[derive(Debug, Clone, Default)]
pub struct LinearTrend {
    fitted: Option<(f64, f64, usize)>, // (intercept, slope, n)
}

impl LinearTrend {
    /// Creates an unfitted linear-trend forecaster.
    pub fn new() -> LinearTrend {
        LinearTrend::default()
    }
}

impl Forecaster for LinearTrend {
    fn name(&self) -> &str {
        "linear_trend"
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        check_train(train, 2)?;
        let (b, m) = easytime_linalg::stats::linear_trend(train.values());
        self.fitted = Some((b, m, train.len()));
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        let (b, m, n) = self.fitted.ok_or(ModelError::NotFitted)?;
        Ok((0..horizon).map(|h| b + m * (n + h) as f64).collect())
    }

    fn min_train_len(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easytime_data::Frequency;

    fn ts(values: Vec<f64>) -> TimeSeries {
        TimeSeries::new("t", values, Frequency::Monthly).expect("construction succeeds with valid parameters")
    }

    #[test]
    fn naive_repeats_last_value() {
        let mut m = Naive::new();
        m.fit(&ts(vec![1.0, 2.0, 7.0])).expect("fit succeeds on valid training data");
        assert_eq!(m.forecast(3).expect("forecast succeeds on a fitted model"), vec![7.0, 7.0, 7.0]);
    }

    #[test]
    fn unfitted_models_error() {
        assert_eq!(Naive::new().forecast(1), Err(ModelError::NotFitted));
        assert_eq!(SeasonalNaive::new(Some(2)).forecast(1), Err(ModelError::NotFitted));
        assert_eq!(Drift::new().forecast(1), Err(ModelError::NotFitted));
        assert_eq!(MeanForecaster::new().forecast(1), Err(ModelError::NotFitted));
    }

    #[test]
    fn zero_horizon_is_rejected() {
        let mut m = Naive::new();
        m.fit(&ts(vec![1.0])).expect("fit succeeds on valid training data");
        assert!(matches!(m.forecast(0), Err(ModelError::InvalidParam { .. })));
    }

    #[test]
    fn seasonal_naive_repeats_cycle() {
        let mut m = SeasonalNaive::new(Some(3));
        m.fit(&ts(vec![9.0, 9.0, 1.0, 2.0, 3.0])).expect("fit succeeds on valid training data");
        assert_eq!(m.forecast(7).expect("forecast succeeds on a fitted model"), vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 1.0]);
    }

    #[test]
    fn seasonal_naive_uses_frequency_default() {
        // Monthly frequency → period 12.
        let values: Vec<f64> = (0..24).map(|t| (t % 12) as f64).collect();
        let mut m = SeasonalNaive::new(None);
        m.fit(&ts(values)).expect("fit succeeds on valid training data");
        let f = m.forecast(12).expect("forecast succeeds on a fitted model");
        assert_eq!(f, (0..12).map(|t| t as f64).collect::<Vec<_>>());
    }

    #[test]
    fn seasonal_naive_degrades_to_naive_when_period_too_long() {
        let mut m = SeasonalNaive::new(Some(100));
        m.fit(&ts(vec![1.0, 2.0, 5.0])).expect("fit succeeds on valid training data");
        assert_eq!(m.forecast(2).expect("forecast succeeds on a fitted model"), vec![5.0, 5.0]);
    }

    #[test]
    fn drift_extrapolates_linearly() {
        let mut m = Drift::new();
        m.fit(&ts(vec![0.0, 1.0, 2.0, 3.0])).expect("fit succeeds on valid training data");
        assert_eq!(m.forecast(3).expect("forecast succeeds on a fitted model"), vec![4.0, 5.0, 6.0]);
        assert!(matches!(
            Drift::new().fit(&ts(vec![1.0])),
            Err(ModelError::TooShort { needed: 2, got: 1 })
        ));
    }

    #[test]
    fn mean_and_window_average() {
        let mut m = MeanForecaster::new();
        m.fit(&ts(vec![1.0, 2.0, 3.0, 4.0])).expect("fit succeeds on valid training data");
        assert_eq!(m.forecast(2).expect("forecast succeeds on a fitted model"), vec![2.5, 2.5]);

        let mut w = WindowAverage::new(2).expect("construction succeeds with valid parameters");
        w.fit(&ts(vec![1.0, 2.0, 3.0, 5.0])).expect("fit succeeds on valid training data");
        assert_eq!(w.forecast(2).expect("forecast succeeds on a fitted model"), vec![4.0, 4.0]);
        assert_eq!(w.name(), "window_average_2");
        assert!(WindowAverage::new(0).is_err());
    }

    #[test]
    fn seasonal_average_smooths_noisy_cycles() {
        // Period 3, two cycles with noise ±1 around [10, 20, 30].
        let values = vec![11.0, 19.0, 31.0, 9.0, 21.0, 29.0];
        let mut m = SeasonalWindowAverage::new(Some(3), 2).expect("construction succeeds with valid parameters");
        m.fit(&ts(values)).expect("fit succeeds on valid training data");
        let f = m.forecast(3).expect("forecast succeeds on a fitted model");
        // n = 6 → step 6 has phase 0 → mean(11, 9) = 10.
        assert_eq!(f, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn seasonal_average_phase_alignment_with_partial_cycle() {
        // 7 points, period 3: the next step (t=7) has phase 1.
        let values = vec![0.0, 10.0, 20.0, 1.0, 11.0, 21.0, 2.0];
        let mut m = SeasonalWindowAverage::new(Some(3), 10).expect("construction succeeds with valid parameters");
        m.fit(&ts(values)).expect("fit succeeds on valid training data");
        let f = m.forecast(2).expect("forecast succeeds on a fitted model");
        assert_eq!(f[0], 10.5); // mean of phase-1 values {10, 11}
        assert_eq!(f[1], 20.5); // mean of phase-2 values {20, 21}
    }

    #[test]
    fn seasonal_average_validates_and_degrades() {
        assert!(SeasonalWindowAverage::new(Some(4), 0).is_err());
        assert!(matches!(
            SeasonalWindowAverage::new(Some(4), 2).expect("construction succeeds with valid parameters").forecast(1),
            Err(ModelError::NotFitted)
        ));
        // No usable period → behaves like a trailing mean of `cycles`
        // values.
        let series =
            TimeSeries::new("u", vec![1.0, 2.0, 3.0, 4.0], Frequency::Unknown).expect("construction succeeds with valid parameters");
        let mut m = SeasonalWindowAverage::new(None, 2).expect("construction succeeds with valid parameters");
        m.fit(&series).expect("fit succeeds on valid training data");
        assert_eq!(m.forecast(2).expect("forecast succeeds on a fitted model"), vec![3.5, 3.5]);
    }

    #[test]
    fn linear_trend_extrapolates_the_regression_line() {
        let values: Vec<f64> = (0..50).map(|t| 3.0 + 0.5 * t as f64).collect();
        let mut m = LinearTrend::new();
        m.fit(&ts(values)).expect("fit succeeds on valid training data");
        let f = m.forecast(3).expect("forecast succeeds on a fitted model");
        for (h, v) in f.iter().enumerate() {
            let expected = 3.0 + 0.5 * (50 + h) as f64;
            assert!((v - expected).abs() < 1e-9, "h={h}: {v} vs {expected}");
        }
        assert!(matches!(LinearTrend::new().forecast(1), Err(ModelError::NotFitted)));
    }

    #[test]
    fn linear_trend_is_robust_to_endpoint_outliers_unlike_drift() {
        // A flat series with a single spiked endpoint: drift extrapolates
        // the spike, the regression line barely moves.
        let mut values = vec![10.0; 60];
        values[59] = 40.0;
        let mut lt = LinearTrend::new();
        lt.fit(&ts(values.clone())).expect("value is present");
        let mut dr = Drift::new();
        dr.fit(&ts(values)).expect("fit succeeds on valid training data");
        let f_lt = lt.forecast(10).expect("forecast succeeds on a fitted model")[9];
        let f_dr = dr.forecast(10).expect("forecast succeeds on a fitted model")[9];
        assert!((f_lt - 10.0).abs() < 3.0, "linear trend {f_lt}");
        assert!(f_dr > 40.0, "drift should chase the spike: {f_dr}");
    }

    #[test]
    fn window_longer_than_series_uses_all_data() {
        let mut w = WindowAverage::new(100).expect("construction succeeds with valid parameters");
        w.fit(&ts(vec![2.0, 4.0])).expect("fit succeeds on valid training data");
        assert_eq!(w.forecast(1).expect("forecast succeeds on a fitted model"), vec![3.0]);
    }

    /// Drives `update` chunk by chunk and checks the forecast is
    /// bitwise-identical to refitting on the concatenated prefix.
    fn assert_update_matches_refit(build: impl Fn() -> Box<dyn Forecaster>, values: Vec<f64>) {
        let split = values.len() / 2;
        let mut warm = build();
        warm.fit(&ts(values[..split].to_vec())).expect("fit succeeds on valid training data");
        let mut consumed = split;
        for chunk in values[split..].chunks(3) {
            let appended = ts(chunk.to_vec());
            assert!(
                warm.update(&appended).expect("update succeeds on valid data"),
                "{} must warm-start",
                warm.name()
            );
            consumed += chunk.len();
            let mut cold = build();
            cold.fit(&ts(values[..consumed].to_vec()))
                .expect("fit succeeds on valid training data");
            assert_eq!(
                warm.forecast(7).expect("forecast succeeds on a fitted model"),
                cold.forecast(7).expect("forecast succeeds on a fitted model"),
                "{} warm-start diverged from refit at prefix {consumed}",
                warm.name()
            );
        }
    }

    #[test]
    fn warm_start_families_match_refit_bitwise() {
        let values: Vec<f64> =
            (0..80).map(|t| 5.0 + 0.3 * t as f64 + ((t % 12) as f64) * 1.7).collect();
        assert_update_matches_refit(|| Box::new(Naive::new()), values.clone());
        assert_update_matches_refit(|| Box::new(SeasonalNaive::new(Some(12))), values.clone());
        assert_update_matches_refit(|| Box::new(Drift::new()), values.clone());
        assert_update_matches_refit(|| Box::new(MeanForecaster::new()), values.clone());
        assert_update_matches_refit(
            || Box::new(WindowAverage::new(5).expect("valid window")),
            values.clone(),
        );
        assert_update_matches_refit(
            || Box::new(SeasonalWindowAverage::new(Some(12), 3).expect("valid cycles")),
            values,
        );
    }

    #[test]
    fn update_on_unfitted_model_requests_refit() {
        let appended = ts(vec![1.0, 2.0]);
        assert_eq!(Naive::new().update(&appended), Ok(false));
        assert_eq!(SeasonalNaive::new(Some(3)).update(&appended), Ok(false));
        assert_eq!(Drift::new().update(&appended), Ok(false));
        assert_eq!(MeanForecaster::new().update(&appended), Ok(false));
        // Default trait impl: not-warm-startable families always refit.
        assert_eq!(LinearTrend::new().update(&appended), Ok(false));
    }

    #[test]
    fn seasonal_update_requests_refit_when_effective_period_changes() {
        // Fit on 3 points with period 12 → degraded to period 1; once the
        // prefix reaches 12 points a refit must be requested.
        let mut m = SeasonalNaive::new(Some(12));
        m.fit(&ts(vec![1.0, 2.0, 3.0])).expect("fit succeeds on valid training data");
        let before = m.forecast(2).expect("forecast succeeds on a fitted model");
        let appended = ts((0..9).map(|t| t as f64).collect());
        assert_eq!(m.update(&appended), Ok(false));
        // The Ok(false) contract: the model is unchanged.
        assert_eq!(m.forecast(2).expect("forecast succeeds on a fitted model"), before);
    }

    #[test]
    fn forecast_into_matches_forecast_and_reuses_capacity() {
        let mut m = SeasonalNaive::new(Some(3));
        m.fit(&ts(vec![1.0, 2.0, 3.0, 4.0, 5.0])).expect("fit succeeds on valid training data");
        let mut out = Vec::new();
        m.forecast_into(7, &mut out).expect("forecast succeeds on a fitted model");
        assert_eq!(out, m.forecast(7).expect("forecast succeeds on a fitted model"));
        let cap = out.capacity();
        m.forecast_into(7, &mut out).expect("forecast succeeds on a fitted model");
        assert_eq!(out.capacity(), cap, "repeat forecasts must reuse the buffer");
        assert!(m.forecast_into(0, &mut out).is_err());
    }
}
