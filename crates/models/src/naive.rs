//! Naive baseline forecasters.
//!
//! These are the reference methods every benchmark needs: they anchor the
//! leaderboard (a method that loses to `naive` is not working) and MASE is
//! defined relative to the seasonal-naive error.

use crate::{check_horizon, check_train, Forecaster, ModelError, Result};
use easytime_data::TimeSeries;
use easytime_linalg::stats::mean;

/// Repeats the last observed value.
#[derive(Debug, Clone, Default)]
pub struct Naive {
    last: Option<f64>,
}

impl Naive {
    /// Creates an unfitted naive forecaster.
    pub fn new() -> Naive {
        Naive::default()
    }
}

impl Forecaster for Naive {
    fn name(&self) -> &str {
        "naive"
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        check_train(train, 1)?;
        self.last = Some(train.last());
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        let last = self.last.ok_or(ModelError::NotFitted)?;
        Ok(vec![last; horizon])
    }

    fn min_train_len(&self) -> usize {
        1
    }
}

/// Repeats the last full seasonal cycle.
///
/// When no period is supplied, the training series' frequency default is
/// used; series without a usable period degrade to [`Naive`] behaviour.
#[derive(Debug, Clone)]
pub struct SeasonalNaive {
    period: Option<usize>,
    cycle: Vec<f64>,
}

impl SeasonalNaive {
    /// Creates a seasonal-naive forecaster with an optional explicit period.
    pub fn new(period: Option<usize>) -> SeasonalNaive {
        SeasonalNaive { period, cycle: Vec::new() }
    }

    fn effective_period(&self, train: &TimeSeries) -> usize {
        self.period
            .or_else(|| train.frequency().default_period())
            .filter(|&p| p >= 1 && p <= train.len())
            .unwrap_or(1)
    }
}

impl Forecaster for SeasonalNaive {
    fn name(&self) -> &str {
        "seasonal_naive"
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        check_train(train, 1)?;
        let p = self.effective_period(train);
        let v = train.values();
        self.cycle = v[v.len() - p..].to_vec();
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        if self.cycle.is_empty() {
            return Err(ModelError::NotFitted);
        }
        Ok((0..horizon).map(|h| self.cycle[h % self.cycle.len()]).collect())
    }

    fn min_train_len(&self) -> usize {
        1
    }
}

/// Random-walk-with-drift forecast: extrapolates the average first
/// difference of the training data.
#[derive(Debug, Clone, Default)]
pub struct Drift {
    last: Option<f64>,
    slope: f64,
}

impl Drift {
    /// Creates an unfitted drift forecaster.
    pub fn new() -> Drift {
        Drift::default()
    }
}

impl Forecaster for Drift {
    fn name(&self) -> &str {
        "drift"
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        check_train(train, 2)?;
        let v = train.values();
        self.last = Some(train.last());
        self.slope = (v[v.len() - 1] - v[0]) / (v.len() - 1) as f64;
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        let last = self.last.ok_or(ModelError::NotFitted)?;
        Ok((1..=horizon).map(|h| last + self.slope * h as f64).collect())
    }

    fn min_train_len(&self) -> usize {
        2
    }
}

/// Forecasts the grand mean of the training data.
#[derive(Debug, Clone, Default)]
pub struct MeanForecaster {
    mean: Option<f64>,
}

impl MeanForecaster {
    /// Creates an unfitted mean forecaster.
    pub fn new() -> MeanForecaster {
        MeanForecaster::default()
    }
}

impl Forecaster for MeanForecaster {
    fn name(&self) -> &str {
        "mean"
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        check_train(train, 1)?;
        self.mean = Some(mean(train.values()));
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        let m = self.mean.ok_or(ModelError::NotFitted)?;
        Ok(vec![m; horizon])
    }

    fn min_train_len(&self) -> usize {
        1
    }
}

/// Forecasts the mean of the last `window` observations.
#[derive(Debug, Clone)]
pub struct WindowAverage {
    window: usize,
    value: Option<f64>,
    name: String,
}

impl WindowAverage {
    /// Creates a window-average forecaster over the trailing `window` points.
    pub fn new(window: usize) -> Result<WindowAverage> {
        if window == 0 {
            return Err(ModelError::InvalidParam { what: "window must be at least 1".into() });
        }
        Ok(WindowAverage { window, value: None, name: format!("window_average_{window}") })
    }
}

impl Forecaster for WindowAverage {
    fn name(&self) -> &str {
        &self.name
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        check_train(train, 1)?;
        let v = train.values();
        let w = self.window.min(v.len());
        self.value = Some(mean(&v[v.len() - w..]));
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        let m = self.value.ok_or(ModelError::NotFitted)?;
        Ok(vec![m; horizon])
    }

    fn min_train_len(&self) -> usize {
        1
    }
}

/// Forecasts each step as the mean of the historical values at the same
/// seasonal phase (a smoothed seasonal-naive; robust when single cycles
/// are noisy).
#[derive(Debug, Clone)]
pub struct SeasonalWindowAverage {
    period: Option<usize>,
    cycles: usize,
    profile: Vec<f64>,
}

impl SeasonalWindowAverage {
    /// Creates the forecaster, averaging the last `cycles` occurrences of
    /// each phase (period from the argument or the series frequency).
    pub fn new(period: Option<usize>, cycles: usize) -> Result<SeasonalWindowAverage> {
        if cycles == 0 {
            return Err(ModelError::InvalidParam { what: "cycles must be ≥ 1".into() });
        }
        Ok(SeasonalWindowAverage { period, cycles, profile: Vec::new() })
    }
}

impl Forecaster for SeasonalWindowAverage {
    fn name(&self) -> &str {
        "seasonal_avg"
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        check_train(train, 2)?;
        let p = self
            .period
            .or_else(|| train.frequency().default_period())
            .filter(|&p| p >= 1 && p <= train.len())
            .unwrap_or(1);
        let v = train.values();
        let n = v.len();
        // profile[h] predicts step n + h, whose seasonal phase is
        // (n + h) % p: average the last `cycles` training values at that
        // phase.
        let mut profile = vec![0.0; p];
        for (h, slot) in profile.iter_mut().enumerate() {
            let target_phase = (n + h) % p;
            let mut sum = 0.0;
            let mut count = 0usize;
            let mut t = n;
            while t > 0 && count < self.cycles {
                t -= 1;
                if t % p == target_phase {
                    sum += v[t];
                    count += 1;
                }
            }
            *slot = sum / count.max(1) as f64;
        }
        self.profile = profile;
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        if self.profile.is_empty() {
            return Err(ModelError::NotFitted);
        }
        Ok((0..horizon).map(|h| self.profile[h % self.profile.len()]).collect())
    }

    fn min_train_len(&self) -> usize {
        2
    }
}

/// Forecasts by extrapolating the global least-squares line — the pure
/// trend model (distinct from [`Drift`], which uses only the endpoints).
#[derive(Debug, Clone, Default)]
pub struct LinearTrend {
    fitted: Option<(f64, f64, usize)>, // (intercept, slope, n)
}

impl LinearTrend {
    /// Creates an unfitted linear-trend forecaster.
    pub fn new() -> LinearTrend {
        LinearTrend::default()
    }
}

impl Forecaster for LinearTrend {
    fn name(&self) -> &str {
        "linear_trend"
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        check_train(train, 2)?;
        let (b, m) = easytime_linalg::stats::linear_trend(train.values());
        self.fitted = Some((b, m, train.len()));
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        let (b, m, n) = self.fitted.ok_or(ModelError::NotFitted)?;
        Ok((0..horizon).map(|h| b + m * (n + h) as f64).collect())
    }

    fn min_train_len(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easytime_data::Frequency;

    fn ts(values: Vec<f64>) -> TimeSeries {
        TimeSeries::new("t", values, Frequency::Monthly).expect("construction succeeds with valid parameters")
    }

    #[test]
    fn naive_repeats_last_value() {
        let mut m = Naive::new();
        m.fit(&ts(vec![1.0, 2.0, 7.0])).expect("fit succeeds on valid training data");
        assert_eq!(m.forecast(3).expect("forecast succeeds on a fitted model"), vec![7.0, 7.0, 7.0]);
    }

    #[test]
    fn unfitted_models_error() {
        assert_eq!(Naive::new().forecast(1), Err(ModelError::NotFitted));
        assert_eq!(SeasonalNaive::new(Some(2)).forecast(1), Err(ModelError::NotFitted));
        assert_eq!(Drift::new().forecast(1), Err(ModelError::NotFitted));
        assert_eq!(MeanForecaster::new().forecast(1), Err(ModelError::NotFitted));
    }

    #[test]
    fn zero_horizon_is_rejected() {
        let mut m = Naive::new();
        m.fit(&ts(vec![1.0])).expect("fit succeeds on valid training data");
        assert!(matches!(m.forecast(0), Err(ModelError::InvalidParam { .. })));
    }

    #[test]
    fn seasonal_naive_repeats_cycle() {
        let mut m = SeasonalNaive::new(Some(3));
        m.fit(&ts(vec![9.0, 9.0, 1.0, 2.0, 3.0])).expect("fit succeeds on valid training data");
        assert_eq!(m.forecast(7).expect("forecast succeeds on a fitted model"), vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 1.0]);
    }

    #[test]
    fn seasonal_naive_uses_frequency_default() {
        // Monthly frequency → period 12.
        let values: Vec<f64> = (0..24).map(|t| (t % 12) as f64).collect();
        let mut m = SeasonalNaive::new(None);
        m.fit(&ts(values)).expect("fit succeeds on valid training data");
        let f = m.forecast(12).expect("forecast succeeds on a fitted model");
        assert_eq!(f, (0..12).map(|t| t as f64).collect::<Vec<_>>());
    }

    #[test]
    fn seasonal_naive_degrades_to_naive_when_period_too_long() {
        let mut m = SeasonalNaive::new(Some(100));
        m.fit(&ts(vec![1.0, 2.0, 5.0])).expect("fit succeeds on valid training data");
        assert_eq!(m.forecast(2).expect("forecast succeeds on a fitted model"), vec![5.0, 5.0]);
    }

    #[test]
    fn drift_extrapolates_linearly() {
        let mut m = Drift::new();
        m.fit(&ts(vec![0.0, 1.0, 2.0, 3.0])).expect("fit succeeds on valid training data");
        assert_eq!(m.forecast(3).expect("forecast succeeds on a fitted model"), vec![4.0, 5.0, 6.0]);
        assert!(matches!(
            Drift::new().fit(&ts(vec![1.0])),
            Err(ModelError::TooShort { needed: 2, got: 1 })
        ));
    }

    #[test]
    fn mean_and_window_average() {
        let mut m = MeanForecaster::new();
        m.fit(&ts(vec![1.0, 2.0, 3.0, 4.0])).expect("fit succeeds on valid training data");
        assert_eq!(m.forecast(2).expect("forecast succeeds on a fitted model"), vec![2.5, 2.5]);

        let mut w = WindowAverage::new(2).expect("construction succeeds with valid parameters");
        w.fit(&ts(vec![1.0, 2.0, 3.0, 5.0])).expect("fit succeeds on valid training data");
        assert_eq!(w.forecast(2).expect("forecast succeeds on a fitted model"), vec![4.0, 4.0]);
        assert_eq!(w.name(), "window_average_2");
        assert!(WindowAverage::new(0).is_err());
    }

    #[test]
    fn seasonal_average_smooths_noisy_cycles() {
        // Period 3, two cycles with noise ±1 around [10, 20, 30].
        let values = vec![11.0, 19.0, 31.0, 9.0, 21.0, 29.0];
        let mut m = SeasonalWindowAverage::new(Some(3), 2).expect("construction succeeds with valid parameters");
        m.fit(&ts(values)).expect("fit succeeds on valid training data");
        let f = m.forecast(3).expect("forecast succeeds on a fitted model");
        // n = 6 → step 6 has phase 0 → mean(11, 9) = 10.
        assert_eq!(f, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn seasonal_average_phase_alignment_with_partial_cycle() {
        // 7 points, period 3: the next step (t=7) has phase 1.
        let values = vec![0.0, 10.0, 20.0, 1.0, 11.0, 21.0, 2.0];
        let mut m = SeasonalWindowAverage::new(Some(3), 10).expect("construction succeeds with valid parameters");
        m.fit(&ts(values)).expect("fit succeeds on valid training data");
        let f = m.forecast(2).expect("forecast succeeds on a fitted model");
        assert_eq!(f[0], 10.5); // mean of phase-1 values {10, 11}
        assert_eq!(f[1], 20.5); // mean of phase-2 values {20, 21}
    }

    #[test]
    fn seasonal_average_validates_and_degrades() {
        assert!(SeasonalWindowAverage::new(Some(4), 0).is_err());
        assert!(matches!(
            SeasonalWindowAverage::new(Some(4), 2).expect("construction succeeds with valid parameters").forecast(1),
            Err(ModelError::NotFitted)
        ));
        // No usable period → behaves like a trailing mean of `cycles`
        // values.
        let series =
            TimeSeries::new("u", vec![1.0, 2.0, 3.0, 4.0], Frequency::Unknown).expect("construction succeeds with valid parameters");
        let mut m = SeasonalWindowAverage::new(None, 2).expect("construction succeeds with valid parameters");
        m.fit(&series).expect("fit succeeds on valid training data");
        assert_eq!(m.forecast(2).expect("forecast succeeds on a fitted model"), vec![3.5, 3.5]);
    }

    #[test]
    fn linear_trend_extrapolates_the_regression_line() {
        let values: Vec<f64> = (0..50).map(|t| 3.0 + 0.5 * t as f64).collect();
        let mut m = LinearTrend::new();
        m.fit(&ts(values)).expect("fit succeeds on valid training data");
        let f = m.forecast(3).expect("forecast succeeds on a fitted model");
        for (h, v) in f.iter().enumerate() {
            let expected = 3.0 + 0.5 * (50 + h) as f64;
            assert!((v - expected).abs() < 1e-9, "h={h}: {v} vs {expected}");
        }
        assert!(matches!(LinearTrend::new().forecast(1), Err(ModelError::NotFitted)));
    }

    #[test]
    fn linear_trend_is_robust_to_endpoint_outliers_unlike_drift() {
        // A flat series with a single spiked endpoint: drift extrapolates
        // the spike, the regression line barely moves.
        let mut values = vec![10.0; 60];
        values[59] = 40.0;
        let mut lt = LinearTrend::new();
        lt.fit(&ts(values.clone())).expect("value is present");
        let mut dr = Drift::new();
        dr.fit(&ts(values)).expect("fit succeeds on valid training data");
        let f_lt = lt.forecast(10).expect("forecast succeeds on a fitted model")[9];
        let f_dr = dr.forecast(10).expect("forecast succeeds on a fitted model")[9];
        assert!((f_lt - 10.0).abs() < 3.0, "linear trend {f_lt}");
        assert!(f_dr > 40.0, "drift should chase the spike: {f_dr}");
    }

    #[test]
    fn window_longer_than_series_uses_all_data() {
        let mut w = WindowAverage::new(100).expect("construction succeeds with valid parameters");
        w.fit(&ts(vec![2.0, 4.0])).expect("fit succeeds on valid training data");
        assert_eq!(w.forecast(1).expect("forecast succeeds on a fitted model"), vec![3.0]);
    }
}
