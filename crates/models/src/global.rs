//! A pooled "global" forecaster — the stand-in for the *foundation time
//! series forecasting methods* TFB's method layer supports (paper §II-A).
//!
//! Foundation TSF models are pretrained across many series and applied
//! zero-shot to new ones. [`GlobalRidge`] reproduces that workflow at
//! benchmark scale: it pools instance-normalized lag windows from an
//! entire corpus into one ridge regression, and [`GlobalRidge::specialize`]
//! then yields a per-series [`Forecaster`] that applies the shared weights
//! without any per-series training — the zero-shot path.

use crate::{check_horizon, Forecaster, ModelError, Result};
use easytime_data::TimeSeries;
use easytime_linalg::kernels::dot;
use easytime_linalg::stats::{mean, std_dev};
use easytime_linalg::{ridge, Matrix};

/// A corpus-pretrained linear forecaster applied zero-shot per series.
#[derive(Debug, Clone)]
pub struct GlobalRidge {
    lookback: usize,
    lambda: f64,
    beta: Option<Vec<f64>>,
}

impl GlobalRidge {
    /// Creates an untrained global model with `lookback` lags.
    pub fn new(lookback: usize, lambda: f64) -> Result<GlobalRidge> {
        if lookback == 0 {
            return Err(ModelError::InvalidParam { what: "lookback must be ≥ 1".into() });
        }
        if lambda < 0.0 {
            return Err(ModelError::InvalidParam { what: "lambda must be ≥ 0".into() });
        }
        Ok(GlobalRidge { lookback, lambda, beta: None })
    }

    /// Number of lags the model consumes.
    pub fn lookback(&self) -> usize {
        self.lookback
    }

    /// True once the corpus pretraining has run.
    pub fn is_pretrained(&self) -> bool {
        self.beta.is_some()
    }

    /// Pretrains on a corpus: every series contributes its z-scored lag
    /// windows to one pooled least-squares problem. Series shorter than
    /// `lookback + 1` are skipped; at least one usable series is required.
    pub fn fit_corpus(&mut self, corpus: &[TimeSeries]) -> Result<()> {
        let lb = self.lookback;
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut targets: Vec<f64> = Vec::new();
        for series in corpus {
            let raw = series.values();
            if raw.len() < lb + 2 {
                continue;
            }
            // Instance normalization per series: the global model learns
            // shape, not scale (what makes zero-shot transfer work).
            let mu = mean(raw);
            let sigma = std_dev(raw).max(1e-9);
            let z: Vec<f64> = raw.iter().map(|v| (v - mu) / sigma).collect();
            for t in lb..z.len() {
                let mut row = Vec::with_capacity(lb + 1);
                row.push(1.0);
                row.extend((1..=lb).map(|j| z[t - j]));
                rows.push(row);
                targets.push(z[t]);
            }
        }
        if rows.is_empty() {
            return Err(ModelError::TooShort { needed: lb + 2, got: 0 });
        }
        let x = Matrix::from_rows(&rows);
        let beta =
            ridge(&x, &targets, self.lambda).map_err(|e| ModelError::Numeric { what: e.to_string() })?;
        self.beta = Some(beta);
        Ok(())
    }

    /// Zero-shot specialization: binds the shared weights to one series'
    /// normalization statistics and tail. No per-series training happens.
    pub fn specialize(&self, series: &TimeSeries) -> Result<SpecializedGlobal> {
        let beta = self.beta.clone().ok_or(ModelError::NotFitted)?;
        let raw = series.values();
        if raw.len() < self.lookback {
            return Err(ModelError::TooShort { needed: self.lookback, got: raw.len() });
        }
        let mu = mean(raw);
        let sigma = std_dev(raw).max(1e-9);
        let tail: Vec<f64> =
            raw[raw.len() - self.lookback..].iter().map(|v| (v - mu) / sigma).collect();
        Ok(SpecializedGlobal { beta, mu, sigma, tail, lookback: self.lookback })
    }
}

/// The per-series zero-shot view of a pretrained [`GlobalRidge`].
#[derive(Debug, Clone)]
pub struct SpecializedGlobal {
    beta: Vec<f64>,
    mu: f64,
    sigma: f64,
    tail: Vec<f64>,
    lookback: usize,
}

impl Forecaster for SpecializedGlobal {
    fn name(&self) -> &str {
        "global_ridge"
    }

    /// Zero-shot: "fitting" only refreshes the normalization statistics
    /// and tail from the (possibly longer) series — the weights stay
    /// frozen, as for a foundation model.
    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        let raw = train.values();
        if raw.len() < self.lookback {
            return Err(ModelError::TooShort { needed: self.lookback, got: raw.len() });
        }
        self.mu = mean(raw);
        self.sigma = std_dev(raw).max(1e-9);
        self.tail =
            raw[raw.len() - self.lookback..].iter().map(|v| (v - self.mu) / self.sigma).collect();
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        // Reversed lag weights turn each step into one contiguous dot
        // over the trailing window.
        let rev: Vec<f64> = self.beta[1..].iter().rev().copied().collect();
        let mut hist = self.tail.clone();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let z = self.beta[0] + dot(&rev, &hist[hist.len() - self.lookback..]);
            out.push(z * self.sigma + self.mu);
            hist.push(z);
            if hist.len() > self.lookback {
                hist.remove(0);
            }
        }
        Ok(out)
    }

    fn min_train_len(&self) -> usize {
        self.lookback
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easytime_data::Frequency;
    use std::f64::consts::PI;

    fn sine_series(name: &str, n: usize, period: f64, level: f64, amp: f64) -> TimeSeries {
        let values: Vec<f64> =
            (0..n).map(|t| level + amp * (2.0 * PI * t as f64 / period).sin()).collect();
        TimeSeries::new(name, values, Frequency::Monthly).unwrap()
    }

    #[test]
    fn pretrain_then_zero_shot_on_unseen_scale() {
        // Corpus of sines at various levels/amplitudes; the global model
        // must transfer to a series at a scale it never saw, thanks to
        // instance normalization.
        let corpus: Vec<TimeSeries> = (0..6)
            .map(|i| sine_series(&format!("c{i}"), 240, 12.0, i as f64 * 10.0, 1.0 + i as f64))
            .collect();
        let mut global = GlobalRidge::new(24, 1e-3).unwrap();
        global.fit_corpus(&corpus).unwrap();
        assert!(global.is_pretrained());

        let fresh = sine_series("fresh", 240, 12.0, 1e6, 500.0);
        let model = global.specialize(&fresh).unwrap();
        let forecast = model.forecast(12).unwrap();
        for (h, v) in forecast.iter().enumerate() {
            let t = 240 + h;
            let expected = 1e6 + 500.0 * (2.0 * PI * t as f64 / 12.0).sin();
            assert!(
                (v - expected).abs() < 50.0,
                "h={h}: {v} vs {expected} — zero-shot transfer failed"
            );
        }
    }

    #[test]
    fn specialization_requires_pretraining() {
        let global = GlobalRidge::new(8, 1e-3).unwrap();
        let s = sine_series("s", 100, 12.0, 0.0, 1.0);
        assert!(matches!(global.specialize(&s), Err(ModelError::NotFitted)));
    }

    #[test]
    fn validates_construction_and_lengths() {
        assert!(GlobalRidge::new(0, 0.1).is_err());
        assert!(GlobalRidge::new(8, -0.1).is_err());
        let mut g = GlobalRidge::new(16, 1e-3).unwrap();
        // Corpus of too-short series is rejected.
        let shorts: Vec<TimeSeries> = (0..3)
            .map(|i| sine_series(&format!("s{i}"), 10, 4.0, 0.0, 1.0))
            .collect();
        assert!(matches!(g.fit_corpus(&shorts), Err(ModelError::TooShort { .. })));
        // Specializing on a series shorter than the lookback is rejected.
        g.fit_corpus(&[sine_series("ok", 120, 12.0, 0.0, 1.0)]).unwrap();
        assert!(matches!(
            g.specialize(&sine_series("tiny", 8, 4.0, 0.0, 1.0)),
            Err(ModelError::TooShort { .. })
        ));
    }

    #[test]
    fn refit_updates_anchor_but_not_weights() {
        let corpus = vec![sine_series("c", 240, 12.0, 5.0, 2.0)];
        let mut global = GlobalRidge::new(12, 1e-3).unwrap();
        global.fit_corpus(&corpus).unwrap();
        let series_a = sine_series("a", 120, 12.0, 0.0, 1.0);
        let series_b = sine_series("b", 120, 12.0, 100.0, 1.0);
        let mut model = global.specialize(&series_a).unwrap();
        let fa = model.forecast(3).unwrap();
        model.fit(&series_b).unwrap();
        let fb = model.forecast(3).unwrap();
        // Level follows the new series; dynamics (shared weights) persist.
        assert!(fb[0] > 50.0, "anchor should move to the new level: {fb:?}");
        assert!(fa[0] < 50.0);
        assert_eq!(model.name(), "global_ridge");
    }
}
