//! Multivariate forecasting: vector autoregression (VAR).
//!
//! TFB's corpus includes 25 multivariate datasets; the Correlation
//! characteristic only matters to methods that can exploit cross-channel
//! structure. [`Var`] fits one ridge-regularized equation per channel on the
//! lagged values of *all* channels, and a [`ChannelIndependent`] wrapper
//! runs any univariate zoo member per channel as the baseline that ignores
//! correlation.

use crate::{check_horizon, Forecaster, ModelError, Result};
use easytime_data::{MultiSeries, TimeSeries};
use easytime_linalg::kernels::dot;
use easytime_linalg::{ridge, Matrix};

/// The multivariate counterpart of [`Forecaster`].
pub trait MultiForecaster: Send {
    /// Canonical method name.
    fn name(&self) -> &str;

    /// Fits on a multivariate training series.
    fn fit(&mut self, train: &MultiSeries) -> Result<()>;

    /// Forecasts `horizon` steps for every channel; the outer vector is
    /// indexed by channel.
    fn forecast(&self, horizon: usize) -> Result<Vec<Vec<f64>>>;
}

/// Vector autoregression of order `p` with ridge-regularized per-equation
/// least squares.
#[derive(Debug, Clone)]
pub struct Var {
    order: usize,
    lambda: f64,
    name: String,
    fitted: Option<VarState>,
}

#[derive(Debug, Clone)]
struct VarState {
    /// Coefficients per channel equation: `[intercept, lag1_ch0.., lag2_ch0..]`.
    equations: Vec<Vec<f64>>,
    /// Trailing observations per channel, newest last.
    tails: Vec<Vec<f64>>,
    order: usize,
}

impl Var {
    /// Creates a VAR(p) forecaster.
    pub fn new(order: usize, lambda: f64) -> Result<Var> {
        if order == 0 {
            return Err(ModelError::InvalidParam { what: "VAR order must be ≥ 1".into() });
        }
        if lambda < 0.0 {
            return Err(ModelError::InvalidParam { what: "lambda must be ≥ 0".into() });
        }
        Ok(Var { order, lambda, name: format!("var_{order}"), fitted: None })
    }
}

impl MultiForecaster for Var {
    fn name(&self) -> &str {
        &self.name
    }

    fn fit(&mut self, train: &MultiSeries) -> Result<()> {
        let k = train.num_channels();
        let n = train.len();
        let p = self.order;
        if n < p * k + p + 4 {
            return Err(ModelError::TooShort { needed: p * k + p + 4, got: n });
        }
        let rows = n - p;
        let cols = 1 + p * k;
        // Shared design matrix: [1, y_{t-1,0..k}, y_{t-2,0..k}, …].
        let x = Matrix::from_fn(rows, cols, |i, j| {
            if j == 0 {
                1.0
            } else {
                let lag = (j - 1) / k + 1;
                let ch = (j - 1) % k;
                train.channel(ch)[p + i - lag]
            }
        });
        let mut equations = Vec::with_capacity(k);
        for ch in 0..k {
            let y: Vec<f64> = train.channel(ch)[p..].to_vec();
            let beta = ridge(&x, &y, self.lambda)
                .map_err(|e| ModelError::Numeric { what: e.to_string() })?;
            equations.push(beta);
        }
        let tails: Vec<Vec<f64>> =
            (0..k).map(|ch| train.channel(ch)[n - p..].to_vec()).collect();
        self.fitted = Some(VarState { equations, tails, order: p });
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<Vec<f64>>> {
        check_horizon(horizon)?;
        let st = self.fitted.as_ref().ok_or(ModelError::NotFitted)?;
        let k = st.equations.len();
        let p = st.order;
        let mut hists = st.tails.clone();
        let mut out = vec![Vec::with_capacity(horizon); k];
        // Lag state flattened to match the equation layout
        // `[y_{t-1,0..k}, y_{t-2,0..k}, …]`, so every equation reduces to
        // one contiguous dot against the shared state vector.
        let mut state = vec![0.0; p * k];
        for _ in 0..horizon {
            for lag in 1..=p {
                for (ch, hist) in hists.iter().enumerate() {
                    state[(lag - 1) * k + ch] = hist[hist.len() - lag];
                }
            }
            let next: Vec<f64> =
                st.equations.iter().map(|eq| eq[0] + dot(&eq[1..], &state)).collect();
            for (ch, &v) in next.iter().enumerate() {
                out[ch].push(v);
                hists[ch].push(v);
                if hists[ch].len() > p {
                    hists[ch].remove(0);
                }
            }
        }
        Ok(out)
    }
}

/// Declarative specification of a multivariate method, mirroring
/// [`crate::ModelSpec`] for the multivariate tier of the zoo.
#[derive(Debug, Clone, PartialEq)]
pub enum MultiModelSpec {
    /// Vector autoregression of the given order.
    Var {
        /// AR order.
        order: usize,
    },
    /// A univariate zoo member applied independently per channel.
    PerChannel(crate::ModelSpec),
}

impl MultiModelSpec {
    /// Canonical method name.
    pub fn name(&self) -> String {
        match self {
            MultiModelSpec::Var { order } => format!("var_{order}"),
            MultiModelSpec::PerChannel(spec) => format!("ci_{}", spec.name()),
        }
    }

    /// Builds the multivariate forecaster.
    pub fn build(&self) -> crate::Result<Box<dyn MultiForecaster>> {
        Ok(match self {
            MultiModelSpec::Var { order } => Box::new(Var::new(*order, 1e-4)?),
            MultiModelSpec::PerChannel(spec) => {
                let spec = spec.clone();
                let name = self.name();
                Box::new(DynChannelIndependent { spec, name, fitted: Vec::new() })
            }
        })
    }
}

/// Channel-independent wrapper over a boxed zoo member (object-safe
/// variant of [`ChannelIndependent`], used by [`MultiModelSpec`]).
struct DynChannelIndependent {
    spec: crate::ModelSpec,
    name: String,
    fitted: Vec<Box<dyn Forecaster>>,
}

impl MultiForecaster for DynChannelIndependent {
    fn name(&self) -> &str {
        &self.name
    }

    fn fit(&mut self, train: &MultiSeries) -> Result<()> {
        let mut fitted = Vec::with_capacity(train.num_channels());
        for ch in 0..train.num_channels() {
            let series = train.to_univariate(ch)?;
            let mut model = self.spec.build()?;
            model.fit(&series)?;
            fitted.push(model);
        }
        self.fitted = fitted;
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<Vec<f64>>> {
        if self.fitted.is_empty() {
            return Err(ModelError::NotFitted);
        }
        self.fitted.iter().map(|m| m.forecast(horizon)).collect()
    }
}

/// Runs an independent copy of a univariate forecaster on every channel —
/// the "channel-independent" baseline that ignores cross-correlation.
// lint: allow(dead-pub) — channel-independent multivariate strategy kept exported for the zoo's next milestone
pub struct ChannelIndependent<F> {
    make: Box<dyn Fn() -> F + Send>,
    name: String,
    fitted: Vec<F>,
}

impl<F> std::fmt::Debug for ChannelIndependent<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelIndependent")
            .field("name", &self.name)
            .field("channels", &self.fitted.len())
            .finish_non_exhaustive()
    }
}

impl<F: Forecaster> ChannelIndependent<F> {
    /// Creates the wrapper from a factory closure for the inner method.
    pub fn new(name: impl Into<String>, make: impl Fn() -> F + Send + 'static) -> Self {
        ChannelIndependent { make: Box::new(make), name: name.into(), fitted: Vec::new() }
    }
}

impl<F: Forecaster> MultiForecaster for ChannelIndependent<F> {
    fn name(&self) -> &str {
        &self.name
    }

    fn fit(&mut self, train: &MultiSeries) -> Result<()> {
        let mut fitted = Vec::with_capacity(train.num_channels());
        for ch in 0..train.num_channels() {
            let series: TimeSeries = train.to_univariate(ch)?;
            let mut model = (self.make)();
            model.fit(&series)?;
            fitted.push(model);
        }
        self.fitted = fitted;
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<Vec<f64>>> {
        if self.fitted.is_empty() {
            return Err(ModelError::NotFitted);
        }
        self.fitted.iter().map(|m| m.forecast(horizon)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::Naive;
    use easytime_data::Frequency;

    /// Two channels where channel 1 lags channel 0 by one step — pure
    /// cross-channel signal that VAR can exploit and per-channel models
    /// cannot.
    fn coupled_series(n: usize) -> MultiSeries {
        let driver: Vec<f64> = (0..n).map(|t| ((t as f64) * 0.9).sin()).collect();
        let follower: Vec<f64> =
            (0..n).map(|t| if t == 0 { 0.0 } else { driver[t - 1] }).collect();
        MultiSeries::new(
            "coupled",
            vec!["driver".into(), "follower".into()],
            vec![driver, follower],
            Frequency::Hourly,
        )
        .unwrap()
    }

    #[test]
    fn var_exploits_cross_channel_lag() {
        let ms = coupled_series(300);
        let mut var = Var::new(2, 1e-6).unwrap();
        var.fit(&ms).unwrap();
        let f = var.forecast(1).unwrap();
        // follower[n] should equal driver[n-1] exactly.
        let expected = ms.channel(0)[299];
        assert!(
            (f[1][0] - expected).abs() < 0.05,
            "VAR follower forecast {} vs driver last {}",
            f[1][0],
            expected
        );
    }

    #[test]
    fn var_forecast_shapes_are_consistent() {
        let ms = coupled_series(120);
        let mut var = Var::new(3, 1e-4).unwrap();
        var.fit(&ms).unwrap();
        let f = var.forecast(7).unwrap();
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|ch| ch.len() == 7));
        assert!(f.iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn var_validates_parameters_and_length() {
        assert!(Var::new(0, 0.1).is_err());
        assert!(Var::new(2, -0.1).is_err());
        let short = coupled_series(8);
        assert!(matches!(Var::new(3, 0.1).unwrap().fit(&short), Err(ModelError::TooShort { .. })));
        assert!(matches!(Var::new(2, 0.1).unwrap().forecast(3), Err(ModelError::NotFitted)));
    }

    #[test]
    fn channel_independent_wraps_univariate_models() {
        let ms = coupled_series(60);
        let mut ci = ChannelIndependent::new("ci_naive", Naive::new);
        ci.fit(&ms).unwrap();
        let f = ci.forecast(3).unwrap();
        assert_eq!(f.len(), 2);
        // Naive repeats each channel's last value.
        assert!((f[0][0] - ms.channel(0)[59]).abs() < 1e-12);
        assert!((f[1][2] - ms.channel(1)[59]).abs() < 1e-12);
        assert_eq!(ci.name(), "ci_naive");

        let unfitted: ChannelIndependent<Naive> = ChannelIndependent::new("x", Naive::new);
        assert!(matches!(unfitted.forecast(1), Err(ModelError::NotFitted)));
    }
}
