//! Linear-family forecasters: lag ridge regression, DLinear, and NLinear.
//!
//! The linear family is the strongest small-data group in recent TSF
//! benchmarks (and in TFB itself), which is why it anchors the "ML" tier of
//! the zoo. DLinear and NLinear follow Zeng et al.'s "Are Transformers
//! Effective for Time Series Forecasting?" recipe, adapted to the
//! horizon-agnostic recursive interface of this crate:
//!
//! * [`LagRidge`] — ridge regression on the last `lookback` values,
//!   applied recursively for multi-step forecasts.
//! * [`DLinear`] — decomposes into trend (moving average) and remainder and
//!   fits a separate linear model per component.
//! * [`NLinear`] — subtracts the window's last value before the linear map
//!   and adds it back, neutralizing level shifts.

use crate::{check_horizon, check_train, Forecaster, ModelError, Result};
use easytime_data::decompose::trailing_moving_average;
use easytime_data::TimeSeries;
use easytime_linalg::kernels::dot;
use easytime_linalg::{ridge, Matrix};

/// Fits `y[t] ≈ β₀ + Σ βᵢ y[t-i]` with ridge regularization.
fn fit_lag_model(values: &[f64], lookback: usize, lambda: f64) -> Result<Vec<f64>> {
    let n = values.len();
    if n < lookback + 2 {
        return Err(ModelError::TooShort { needed: lookback + 2, got: n });
    }
    let rows = n - lookback;
    let x = Matrix::from_fn(rows, lookback + 1, |i, j| {
        if j == 0 {
            1.0
        } else {
            values[lookback + i - j]
        }
    });
    let y: Vec<f64> = values[lookback..].to_vec();
    ridge(&x, &y, lambda).map_err(|e| ModelError::Numeric { what: e.to_string() })
}

/// Reverses the lag coefficients `beta[1..]` so a one-step prediction is a
/// contiguous dot with the newest-last history window.
fn reversed_lags(beta: &[f64]) -> Vec<f64> {
    beta[1..].iter().rev().copied().collect()
}

/// Recursive multi-step forecast with a fitted lag model.
fn forecast_recursive(beta: &[f64], tail: &[f64], horizon: usize) -> Vec<f64> {
    let lookback = beta.len() - 1;
    // Hoist the coefficient reversal so every step is one contiguous
    // four-lane dot over the trailing window.
    let rev = reversed_lags(beta);
    let mut hist = tail.to_vec();
    let mut out = Vec::with_capacity(horizon);
    for _ in 0..horizon {
        let v = beta[0] + dot(&rev, &hist[hist.len() - lookback..]);
        out.push(v);
        hist.push(v);
        if hist.len() > lookback {
            hist.remove(0);
        }
    }
    out
}

/// Ridge regression on lagged values.
#[derive(Debug, Clone)]
pub struct LagRidge {
    lookback: usize,
    lambda: f64,
    name: String,
    fitted: Option<(Vec<f64>, Vec<f64>)>, // (beta, tail)
}

impl LagRidge {
    /// Creates a lag-ridge forecaster with `lookback` lags and penalty
    /// `lambda`.
    pub fn new(lookback: usize, lambda: f64) -> Result<LagRidge> {
        if lookback == 0 {
            return Err(ModelError::InvalidParam { what: "lookback must be ≥ 1".into() });
        }
        if lambda < 0.0 {
            return Err(ModelError::InvalidParam { what: "lambda must be ≥ 0".into() });
        }
        Ok(LagRidge { lookback, lambda, name: format!("lag_ridge_{lookback}"), fitted: None })
    }
}

impl Forecaster for LagRidge {
    fn name(&self) -> &str {
        &self.name
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        check_train(train, self.min_train_len())?;
        let v = train.values();
        let lookback = self.lookback.min(v.len() / 2).max(1);
        let beta = fit_lag_model(v, lookback, self.lambda)?;
        let tail = v[v.len() - lookback..].to_vec();
        self.fitted = Some((beta, tail));
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        let (beta, tail) = self.fitted.as_ref().ok_or(ModelError::NotFitted)?;
        Ok(forecast_recursive(beta, tail, horizon))
    }

    fn min_train_len(&self) -> usize {
        // `fit` shrinks the lookback for short series; 8 points is the floor.
        8
    }
}

/// DLinear: separate linear models on the moving-average trend and the
/// remainder.
#[derive(Debug, Clone)]
pub struct DLinear {
    lookback: usize,
    kernel: usize,
    name: String,
    fitted: Option<DLinearState>,
}

#[derive(Debug, Clone)]
struct DLinearState {
    beta_trend: Vec<f64>,
    beta_resid: Vec<f64>,
    trend_tail: Vec<f64>,
    resid_tail: Vec<f64>,
}

impl DLinear {
    /// Creates DLinear with `lookback` lags and a moving-average kernel of
    /// `kernel` steps (25 in the original paper; scaled down for short
    /// series at fit time).
    pub fn new(lookback: usize, kernel: usize) -> Result<DLinear> {
        if lookback == 0 || kernel < 2 {
            return Err(ModelError::InvalidParam {
                what: "DLinear needs lookback ≥ 1 and kernel ≥ 2".into(),
            });
        }
        Ok(DLinear { lookback, kernel, name: format!("dlinear_{lookback}"), fitted: None })
    }
}

impl Forecaster for DLinear {
    fn name(&self) -> &str {
        &self.name
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        check_train(train, self.min_train_len())?;
        let v = train.values();
        let lookback = self.lookback.min(v.len() / 3).max(1);
        let kernel = self.kernel.min(v.len() / 4).max(2);

        // Trailing MA: causal, so the tail of the trend is not edge-biased
        // (see `trailing_moving_average` for the bias trade-off).
        let trend = trailing_moving_average(v, kernel);
        let resid: Vec<f64> = v.iter().zip(&trend).map(|(x, t)| x - t).collect();

        let beta_trend = fit_lag_model(&trend, lookback, 1e-4)?;
        let beta_resid = fit_lag_model(&resid, lookback, 1e-4)?;
        self.fitted = Some(DLinearState {
            beta_trend,
            beta_resid,
            trend_tail: trend[trend.len() - lookback..].to_vec(),
            resid_tail: resid[resid.len() - lookback..].to_vec(),
        });
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        let st = self.fitted.as_ref().ok_or(ModelError::NotFitted)?;
        let trend = forecast_recursive(&st.beta_trend, &st.trend_tail, horizon);
        let resid = forecast_recursive(&st.beta_resid, &st.resid_tail, horizon);
        Ok(trend.iter().zip(&resid).map(|(t, r)| t + r).collect())
    }

    fn min_train_len(&self) -> usize {
        12
    }
}

/// NLinear: linear model on the window after subtracting its last value.
///
/// The subtraction makes the model invariant to the absolute level, which is
/// exactly what helps under the *Shifting* characteristic.
#[derive(Debug, Clone)]
pub struct NLinear {
    lookback: usize,
    name: String,
    fitted: Option<(Vec<f64>, Vec<f64>)>, // (beta, tail)
}

impl NLinear {
    /// Creates NLinear with `lookback` lags.
    pub fn new(lookback: usize) -> Result<NLinear> {
        if lookback == 0 {
            return Err(ModelError::InvalidParam { what: "lookback must be ≥ 1".into() });
        }
        Ok(NLinear { lookback, name: format!("nlinear_{lookback}"), fitted: None })
    }
}

impl Forecaster for NLinear {
    fn name(&self) -> &str {
        &self.name
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        check_train(train, self.min_train_len())?;
        let v = train.values();
        let lookback = self.lookback.min(v.len() / 2).max(1);
        let n = v.len();
        let rows = n - lookback;
        // Design: normalized lags (value − window last); target similarly
        // normalized. Intercept column retained.
        let x = Matrix::from_fn(rows, lookback + 1, |i, j| {
            if j == 0 {
                1.0
            } else {
                let anchor = v[lookback + i - 1];
                v[lookback + i - j] - anchor
            }
        });
        let y: Vec<f64> = (0..rows).map(|i| v[lookback + i] - v[lookback + i - 1]).collect();
        let beta =
            ridge(&x, &y, 1e-4).map_err(|e| ModelError::Numeric { what: e.to_string() })?;
        self.fitted = Some((beta, v[n - lookback..].to_vec()));
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        let (beta, tail) = self.fitted.as_ref().ok_or(ModelError::NotFitted)?;
        let lookback = beta.len() - 1;
        let rev = reversed_lags(beta);
        let mut centered = vec![0.0; lookback];
        let mut hist = tail.to_vec();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            // lint: allow(panic) — fit stores lookback ≥ 1 trailing
            // observations and the loop below only appends, so the
            // history can never be empty here.
            let anchor = *hist.last().expect("history is never empty");
            // Anchor subtraction happens *before* the dot so the reduction
            // runs on small residuals, not raw levels (cancellation-safe).
            let window = &hist[hist.len() - lookback..];
            for (c, &h) in centered.iter_mut().zip(window) {
                *c = h - anchor;
            }
            let delta = beta[0] + dot(&rev, &centered);
            let v = anchor + delta;
            out.push(v);
            hist.push(v);
            if hist.len() > lookback {
                hist.remove(0);
            }
        }
        Ok(out)
    }

    fn min_train_len(&self) -> usize {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easytime_data::Frequency;
    use std::f64::consts::PI;

    fn ts(values: Vec<f64>) -> TimeSeries {
        TimeSeries::new("t", values, Frequency::Unknown).unwrap()
    }

    fn seasonal_trend(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| 5.0 + 0.1 * t as f64 + 3.0 * (2.0 * PI * t as f64 / 12.0).sin())
            .collect()
    }

    #[test]
    fn lag_ridge_learns_seasonal_pattern() {
        let mut m = LagRidge::new(24, 1e-3).unwrap();
        m.fit(&ts(seasonal_trend(240))).unwrap();
        let f = m.forecast(12).unwrap();
        for (h, v) in f.iter().enumerate() {
            let t = 240 + h;
            let expected = 5.0 + 0.1 * t as f64 + 3.0 * (2.0 * PI * t as f64 / 12.0).sin();
            assert!((v - expected).abs() < 1.0, "h={h}: {v} vs {expected}");
        }
    }

    #[test]
    fn lag_ridge_shrinks_lookback_on_short_series() {
        let mut m = LagRidge::new(64, 1e-3).unwrap();
        m.fit(&ts((0..20).map(|t| t as f64).collect())).unwrap();
        assert!(m.forecast(3).unwrap().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn dlinear_handles_trend_plus_season() {
        let mut m = DLinear::new(24, 12).unwrap();
        m.fit(&ts(seasonal_trend(240))).unwrap();
        let f = m.forecast(12).unwrap();
        for (h, v) in f.iter().enumerate() {
            let t = 240 + h;
            let expected = 5.0 + 0.1 * t as f64 + 3.0 * (2.0 * PI * t as f64 / 12.0).sin();
            // The edge-padded moving average biases the trend tail slightly,
            // so the tolerance is looser than for the pure lag model.
            assert!((v - expected).abs() < 2.5, "h={h}: {v} vs {expected}");
        }
    }

    #[test]
    fn nlinear_is_level_shift_invariant() {
        // Same dynamics at two levels: forecasts should continue from the
        // *current* level, not regress to the training mean.
        let base = seasonal_trend(200);
        let shifted: Vec<f64> = base.iter().map(|v| v + 1000.0).collect();
        let mut m1 = NLinear::new(24).unwrap();
        m1.fit(&ts(base)).unwrap();
        let mut m2 = NLinear::new(24).unwrap();
        m2.fit(&ts(shifted)).unwrap();
        let f1 = m1.forecast(6).unwrap();
        let f2 = m2.forecast(6).unwrap();
        for (a, b) in f1.iter().zip(&f2) {
            assert!((b - a - 1000.0).abs() < 1e-6, "shift equivariance violated: {a} vs {b}");
        }
    }

    #[test]
    fn constructors_validate() {
        assert!(LagRidge::new(0, 0.1).is_err());
        assert!(LagRidge::new(4, -1.0).is_err());
        assert!(DLinear::new(0, 12).is_err());
        assert!(DLinear::new(8, 1).is_err());
        assert!(NLinear::new(0).is_err());
    }

    #[test]
    fn unfitted_and_short_series_errors() {
        assert!(matches!(LagRidge::new(4, 0.1).unwrap().forecast(1), Err(ModelError::NotFitted)));
        assert!(matches!(DLinear::new(4, 4).unwrap().forecast(1), Err(ModelError::NotFitted)));
        assert!(matches!(NLinear::new(4).unwrap().forecast(1), Err(ModelError::NotFitted)));
        let mut m = DLinear::new(4, 4).unwrap();
        assert!(matches!(
            m.fit(&ts(vec![1.0, 2.0, 3.0])),
            Err(ModelError::TooShort { .. })
        ));
    }

    #[test]
    fn names_embed_lookback() {
        assert_eq!(LagRidge::new(16, 0.1).unwrap().name(), "lag_ridge_16");
        assert_eq!(DLinear::new(32, 25).unwrap().name(), "dlinear_32");
        assert_eq!(NLinear::new(32).unwrap().name(), "nlinear_32");
    }
}
