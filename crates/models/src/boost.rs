//! Gradient-boosted decision stumps on lag features.
//!
//! Represents the tree-ensemble tier of the zoo (the role XGBoost-style
//! models play in TFB). Each boosting round fits one depth-1 regression
//! tree (a "stump": one lag feature, one threshold, two leaf values) to the
//! current residuals, shrunk by a learning rate. Nonlinear and robust to
//! outliers, which gives it an edge on regime-switching series where linear
//! models average across regimes.

use crate::{check_horizon, check_train, Forecaster, ModelError, Result};
use easytime_data::TimeSeries;
use easytime_linalg::stats::mean;

/// A single decision stump over lag features.
#[derive(Debug, Clone, PartialEq)]
struct Stump {
    /// Which lag (1-based distance into the past) the stump splits on.
    lag: usize,
    /// Split threshold.
    threshold: f64,
    /// Prediction when `value[t - lag] <= threshold`.
    left: f64,
    /// Prediction otherwise.
    right: f64,
}

impl Stump {
    fn predict(&self, hist: &[f64]) -> f64 {
        let v = hist[hist.len() - self.lag];
        if v <= self.threshold {
            self.left
        } else {
            self.right
        }
    }
}

/// Gradient-boosted stump forecaster.
#[derive(Debug, Clone)]
pub struct GradientBoost {
    lookback: usize,
    rounds: usize,
    learning_rate: f64,
    name: String,
    fitted: Option<BoostState>,
}

#[derive(Debug, Clone)]
struct BoostState {
    base: f64,
    stumps: Vec<Stump>,
    tail: Vec<f64>,
    lookback: usize,
}

impl GradientBoost {
    /// Creates a boosted-stump forecaster with `lookback` lag features,
    /// `rounds` boosting rounds, and the given shrinkage.
    pub fn new(lookback: usize, rounds: usize, learning_rate: f64) -> Result<GradientBoost> {
        if lookback == 0 || rounds == 0 {
            return Err(ModelError::InvalidParam {
                what: "boost needs lookback ≥ 1 and rounds ≥ 1".into(),
            });
        }
        if !(0.0 < learning_rate && learning_rate <= 1.0) {
            return Err(ModelError::InvalidParam {
                what: format!("learning_rate {learning_rate} not in (0, 1]"),
            });
        }
        Ok(GradientBoost {
            lookback,
            rounds,
            learning_rate,
            name: format!("gboost_{lookback}"),
            fitted: None,
        })
    }

    /// Fits the best stump for `residuals` over all lags and a quantile grid
    /// of thresholds.
    fn best_stump(values: &[f64], residuals: &[f64], lookback: usize) -> Option<Stump> {
        let n = residuals.len();
        let mut best: Option<(Stump, f64)> = None;
        for lag in 1..=lookback {
            // Candidate thresholds: deciles of the lag feature.
            let feats: Vec<f64> = (0..n).map(|i| values[lookback + i - lag]).collect();
            let mut sorted = feats.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            for q in 1..10 {
                let threshold = sorted[(q * (n - 1)) / 10];
                let mut left_sum = 0.0;
                let mut left_n = 0usize;
                let mut right_sum = 0.0;
                let mut right_n = 0usize;
                for (f, &r) in feats.iter().zip(residuals) {
                    if *f <= threshold {
                        left_sum += r;
                        left_n += 1;
                    } else {
                        right_sum += r;
                        right_n += 1;
                    }
                }
                if left_n == 0 || right_n == 0 {
                    continue;
                }
                let left = left_sum / left_n as f64;
                let right = right_sum / right_n as f64;
                // SSE reduction of this split.
                let mut sse = 0.0;
                for (f, &r) in feats.iter().zip(residuals) {
                    let pred = if *f <= threshold { left } else { right };
                    sse += (r - pred) * (r - pred);
                }
                if best.as_ref().map_or(true, |(_, b)| sse < *b) {
                    best = Some((Stump { lag, threshold, left, right }, sse));
                }
            }
        }
        best.map(|(s, _)| s)
    }
}

impl Forecaster for GradientBoost {
    fn name(&self) -> &str {
        &self.name
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<()> {
        check_train(train, self.min_train_len())?;
        let v = train.values();
        let lookback = self.lookback.min(v.len() / 3).max(1);
        let n = v.len() - lookback;

        let targets: Vec<f64> = v[lookback..].to_vec();
        let base = mean(&targets);
        let mut residuals: Vec<f64> = targets.iter().map(|y| y - base).collect();
        let mut stumps = Vec::with_capacity(self.rounds);

        for _ in 0..self.rounds {
            let Some(stump) = Self::best_stump(v, &residuals, lookback) else {
                break;
            };
            // Update residuals with shrunk stump predictions.
            for i in 0..n {
                let feat = v[lookback + i - stump.lag];
                let pred = if feat <= stump.threshold { stump.left } else { stump.right };
                residuals[i] -= self.learning_rate * pred;
            }
            stumps.push(Stump {
                left: stump.left * self.learning_rate,
                right: stump.right * self.learning_rate,
                ..stump
            });
        }

        self.fitted = Some(BoostState {
            base,
            stumps,
            tail: v[v.len() - lookback..].to_vec(),
            lookback,
        });
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Result<Vec<f64>> {
        check_horizon(horizon)?;
        let st = self.fitted.as_ref().ok_or(ModelError::NotFitted)?;
        let mut hist = st.tail.clone();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let mut v = st.base;
            for stump in &st.stumps {
                v += stump.predict(&hist);
            }
            out.push(v);
            hist.push(v);
            if hist.len() > st.lookback {
                hist.remove(0);
            }
        }
        Ok(out)
    }

    fn min_train_len(&self) -> usize {
        16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easytime_data::Frequency;

    fn ts(values: Vec<f64>) -> TimeSeries {
        TimeSeries::new("t", values, Frequency::Unknown).unwrap()
    }

    #[test]
    fn learns_regime_dependent_level() {
        // Next value is 10 when the previous value was ≥ 5, else 1 — a
        // threshold rule stumps can represent exactly.
        let mut values = Vec::with_capacity(200);
        let mut prev = 1.0;
        for t in 0..200 {
            let next = if prev >= 5.0 { 1.0 } else { 10.0 };
            // Small deterministic jitter.
            let v: f64 = next + 0.05 * ((t as f64) * 0.7).sin();
            values.push(v);
            prev = v;
        }
        let mut m = GradientBoost::new(4, 80, 0.3).unwrap();
        m.fit(&ts(values.clone())).unwrap();
        let f = m.forecast(2).unwrap();
        // Last train value ≈ alternates; the first forecast must land near
        // one of the regimes, not the global mean (≈ 5.5).
        assert!(
            (f[0] - 1.0).abs() < 2.0 || (f[0] - 10.0).abs() < 2.0,
            "forecast {} stuck at global mean",
            f[0]
        );
    }

    #[test]
    fn reduces_training_residuals_monotonically_in_rounds() {
        let values: Vec<f64> = (0..150).map(|t| ((t % 7) as f64) * 2.0 + 1.0).collect();
        let mut small = GradientBoost::new(7, 5, 0.3).unwrap();
        small.fit(&ts(values.clone())).unwrap();
        let mut large = GradientBoost::new(7, 100, 0.3).unwrap();
        large.fit(&ts(values.clone())).unwrap();
        // In-sample one-step error should not get worse with more rounds.
        let one_step_err = |m: &GradientBoost| {
            let st = m.fitted.as_ref().unwrap();
            let lb = st.lookback;
            let mut err = 0.0;
            for t in lb..values.len() {
                let hist = &values[t - lb..t];
                let mut pred = st.base;
                for s in &st.stumps {
                    pred += s.predict(hist);
                }
                err += (values[t] - pred).abs();
            }
            err
        };
        assert!(one_step_err(&large) <= one_step_err(&small) + 1e-9);
    }

    #[test]
    fn constructors_validate() {
        assert!(GradientBoost::new(0, 10, 0.1).is_err());
        assert!(GradientBoost::new(4, 0, 0.1).is_err());
        assert!(GradientBoost::new(4, 10, 0.0).is_err());
        assert!(GradientBoost::new(4, 10, 1.5).is_err());
    }

    #[test]
    fn unfitted_and_short_inputs_error() {
        let mut m = GradientBoost::new(4, 10, 0.1).unwrap();
        assert!(matches!(m.forecast(1), Err(ModelError::NotFitted)));
        assert!(matches!(m.fit(&ts(vec![1.0; 8])), Err(ModelError::TooShort { .. })));
    }

    #[test]
    fn constant_series_predicts_constant() {
        let mut m = GradientBoost::new(4, 20, 0.2).unwrap();
        m.fit(&ts(vec![3.0; 50])).unwrap();
        for v in m.forecast(5).unwrap() {
            assert!((v - 3.0).abs() < 1e-6);
        }
    }
}
