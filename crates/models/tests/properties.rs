//! Property-based tests over the whole model zoo: every method must obey
//! the `Forecaster` contract on arbitrary well-formed inputs.

use easytime_data::{Frequency, TimeSeries};
use easytime_models::zoo::standard_zoo;
use easytime_models::ModelSpec;
use proptest::prelude::*;

/// Arbitrary "realistic" series: trend + seasonality + bounded LCG noise.
fn series_strategy() -> impl Strategy<Value = TimeSeries> {
    (
        120usize..320,
        -0.5..0.5f64,
        0.0..10.0f64,
        2usize..30,
        any::<u64>(),
        -100.0..100.0f64,
    )
        .prop_map(|(n, slope, amp, period, seed, level)| {
            let mut state = seed | 1;
            let mut noise = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            };
            let values: Vec<f64> = (0..n)
                .map(|t| {
                    level
                        + slope * t as f64
                        + amp * (2.0 * std::f64::consts::PI * t as f64 / period as f64).sin()
                        + noise()
                })
                .collect();
            TimeSeries::new("prop", values, Frequency::Monthly).unwrap()
        })
}

/// The fast deterministic subset of the zoo (neural trainers excluded to
/// keep the property runs quick; they get their own cases below).
fn fast_specs() -> Vec<ModelSpec> {
    standard_zoo()
        .into_iter()
        .map(|e| e.spec)
        .filter(|s| !matches!(s, ModelSpec::Mlp { .. } | ModelSpec::Rnn { .. }))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_method_returns_finite_forecasts_of_requested_length(
        series in series_strategy(),
        horizon in 1usize..48,
    ) {
        for spec in fast_specs() {
            let mut model = spec.build().unwrap();
            match model.fit(&series) {
                Ok(()) => {
                    let f = model.forecast(horizon).unwrap();
                    prop_assert_eq!(f.len(), horizon, "{}", model.name());
                    prop_assert!(
                        f.iter().all(|v| v.is_finite()),
                        "{} produced non-finite values",
                        model.name()
                    );
                }
                // TooShort is acceptable for parameter-hungry methods.
                Err(easytime_models::ModelError::TooShort { .. }) => {}
                Err(e) => prop_assert!(false, "{} failed unexpectedly: {e}", spec.name()),
            }
        }
    }

    #[test]
    fn fitting_is_idempotent(series in series_strategy()) {
        // Fitting the same model twice on the same data must not change
        // its forecasts (no hidden state accumulation).
        for spec in [ModelSpec::Ses(None), ModelSpec::Theta(None), ModelSpec::ArAuto] {
            let mut model = spec.build().unwrap();
            model.fit(&series).unwrap();
            let first = model.forecast(8).unwrap();
            model.fit(&series).unwrap();
            let second = model.forecast(8).unwrap();
            prop_assert_eq!(first, second, "{:?}", spec);
        }
    }

    #[test]
    fn naive_forecast_equals_last_value(series in series_strategy(), horizon in 1usize..16) {
        let mut model = ModelSpec::Naive.build().unwrap();
        model.fit(&series).unwrap();
        let f = model.forecast(horizon).unwrap();
        prop_assert!(f.iter().all(|&v| v == series.last()));
    }

    #[test]
    fn forecasts_scale_equivariantly_for_linear_models(
        series in series_strategy(),
        scale in 0.5..20.0f64,
    ) {
        // Affine-equivariant methods: forecast(a·x) = a·forecast(x).
        let scaled = series
            .with_values(series.values().iter().map(|v| v * scale).collect())
            .unwrap();
        for spec in [ModelSpec::Naive, ModelSpec::Drift, ModelSpec::Mean] {
            let mut m1 = spec.build().unwrap();
            m1.fit(&series).unwrap();
            let mut m2 = spec.build().unwrap();
            m2.fit(&scaled).unwrap();
            let f1 = m1.forecast(6).unwrap();
            let f2 = m2.forecast(6).unwrap();
            for (a, b) in f1.iter().zip(&f2) {
                prop_assert!(
                    (a * scale - b).abs() < 1e-6 * (1.0 + b.abs()),
                    "{:?}: {} * {scale} vs {}",
                    spec,
                    a,
                    b
                );
            }
        }
    }

    #[test]
    fn zero_horizon_always_rejected(series in series_strategy()) {
        for spec in [ModelSpec::Naive, ModelSpec::Theta(None), ModelSpec::Ses(None)] {
            let mut model = spec.build().unwrap();
            model.fit(&series).unwrap();
            prop_assert!(model.forecast(0).is_err());
        }
    }
}

#[test]
fn neural_models_satisfy_the_contract_on_a_fixed_series() {
    // One deterministic case is enough for the slow trainers; determinism
    // and learning quality are covered by their unit tests.
    let values: Vec<f64> = (0..160)
        .map(|t| 5.0 + (2.0 * std::f64::consts::PI * t as f64 / 12.0).sin() * 3.0)
        .collect();
    let series = TimeSeries::new("n", values, Frequency::Monthly).unwrap();
    for spec in [
        ModelSpec::Mlp { lookback: 12, hidden: 8, seed: 3 },
        ModelSpec::Rnn { lookback: 8, hidden: 4, seed: 3 },
    ] {
        let mut model = spec.build().unwrap();
        model.fit(&series).unwrap();
        let f = model.forecast(24).unwrap();
        assert_eq!(f.len(), 24);
        assert!(f.iter().all(|v| v.is_finite()), "{}", model.name());
    }
}
