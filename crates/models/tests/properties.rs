//! Property-style tests over the whole model zoo: every method must obey
//! the `Forecaster` contract on randomized well-formed inputs, generated
//! with the workspace's own deterministic RNG.

use easytime_data::{Frequency, TimeSeries};
use easytime_models::zoo::standard_zoo;
use easytime_models::ModelSpec;
use easytime_rng::StdRng;

const CASES: u64 = 24;
const MASTER_SEED: u64 = 0x300D_E150;

fn cases() -> impl Iterator<Item = StdRng> {
    (0..CASES).map(|i| StdRng::seed_from_u64(MASTER_SEED).derive(i))
}

/// Randomized "realistic" series: trend + seasonality + bounded noise.
fn random_series(rng: &mut StdRng) -> TimeSeries {
    let n = rng.gen_range(120..320);
    let slope = rng.gen_range_f64(-0.5, 0.5);
    let amp = rng.gen_range_f64(0.0, 10.0);
    let period = rng.gen_range(2..30);
    let level = rng.gen_range_f64(-100.0, 100.0);
    let mut noise = rng.derive(1);
    let values: Vec<f64> = (0..n)
        .map(|t| {
            level
                + slope * t as f64
                + amp * (2.0 * std::f64::consts::PI * t as f64 / period as f64).sin()
                + (noise.gen_f64() - 0.5)
        })
        .collect();
    TimeSeries::new("prop", values, Frequency::Monthly).unwrap()
}

/// The fast deterministic subset of the zoo (neural trainers excluded to
/// keep the property runs quick; they get their own cases below).
fn fast_specs() -> Vec<ModelSpec> {
    standard_zoo()
        .into_iter()
        .map(|e| e.spec)
        .filter(|s| !matches!(s, ModelSpec::Mlp { .. } | ModelSpec::Rnn { .. }))
        .collect()
}

#[test]
fn every_method_returns_finite_forecasts_of_requested_length() {
    for mut rng in cases() {
        let series = random_series(&mut rng);
        let horizon = rng.gen_range(1..48);
        for spec in fast_specs() {
            let mut model = spec.build().unwrap();
            match model.fit(&series) {
                Ok(()) => {
                    let f = model.forecast(horizon).unwrap();
                    assert_eq!(f.len(), horizon, "{}", model.name());
                    assert!(
                        f.iter().all(|v| v.is_finite()),
                        "{} produced non-finite values",
                        model.name()
                    );
                }
                // TooShort is acceptable for parameter-hungry methods.
                Err(easytime_models::ModelError::TooShort { .. }) => {}
                Err(e) => panic!("{} failed unexpectedly: {e}", spec.name()),
            }
        }
    }
}

#[test]
fn fitting_is_idempotent() {
    for mut rng in cases() {
        let series = random_series(&mut rng);
        // Fitting the same model twice on the same data must not change
        // its forecasts (no hidden state accumulation).
        for spec in [ModelSpec::Ses(None), ModelSpec::Theta(None), ModelSpec::ArAuto] {
            let mut model = spec.build().unwrap();
            model.fit(&series).unwrap();
            let first = model.forecast(8).unwrap();
            model.fit(&series).unwrap();
            let second = model.forecast(8).unwrap();
            assert_eq!(first, second, "{spec:?}");
        }
    }
}

#[test]
fn naive_forecast_equals_last_value() {
    for mut rng in cases() {
        let series = random_series(&mut rng);
        let horizon = rng.gen_range(1..16);
        let mut model = ModelSpec::Naive.build().unwrap();
        model.fit(&series).unwrap();
        let f = model.forecast(horizon).unwrap();
        assert!(f.iter().all(|&v| v == series.last()));
    }
}

#[test]
fn forecasts_scale_equivariantly_for_linear_models() {
    for mut rng in cases() {
        let series = random_series(&mut rng);
        let scale = rng.gen_range_f64(0.5, 20.0);
        // Affine-equivariant methods: forecast(a·x) = a·forecast(x).
        let scaled = series
            .with_values(series.values().iter().map(|v| v * scale).collect())
            .unwrap();
        for spec in [ModelSpec::Naive, ModelSpec::Drift, ModelSpec::Mean] {
            let mut m1 = spec.build().unwrap();
            m1.fit(&series).unwrap();
            let mut m2 = spec.build().unwrap();
            m2.fit(&scaled).unwrap();
            let f1 = m1.forecast(6).unwrap();
            let f2 = m2.forecast(6).unwrap();
            for (a, b) in f1.iter().zip(&f2) {
                assert!(
                    (a * scale - b).abs() < 1e-6 * (1.0 + b.abs()),
                    "{spec:?}: {a} * {scale} vs {b}"
                );
            }
        }
    }
}

#[test]
fn zero_horizon_always_rejected() {
    for mut rng in cases() {
        let series = random_series(&mut rng);
        for spec in [ModelSpec::Naive, ModelSpec::Theta(None), ModelSpec::Ses(None)] {
            let mut model = spec.build().unwrap();
            model.fit(&series).unwrap();
            assert!(model.forecast(0).is_err());
        }
    }
}

#[test]
fn neural_models_satisfy_the_contract_on_a_fixed_series() {
    // One deterministic case is enough for the slow trainers; determinism
    // and learning quality are covered by their unit tests.
    let values: Vec<f64> = (0..160)
        .map(|t| 5.0 + (2.0 * std::f64::consts::PI * t as f64 / 12.0).sin() * 3.0)
        .collect();
    let series = TimeSeries::new("n", values, Frequency::Monthly).unwrap();
    for spec in [
        ModelSpec::Mlp { lookback: 12, hidden: 8, seed: 3 },
        ModelSpec::Rnn { lookback: 8, hidden: 4, seed: 3 },
    ] {
        let mut model = spec.build().unwrap();
        model.fit(&series).unwrap();
        let f = model.forecast(24).unwrap();
        assert_eq!(f.len(), 24);
        assert!(f.iter().all(|v| v.is_finite()), "{}", model.name());
    }
}
