//! Terminal visualization of series and forecasts.
//!
//! The reporting layer "supports visualization of time series inputs and
//! forecasting results" (paper §II-A), and the frontend displays forecast
//! overlays (Figure 4, label 9). This module renders that view for
//! terminals: an ASCII line plot of the historical tail, the forecast, and
//! optionally the ground truth over the forecast window.

/// One renderable line on the plot.
#[derive(Debug, Clone, PartialEq)]
pub struct PlotSeries {
    /// Legend label.
    pub label: String,
    /// The glyph used for this series' points.
    pub glyph: char,
    /// X offset of the first value (in time steps from plot origin).
    pub offset: usize,
    /// The values.
    pub values: Vec<f64>,
}

/// A terminal forecast plot.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastPlot {
    series: Vec<PlotSeries>,
    width: usize,
    height: usize,
}

impl ForecastPlot {
    /// Creates an empty plot canvas. `width`/`height` are clamped to
    /// sensible terminal bounds.
    pub fn new(width: usize, height: usize) -> ForecastPlot {
        ForecastPlot {
            series: Vec::new(),
            width: width.clamp(20, 240),
            height: height.clamp(5, 60),
        }
    }

    /// Standard layout: history tail + forecast (+ optional actuals), with
    /// the forecast region starting where history ends.
    pub fn forecast_view(
        history: &[f64],
        forecast: &[f64],
        actual: Option<&[f64]>,
    ) -> ForecastPlot {
        let mut plot = ForecastPlot::new(100, 16);
        // Show at most 3× the forecast length of history for context.
        let tail = history.len().min(forecast.len() * 3).max(1);
        let start = history.len() - tail;
        plot.add(PlotSeries {
            label: "history".into(),
            glyph: '·',
            offset: 0,
            values: history[start..].to_vec(),
        });
        plot.add(PlotSeries {
            label: "forecast".into(),
            glyph: '●',
            offset: tail,
            values: forecast.to_vec(),
        });
        if let Some(actual) = actual {
            plot.add(PlotSeries {
                label: "actual".into(),
                glyph: '○',
                offset: tail,
                values: actual.to_vec(),
            });
        }
        plot
    }

    /// Adds a series to the plot.
    pub fn add(&mut self, series: PlotSeries) {
        if !series.values.is_empty() {
            self.series.push(series);
        }
    }

    /// Renders the canvas with a y-axis scale and legend.
    pub fn render(&self) -> String {
        if self.series.is_empty() {
            return "(empty plot)\n".to_string();
        }
        let t_max = self
            .series
            .iter()
            .map(|s| s.offset + s.values.len())
            .max()
            .unwrap_or(0);
        let all: Vec<f64> = self.series.iter().flat_map(|s| s.values.iter().copied()).collect();
        let lo = all.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = all.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).max(1e-12);

        let mut canvas = vec![vec![' '; self.width]; self.height];
        // Later series draw over earlier ones (forecast over history).
        for s in &self.series {
            for (i, &v) in s.values.iter().enumerate() {
                let t = s.offset + i;
                let x = if t_max <= 1 { 0 } else { t * (self.width - 1) / (t_max - 1) };
                let yf = (v - lo) / span;
                let y = self.height - 1 - (yf * (self.height - 1) as f64).round() as usize;
                canvas[y][x] = s.glyph;
            }
        }

        let mut out = String::new();
        for (row, line) in canvas.iter().enumerate() {
            let value = hi - span * row as f64 / (self.height - 1) as f64;
            let label = if row == 0 || row == self.height - 1 || row == self.height / 2 {
                format!("{value:>10.2} ┤")
            } else {
                format!("{:>10} │", "")
            };
            out.push_str(&label);
            out.extend(line.iter());
            out.push('\n');
        }
        out.push_str(&format!("{:>11}└{}\n", "", "─".repeat(self.width)));
        let legend: Vec<String> =
            self.series.iter().map(|s| format!("{} {}", s.glyph, s.label)).collect();
        out.push_str(&format!("{:>12}{}\n", "", legend.join("   ")));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_history_and_forecast() {
        let history: Vec<f64> = (0..60).map(|t| (t as f64 * 0.2).sin() * 5.0).collect();
        let forecast: Vec<f64> = (60..72).map(|t| (t as f64 * 0.2).sin() * 5.0).collect();
        let actual: Vec<f64> = forecast.iter().map(|v| v + 0.5).collect();
        let plot = ForecastPlot::forecast_view(&history, &forecast, Some(&actual));
        let text = plot.render();
        assert!(text.contains('·'), "history glyph missing");
        assert!(text.contains('●'), "forecast glyph missing");
        assert!(text.contains('○'), "actual glyph missing");
        assert!(text.contains("history"));
        assert!(text.contains("forecast"));
        assert!(text.contains("actual"));
        // Axis labels carry the value scale.
        assert!(text.contains('┤'));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let plot = ForecastPlot::forecast_view(&[5.0; 30], &[5.0; 5], None);
        let text = plot.render();
        assert!(text.contains('●'));
        assert!(!text.contains("NaN"));
    }

    #[test]
    fn empty_plot_is_harmless() {
        let plot = ForecastPlot::new(80, 12);
        assert_eq!(plot.render(), "(empty plot)\n");
        let mut p2 = ForecastPlot::new(80, 12);
        p2.add(PlotSeries { label: "x".into(), glyph: '*', offset: 0, values: vec![] });
        assert_eq!(p2.render(), "(empty plot)\n");
    }

    #[test]
    fn canvas_dimensions_are_clamped() {
        let plot = ForecastPlot::new(1, 1000);
        // Must not panic; rendering a single point works.
        let mut p = plot;
        p.add(PlotSeries { label: "p".into(), glyph: '●', offset: 0, values: vec![1.0] });
        let text = p.render();
        assert!(text.lines().count() <= 62);
    }

    #[test]
    fn long_history_is_trimmed_to_context_window() {
        let history: Vec<f64> = (0..10_000).map(|t| t as f64).collect();
        let forecast = vec![10_000.0; 10];
        let plot = ForecastPlot::forecast_view(&history, &forecast, None);
        // Only 3× forecast length of history is kept.
        assert_eq!(plot.series[0].values.len(), 30);
        assert_eq!(plot.series[1].offset, 30);
    }
}
