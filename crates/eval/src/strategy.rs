//! Evaluation strategies: fixed-window and rolling-origin forecasting.
//!
//! Challenge 1 in the paper requires that "different evaluation strategies,
//! such as fixed-window and rolling forecasting, should be employed", and
//! the one-click module lets users switch strategy in the configuration
//! file. A [`Strategy`] value describes *where* forecast origins fall in
//! the test partition; [`Strategy::windows`] materializes the origin/window
//! list that the pipeline then executes (fit on data before the origin,
//! score on the window after it).

use crate::error::EvalError;

/// An evaluation strategy over the test partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// One forecast of `horizon` steps from the end of training data.
    Fixed {
        /// Forecast horizon.
        horizon: usize,
    },
    /// Rolling-origin evaluation: forecast `horizon` steps, advance the
    /// origin by `stride`, refit, repeat until the test data is exhausted.
    Rolling {
        /// Forecast horizon per window.
        horizon: usize,
        /// Origin advance between windows (usually equal to `horizon`).
        stride: usize,
        /// Optional cap on the number of windows.
        max_windows: Option<usize>,
    },
}

/// One evaluation window: fit on `series[..origin]`, score on
/// `series[origin .. origin + len]` (indices relative to the full series).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalWindow {
    /// Index of the forecast origin in the full series.
    pub origin: usize,
    /// Number of scored steps (≤ horizon for a kept partial last window).
    pub len: usize,
}

impl Strategy {
    /// Canonical name for reports and the knowledge base.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Fixed { .. } => "fixed",
            Strategy::Rolling { .. } => "rolling",
        }
    }

    /// The forecast horizon of the strategy.
    pub fn horizon(&self) -> usize {
        match *self {
            Strategy::Fixed { horizon } => horizon,
            Strategy::Rolling { horizon, .. } => horizon,
        }
    }

    /// Validates strategy parameters.
    pub fn validate(&self) -> Result<(), EvalError> {
        match *self {
            Strategy::Fixed { horizon: 0 } => Err(EvalError::InvalidConfig {
                reason: "fixed strategy needs horizon ≥ 1".into(),
            }),
            Strategy::Rolling { horizon, stride, max_windows } => {
                if horizon == 0 || stride == 0 {
                    return Err(EvalError::InvalidConfig {
                        reason: "rolling strategy needs horizon ≥ 1 and stride ≥ 1".into(),
                    });
                }
                if max_windows == Some(0) {
                    return Err(EvalError::InvalidConfig {
                        reason: "max_windows must be ≥ 1 when set".into(),
                    });
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Materializes the evaluation windows for a series of `total_len`
    /// points whose test partition starts at `test_start`.
    ///
    /// `drop_last` (TFB's consistency knob) controls whether a trailing
    /// window shorter than the horizon is scored or discarded.
    pub fn windows(
        &self,
        total_len: usize,
        test_start: usize,
        drop_last: bool,
    ) -> Result<Vec<EvalWindow>, EvalError> {
        self.validate()?;
        let test_len = total_len.saturating_sub(test_start);
        match *self {
            Strategy::Fixed { horizon } => {
                if test_len == 0 {
                    return Err(EvalError::InsufficientTestData { needed: horizon, got: 0 });
                }
                let len = horizon.min(test_len);
                if len < horizon && drop_last {
                    return Err(EvalError::InsufficientTestData {
                        needed: horizon,
                        got: test_len,
                    });
                }
                Ok(vec![EvalWindow { origin: test_start, len }])
            }
            Strategy::Rolling { horizon, stride, max_windows } => {
                // Exact window count is known up front: pre-size so window
                // materialization costs one allocation regardless of count.
                let upper = test_len.div_ceil(stride);
                let mut out =
                    Vec::with_capacity(max_windows.map_or(upper, |m| m.min(upper)));
                let mut origin = test_start;
                while origin < total_len {
                    let remaining = total_len - origin;
                    let len = horizon.min(remaining);
                    if len < horizon && drop_last {
                        break;
                    }
                    out.push(EvalWindow { origin, len });
                    if let Some(maxw) = max_windows {
                        if out.len() >= maxw {
                            break;
                        }
                    }
                    origin += stride;
                }
                if out.is_empty() {
                    return Err(EvalError::InsufficientTestData {
                        needed: horizon,
                        got: test_len,
                    });
                }
                Ok(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_strategy_yields_one_window() {
        let s = Strategy::Fixed { horizon: 12 };
        let w = s.windows(100, 80, false).unwrap();
        assert_eq!(w, vec![EvalWindow { origin: 80, len: 12 }]);
        assert_eq!(s.name(), "fixed");
        assert_eq!(s.horizon(), 12);
    }

    #[test]
    fn fixed_strategy_clips_or_drops_partial_window() {
        let s = Strategy::Fixed { horizon: 30 };
        // Only 20 test points: kept (clipped) without drop_last…
        let w = s.windows(100, 80, false).unwrap();
        assert_eq!(w[0].len, 20);
        // …but rejected with drop_last.
        assert!(matches!(
            s.windows(100, 80, true),
            Err(EvalError::InsufficientTestData { needed: 30, got: 20 })
        ));
    }

    #[test]
    fn rolling_covers_test_partition() {
        let s = Strategy::Rolling { horizon: 10, stride: 10, max_windows: None };
        let w = s.windows(130, 100, false).unwrap();
        assert_eq!(
            w,
            vec![
                EvalWindow { origin: 100, len: 10 },
                EvalWindow { origin: 110, len: 10 },
                EvalWindow { origin: 120, len: 10 },
            ]
        );
    }

    #[test]
    fn rolling_partial_last_window_honours_drop_last() {
        let s = Strategy::Rolling { horizon: 10, stride: 10, max_windows: None };
        let keep = s.windows(125, 100, false).unwrap();
        assert_eq!(keep.len(), 3);
        assert_eq!(keep[2], EvalWindow { origin: 120, len: 5 });
        let drop = s.windows(125, 100, true).unwrap();
        assert_eq!(drop.len(), 2);
    }

    #[test]
    fn rolling_respects_stride_and_cap() {
        let s = Strategy::Rolling { horizon: 5, stride: 3, max_windows: Some(2) };
        let w = s.windows(200, 100, false).unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].origin, 100);
        assert_eq!(w[1].origin, 103);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Strategy::Fixed { horizon: 0 }.validate().is_err());
        assert!(Strategy::Rolling { horizon: 0, stride: 1, max_windows: None }
            .validate()
            .is_err());
        assert!(Strategy::Rolling { horizon: 1, stride: 0, max_windows: None }
            .validate()
            .is_err());
        assert!(Strategy::Rolling { horizon: 1, stride: 1, max_windows: Some(0) }
            .validate()
            .is_err());
    }

    #[test]
    fn empty_test_partition_is_an_error() {
        let s = Strategy::Fixed { horizon: 5 };
        assert!(matches!(
            s.windows(100, 100, false),
            Err(EvalError::InsufficientTestData { .. })
        ));
        let r = Strategy::Rolling { horizon: 5, stride: 5, max_windows: None };
        assert!(r.windows(100, 100, false).is_err());
    }
}
