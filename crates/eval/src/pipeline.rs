//! The standardized benchmark pipeline behind one-click evaluation.
//!
//! Reproduces TFB's pipeline (paper §II-A): "standardized dataset processing
//! and splitting, model training and testing, as well as unified
//! post-processing". For every evaluation window produced by the
//! [`Strategy`], the pipeline:
//!
//! 1. takes all data before the forecast origin as training context,
//! 2. fits the scaler on that training slice only,
//! 3. fits a fresh model instance on the scaled training data,
//! 4. forecasts and inverse-transforms the predictions (unified
//!    post-processing),
//! 5. scores the requested metrics against the raw ground truth.
//!
//! Per-window scores are averaged into one [`EvalRecord`]. Corpus-scale
//! sweeps run on a work-stealing thread pool ([`evaluate_corpus`]); failures
//! are captured *per record* so one incompatible method/dataset pair never
//! aborts a sweep — exactly the robustness one-click evaluation needs.

use crate::error::EvalError;
use crate::metrics::{MetricContext, MetricRegistry};
use crate::strategy::Strategy;
use easytime_data::scaler::ScalerKind;
use easytime_data::{Dataset, Scaler, SplitSpec, TimeSeries};
use easytime_models::{ModelSpec, Result as ModelResult};
use std::collections::BTreeMap;
use easytime_clock::Stopwatch;

/// Configuration of one evaluation run (the programmatic form of the
/// paper's "configuration file"; the core crate parses the file format
/// into this struct).
#[derive(Debug, Clone, PartialEq)]
pub struct EvalConfig {
    /// Methods to evaluate.
    pub methods: Vec<ModelSpec>,
    /// Evaluation strategy.
    pub strategy: Strategy,
    /// Chronological split specification.
    pub split: SplitSpec,
    /// Normalization applied to model inputs.
    pub scaler: ScalerKind,
    /// Metric names to compute (must resolve in the registry).
    pub metrics: Vec<String>,
    /// Worker threads for corpus sweeps (0 = all available cores).
    pub threads: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            methods: vec![ModelSpec::Naive],
            strategy: Strategy::Fixed { horizon: 12 },
            split: SplitSpec::default(),
            scaler: ScalerKind::ZScore,
            metrics: vec!["mae".into(), "rmse".into(), "smape".into(), "mase".into()],
            threads: 0,
        }
    }
}

impl EvalConfig {
    /// Validates the configuration against the metric registry.
    pub fn validate(&self, registry: &MetricRegistry) -> Result<(), EvalError> {
        if self.methods.is_empty() {
            return Err(EvalError::InvalidConfig { reason: "no methods configured".into() });
        }
        if self.metrics.is_empty() {
            return Err(EvalError::InvalidConfig { reason: "no metrics configured".into() });
        }
        self.strategy.validate()?;
        for m in &self.metrics {
            registry.get(m)?;
        }
        Ok(())
    }
}

/// Result record of evaluating one method on one dataset — the row shape
/// stored in the benchmark knowledge base.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRecord {
    /// Dataset id.
    pub dataset_id: String,
    /// Canonical method name.
    pub method: String,
    /// Method family name.
    pub family: String,
    /// Strategy name (`fixed` / `rolling`).
    pub strategy: String,
    /// Forecast horizon.
    pub horizon: usize,
    /// Mean metric values over all evaluation windows (NaNs skipped).
    pub scores: BTreeMap<String, f64>,
    /// Number of evaluation windows scored.
    pub windows: usize,
    /// Wall-clock milliseconds spent fitting and forecasting.
    pub runtime_ms: f64,
    /// Failure description when the method could not be evaluated.
    pub error: Option<String>,
}

impl EvalRecord {
    /// Convenience accessor with NaN for missing metrics.
    pub fn score(&self, metric: &str) -> f64 {
        self.scores.get(metric).copied().unwrap_or(f64::NAN)
    }

    /// True when the evaluation completed.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// Evaluates one method on one univariate series under a config.
///
/// Model or data failures are reported inside the returned record (see
/// [`EvalRecord::error`]); only configuration errors return `Err`.
pub fn evaluate(
    dataset_id: &str,
    series: &TimeSeries,
    spec: &ModelSpec,
    config: &EvalConfig,
    registry: &MetricRegistry,
) -> Result<EvalRecord, EvalError> {
    config.strategy.validate()?;
    for m in &config.metrics {
        registry.get(m)?;
    }

    let mut record = EvalRecord {
        dataset_id: dataset_id.to_string(),
        method: spec.name(),
        family: spec.family().name().to_string(),
        strategy: config.strategy.name().to_string(),
        horizon: config.strategy.horizon(),
        scores: BTreeMap::new(),
        windows: 0,
        runtime_ms: 0.0,
        error: None,
    };

    let mut sp = easytime_obs::span("eval.evaluate");
    sp.attr("dataset", record.dataset_id.as_str());
    sp.attr("method", record.method.as_str());
    match run_windows(series, spec, config, registry) {
        Ok((scores, windows, runtime_ms)) => {
            record.scores = scores;
            record.windows = windows;
            record.runtime_ms = runtime_ms;
            sp.attr("windows", windows);
        }
        Err(e) => {
            easytime_obs::add("eval.model_failures", 1);
            if easytime_obs::enabled() {
                easytime_obs::warn(
                    "eval.pipeline",
                    &format!("{}/{} failed: {e}", record.dataset_id, record.method),
                );
            }
            record.error = Some(e.to_string());
        }
    }
    Ok(record)
}

/// Inner pipeline: returns `(mean scores, window count, runtime ms)`.
fn run_windows(
    series: &TimeSeries,
    spec: &ModelSpec,
    config: &EvalConfig,
    registry: &MetricRegistry,
) -> Result<(BTreeMap<String, f64>, usize, f64), EvalError> {
    let n = series.len();
    // Where the test partition starts: after train + val.
    let split = config.split.split(series)?;
    let test_start = n - split.test.len();
    let windows = config.strategy.windows(n, test_start, config.split.drop_last)?;
    let period = series.frequency().default_period().unwrap_or(1);
    let raw = series.values();

    let mut sp = easytime_obs::span("eval.run_windows");
    sp.attr("windows", windows.len());
    let started = Stopwatch::start();
    let mut sums: BTreeMap<String, (f64, usize)> = BTreeMap::new();
    for w in &windows {
        let mut wsp = easytime_obs::span("eval.window");
        wsp.attr("origin", w.origin);
        wsp.attr("len", w.len);
        // 1–2. training context and scaler (fitted on train only).
        let train_slice = &raw[..w.origin];
        let mut scaler = Scaler::new(config.scaler);
        let scaled_train = scaler.fit_transform(train_slice)?;
        let train_series = series.with_values(scaled_train)?;

        // 3. fresh model per window (rolling refit semantics).
        let mut model = spec.build()?;
        model.fit(&train_series)?;

        // 4. forecast + inverse transform.
        let predicted_scaled: ModelResult<Vec<f64>> = model.forecast(w.len);
        let predicted = scaler.inverse(&predicted_scaled?)?;

        // 5. metrics on the raw scale.
        let actual = &raw[w.origin..w.origin + w.len];
        let ctx = MetricContext::new(actual, &predicted, train_slice, period)?;
        for name in &config.metrics {
            let metric = registry.get(name)?;
            let v = metric.compute(&ctx);
            let entry = sums.entry(metric.name().to_string()).or_insert((0.0, 0));
            if v.is_finite() {
                entry.0 += v;
                entry.1 += 1;
            }
        }
    }
    let runtime_ms = started.elapsed_ms();

    let scores = sums
        .into_iter()
        .map(|(k, (sum, cnt))| (k, if cnt > 0 { sum / cnt as f64 } else { f64::NAN }))
        .collect();
    Ok((scores, windows.len(), runtime_ms))
}

/// Evaluates every configured method on every dataset, in parallel.
///
/// Multivariate datasets are evaluated channel-independently on their
/// primary series (the univariate protocol TFB applies to UTSF methods);
/// errors are captured per record. Record order is deterministic:
/// datasets × methods in input order.
pub fn evaluate_corpus(
    datasets: &[Dataset],
    config: &EvalConfig,
    registry: &MetricRegistry,
) -> Result<Vec<EvalRecord>, EvalError> {
    config.validate(registry)?;

    let jobs: Vec<(usize, &Dataset, &ModelSpec)> = datasets
        .iter()
        .flat_map(|d| config.methods.iter().map(move |m| (d, m)))
        .enumerate()
        .map(|(i, (d, m))| (i, d, m))
        .collect();

    let workers = if config.threads == 0 {
        std::thread::available_parallelism().map(usize::from).unwrap_or(4)
    } else {
        config.threads
    }
    .min(jobs.len().max(1));

    let mut sp = easytime_obs::span("eval.corpus");
    sp.attr("jobs", jobs.len());
    sp.attr("workers", workers);
    if easytime_obs::enabled() {
        // Run manifest: enough provenance to tie metrics.json to its run.
        easytime_obs::manifest_set(
            "config_hash",
            easytime_obs::fnv1a_hex(format!("{config:?}").as_bytes()),
        );
        let ids: Vec<String> = datasets.iter().map(|d| d.meta.id.clone()).collect();
        easytime_obs::manifest_set_list("dataset_ids", &ids);
        let methods: Vec<String> = config.methods.iter().map(easytime_models::ModelSpec::name).collect();
        easytime_obs::manifest_set_list("methods", &methods);
        easytime_obs::manifest_set("workers", workers);
    }

    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<EvalRecord>> = vec![None; jobs.len()];
    let slot_refs: Vec<std::sync::Mutex<&mut Option<EvalRecord>>> =
        slots.iter_mut().map(std::sync::Mutex::new).collect();

    std::thread::scope(|scope| -> Result<(), EvalError> {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let jobs = &jobs;
            let next = &next;
            let slot_refs = &slot_refs;
            handles.push(scope.spawn(move || -> Result<(), EvalError> {
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= jobs.len() {
                        return Ok(());
                    }
                    let (idx, dataset, spec) = jobs[i];
                    let series = dataset.primary_series();
                    let record = evaluate(&dataset.meta.id, &series, spec, config, registry)?;
                    // Each slot is written by exactly one job; the mutex only
                    // provides Sync access, so poison recovery is safe.
                    **slot_refs[idx]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(record);
                }
            }));
        }
        for h in handles {
            match h.join() {
                Ok(result) => result?,
                Err(_) => {
                    return Err(EvalError::Internal {
                        reason: "evaluation worker panicked".into(),
                    })
                }
            }
        }
        Ok(())
    })?;

    slots
        .into_iter()
        .map(|s| {
            s.ok_or_else(|| EvalError::Internal { reason: "evaluation job left its slot empty".into() })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use easytime_data::synthetic::{build_corpus, CorpusConfig};
    use easytime_data::{Domain, Frequency};
    use std::f64::consts::PI;

    fn seasonal_series(n: usize) -> TimeSeries {
        let values: Vec<f64> = (0..n)
            .map(|t| 10.0 + 0.05 * t as f64 + 4.0 * (2.0 * PI * t as f64 / 12.0).sin())
            .collect();
        TimeSeries::new("seasonal", values, Frequency::Monthly).unwrap()
    }

    #[test]
    fn fixed_evaluation_produces_scores() {
        let series = seasonal_series(120);
        let config = EvalConfig::default();
        let registry = MetricRegistry::standard();
        let rec = evaluate("d1", &series, &ModelSpec::SeasonalNaive(None), &config, &registry)
            .unwrap();
        assert!(rec.is_ok(), "error: {:?}", rec.error);
        assert_eq!(rec.windows, 1);
        assert_eq!(rec.method, "seasonal_naive");
        assert_eq!(rec.strategy, "fixed");
        assert!(rec.score("mae").is_finite());
        assert!(rec.score("mase").is_finite());
        assert!(rec.runtime_ms >= 0.0);
    }

    #[test]
    fn rolling_scores_multiple_windows() {
        let series = seasonal_series(200);
        let config = EvalConfig {
            strategy: Strategy::Rolling { horizon: 10, stride: 10, max_windows: None },
            ..EvalConfig::default()
        };
        let registry = MetricRegistry::standard();
        let rec =
            evaluate("d1", &series, &ModelSpec::Naive, &config, &registry).unwrap();
        assert!(rec.is_ok());
        assert!(rec.windows >= 3, "windows {}", rec.windows);
    }

    #[test]
    fn good_model_beats_bad_model_on_seasonal_data() {
        let series = seasonal_series(240);
        let config = EvalConfig::default();
        let registry = MetricRegistry::standard();
        let snaive =
            evaluate("d", &series, &ModelSpec::SeasonalNaive(None), &config, &registry).unwrap();
        let mean =
            evaluate("d", &series, &ModelSpec::Mean, &config, &registry).unwrap();
        assert!(
            snaive.score("mae") < mean.score("mae"),
            "seasonal naive {} should beat mean {}",
            snaive.score("mae"),
            mean.score("mae")
        );
    }

    #[test]
    fn model_failures_are_captured_not_propagated() {
        // A 24-point series leaves a 19-point training window — below
        // ARIMA's minimum of 20.
        let series = TimeSeries::new(
            "tiny",
            (0..24).map(|t| t as f64).collect(),
            Frequency::Daily,
        )
        .unwrap();
        let config = EvalConfig {
            strategy: Strategy::Fixed { horizon: 4 },
            ..EvalConfig::default()
        };
        let registry = MetricRegistry::standard();
        let rec =
            evaluate("tiny", &series, &ModelSpec::Arima(2, 1, 1), &config, &registry).unwrap();
        assert!(!rec.is_ok());
        assert!(rec.error.as_deref().unwrap().contains("too short"));
    }

    #[test]
    fn unknown_metric_is_a_config_error() {
        let series = seasonal_series(100);
        let config = EvalConfig { metrics: vec!["nope".into()], ..EvalConfig::default() };
        let registry = MetricRegistry::standard();
        assert!(matches!(
            evaluate("d", &series, &ModelSpec::Naive, &config, &registry),
            Err(EvalError::UnknownMetric { .. })
        ));
    }

    #[test]
    fn scaling_is_fitted_on_train_only_and_inverted() {
        // With a huge level, un-inverted forecasts would produce absurd MAE.
        let values: Vec<f64> = (0..100).map(|t| 1e6 + (t % 7) as f64).collect();
        let series = TimeSeries::new("lvl", values, Frequency::Daily).unwrap();
        let config = EvalConfig {
            scaler: ScalerKind::ZScore,
            strategy: Strategy::Fixed { horizon: 7 },
            ..EvalConfig::default()
        };
        let registry = MetricRegistry::standard();
        let rec = evaluate("lvl", &series, &ModelSpec::SeasonalNaive(Some(7)), &config, &registry)
            .unwrap();
        assert!(rec.is_ok());
        assert!(rec.score("mae") < 10.0, "mae {} implies broken inverse transform", rec.score("mae"));
    }

    #[test]
    fn corpus_sweep_is_parallel_deterministic_and_ordered() {
        let corpus = build_corpus(&CorpusConfig {
            domains: vec![Domain::Nature, Domain::Web],
            per_domain: 3,
            length: 150,
            ..CorpusConfig::default()
        })
        .unwrap();
        let config = EvalConfig {
            methods: vec![ModelSpec::Naive, ModelSpec::SeasonalNaive(None), ModelSpec::Drift],
            threads: 3,
            ..EvalConfig::default()
        };
        let registry = MetricRegistry::standard();
        let mut a = evaluate_corpus(&corpus, &config, &registry).unwrap();
        let mut b = evaluate_corpus(&corpus, &config, &registry).unwrap();
        assert_eq!(a.len(), 6 * 3);
        // Wall-clock differs between runs; everything else must match.
        for r in a.iter_mut().chain(b.iter_mut()) {
            r.runtime_ms = 0.0;
        }
        assert_eq!(a, b, "parallel sweep must be deterministic");
        // Order: dataset-major, method-minor.
        assert_eq!(a[0].dataset_id, corpus[0].meta.id);
        assert_eq!(a[0].method, "naive");
        assert_eq!(a[1].method, "seasonal_naive");
        assert_eq!(a[3].dataset_id, corpus[1].meta.id);
    }

    #[test]
    fn empty_config_is_rejected() {
        let registry = MetricRegistry::standard();
        let config = EvalConfig { methods: vec![], ..EvalConfig::default() };
        assert!(config.validate(&registry).is_err());
        let config = EvalConfig { metrics: vec![], ..EvalConfig::default() };
        assert!(config.validate(&registry).is_err());
    }
}
