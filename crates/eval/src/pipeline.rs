//! The standardized benchmark pipeline behind one-click evaluation.
//!
//! Reproduces TFB's pipeline (paper §II-A): "standardized dataset processing
//! and splitting, model training and testing, as well as unified
//! post-processing". For every evaluation window produced by the
//! [`Strategy`], the pipeline:
//!
//! 1. takes all data before the forecast origin as training context,
//! 2. fits the scaler on that training slice only,
//! 3. fits a fresh model instance on the scaled training data,
//! 4. forecasts and inverse-transforms the predictions (unified
//!    post-processing),
//! 5. scores the requested metrics against the raw ground truth.
//!
//! Per-window scores are averaged into one [`EvalRecord`]. Corpus-scale
//! sweeps run on a work-stealing thread pool ([`evaluate_corpus`]); failures
//! are captured *per record* so one incompatible method/dataset pair never
//! aborts a sweep — exactly the robustness one-click evaluation needs.
//!
//! # Refit policy
//!
//! Rolling evaluation traditionally rebuilds everything per window
//! ([`RefitPolicy::Always`], the default — scores are bit-identical to
//! historical runs). [`RefitPolicy::WarmStart`] switches to the incremental
//! engine: scaler statistics stream forward ([`Scaler::extend`]), models
//! that support [`Forecaster::update`] absorb only the appended
//! observations, and a per-job [`WindowWorkspace`] recycles every scratch
//! buffer so the steady-state window loop allocates nothing.

use crate::error::EvalError;
use crate::metrics::{Metric, MetricContext, MetricRegistry};
use crate::strategy::{EvalWindow, Strategy};
use easytime_data::scaler::ScalerKind;
use easytime_data::{DataError, Dataset, Scaler, SplitSpec, TimeSeries};
use easytime_models::{Forecaster, ModelError, ModelSpec, Result as ModelResult};
use std::collections::BTreeMap;
use easytime_clock::Stopwatch;

/// When the rolling pipeline rebuilds model and scaler state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RefitPolicy {
    /// Refit the scaler and a fresh model on the full training prefix for
    /// every window — the classical protocol, and the default (existing
    /// scores stay bit-identical).
    #[default]
    Always,
    /// Incremental engine: stream scaler statistics forward and warm-start
    /// models via [`Forecaster::update`] where supported; methods that
    /// cannot warm-start fall back to a per-window refit.
    WarmStart,
}

impl RefitPolicy {
    /// Canonical lowercase name (config files, manifests).
    pub fn name(self) -> &'static str {
        match self {
            RefitPolicy::Always => "always",
            RefitPolicy::WarmStart => "warm_start",
        }
    }

    /// Parses a policy from its canonical name.
    pub fn parse(s: &str) -> Option<RefitPolicy> {
        match s.trim().to_ascii_lowercase().as_str() {
            "always" | "refit" | "" => Some(RefitPolicy::Always),
            "warm_start" | "warm-start" | "warm" => Some(RefitPolicy::WarmStart),
            _ => None,
        }
    }
}

/// Configuration of one evaluation run (the programmatic form of the
/// paper's "configuration file"; the core crate parses the file format
/// into this struct). Construct via [`EvalConfig::builder`] — which
/// validates once and yields a [`ValidatedEvalConfig`] — or fill the
/// fields directly and call [`EvalConfig::into_validated`].
#[derive(Debug, Clone, PartialEq)]
pub struct EvalConfig {
    /// Methods to evaluate.
    pub methods: Vec<ModelSpec>,
    /// Evaluation strategy.
    pub strategy: Strategy,
    /// Chronological split specification.
    pub split: SplitSpec,
    /// Normalization applied to model inputs.
    pub scaler: ScalerKind,
    /// Metric names to compute (must resolve in the registry).
    pub metrics: Vec<String>,
    /// Worker threads for corpus sweeps (0 = all available cores).
    pub threads: usize,
    /// When rolling windows rebuild model/scaler state.
    pub refit: RefitPolicy,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            methods: vec![ModelSpec::Naive],
            strategy: Strategy::Fixed { horizon: 12 },
            split: SplitSpec::default(),
            scaler: ScalerKind::ZScore,
            metrics: vec!["mae".into(), "rmse".into(), "smape".into(), "mase".into()],
            threads: 0,
            refit: RefitPolicy::Always,
        }
    }
}

impl EvalConfig {
    /// Starts a fluent builder. The builder begins with the default
    /// strategy/split/scaler/metrics but **no methods** — add at least one
    /// via [`EvalConfigBuilder::method`] or [`EvalConfigBuilder::methods`].
    pub fn builder() -> EvalConfigBuilder {
        EvalConfigBuilder::default()
    }

    /// Validates the configuration against the metric registry.
    pub fn validate(&self, registry: &MetricRegistry) -> Result<(), EvalError> {
        if self.methods.is_empty() {
            return Err(EvalError::InvalidConfig { reason: "no methods configured".into() });
        }
        if self.metrics.is_empty() {
            return Err(EvalError::InvalidConfig { reason: "no metrics configured".into() });
        }
        self.strategy.validate()?;
        for m in &self.metrics {
            registry.get(m)?;
        }
        Ok(())
    }

    /// Validates against `registry` and seals the result, the form
    /// [`evaluate`] and [`evaluate_corpus`] accept.
    pub fn into_validated(
        self,
        registry: &MetricRegistry,
    ) -> Result<ValidatedEvalConfig, EvalError> {
        self.validate(registry)?;
        Ok(ValidatedEvalConfig { config: self })
    }
}

/// Fluent builder for [`EvalConfig`]; [`EvalConfigBuilder::build`] performs
/// the one-and-only validation pass (methods/metrics non-empty, strategy
/// parameters sane, metric names known to the registry).
#[derive(Debug, Clone)]
pub struct EvalConfigBuilder {
    config: EvalConfig,
}

impl Default for EvalConfigBuilder {
    fn default() -> Self {
        EvalConfigBuilder { config: EvalConfig { methods: Vec::new(), ..EvalConfig::default() } }
    }
}

impl EvalConfigBuilder {
    /// Adds one method to the roster.
    pub fn method(mut self, spec: ModelSpec) -> Self {
        self.config.methods.push(spec);
        self
    }

    /// Replaces the method roster.
    pub fn methods(mut self, specs: impl IntoIterator<Item = ModelSpec>) -> Self {
        self.config.methods = specs.into_iter().collect();
        self
    }

    /// Sets the evaluation strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Sets the chronological split.
    pub fn split(mut self, split: SplitSpec) -> Self {
        self.config.split = split;
        self
    }

    /// Sets the normalization method.
    pub fn scaler(mut self, scaler: ScalerKind) -> Self {
        self.config.scaler = scaler;
        self
    }

    /// Adds one metric to the (default) metric list.
    pub fn metric(mut self, name: impl Into<String>) -> Self {
        self.config.metrics.push(name.into());
        self
    }

    /// Replaces the metric list.
    pub fn metrics(mut self, names: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.config.metrics = names.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the corpus-sweep worker count (0 = all cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Sets the rolling refit policy.
    pub fn refit(mut self, refit: RefitPolicy) -> Self {
        self.config.refit = refit;
        self
    }

    /// Validates against `registry` and seals the configuration.
    pub fn build(self, registry: &MetricRegistry) -> Result<ValidatedEvalConfig, EvalError> {
        self.config.into_validated(registry)
    }
}

/// A configuration that passed [`EvalConfig::validate`]. Only constructible
/// through [`EvalConfigBuilder::build`] / [`EvalConfig::into_validated`], so
/// the pipeline entry points no longer re-validate ad hoc.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidatedEvalConfig {
    config: EvalConfig,
}

impl ValidatedEvalConfig {
    /// The validated configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// Unwraps the inner configuration (e.g. to tweak and re-validate).
    pub fn into_inner(self) -> EvalConfig {
        self.config
    }
}

impl std::ops::Deref for ValidatedEvalConfig {
    type Target = EvalConfig;

    fn deref(&self) -> &EvalConfig {
        &self.config
    }
}

/// Why an evaluation failed, in coarse machine-checkable categories (the
/// knowledge base and AutoML layers branch on these instead of matching
/// substrings of error prose).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// The training prefix was shorter than the method or split required.
    DataTooShort,
    /// A numerical routine failed to converge or produced non-finite state.
    ModelDiverged,
    /// The scaler could not produce a usable transform.
    ScalerDegenerate,
    /// Anything else (unknown methods, internal errors, …).
    Other,
}

impl FailureKind {
    /// Canonical snake_case name (stable; used in reports).
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::DataTooShort => "data_too_short",
            FailureKind::ModelDiverged => "model_diverged",
            FailureKind::ScalerDegenerate => "scaler_degenerate",
            FailureKind::Other => "other",
        }
    }
}

/// A typed evaluation failure: a categorical [`FailureKind`] plus the full
/// human-readable detail. `Display` renders the detail alone, so report
/// tables and knowledge-base serialization look exactly as they did when
/// records carried a bare string.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalFailure {
    /// Coarse category for filtering.
    pub kind: FailureKind,
    /// Human-readable description (the underlying error's `Display`).
    pub detail: String,
}

impl EvalFailure {
    /// Captures an [`EvalError`] as a typed failure.
    pub(crate) fn from_error(e: &EvalError) -> EvalFailure {
        EvalFailure { kind: classify(e), detail: e.to_string() }
    }
}

impl std::fmt::Display for EvalFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.detail)
    }
}

/// Maps an error to its failure category.
fn classify(e: &EvalError) -> FailureKind {
    match e {
        EvalError::Model(ModelError::TooShort { .. }) => FailureKind::DataTooShort,
        EvalError::Model(ModelError::Numeric { .. }) => FailureKind::ModelDiverged,
        EvalError::Model(ModelError::Data(d)) | EvalError::Data(d) => match d {
            DataError::ScalerNotFitted | DataError::NonFiniteValue { .. } => {
                FailureKind::ScalerDegenerate
            }
            DataError::EmptySeries { .. } => FailureKind::DataTooShort,
            _ => FailureKind::Other,
        },
        EvalError::InsufficientTestData { .. } => FailureKind::DataTooShort,
        _ => FailureKind::Other,
    }
}

/// Result record of evaluating one method on one dataset — the row shape
/// stored in the benchmark knowledge base.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRecord {
    /// Dataset id.
    pub dataset_id: String,
    /// Canonical method name.
    pub method: String,
    /// Method family name.
    pub family: String,
    /// Strategy name (`fixed` / `rolling`).
    pub strategy: String,
    /// Forecast horizon.
    pub horizon: usize,
    /// Mean metric values over all evaluation windows (NaNs skipped).
    pub scores: BTreeMap<String, f64>,
    /// Number of evaluation windows scored.
    pub windows: usize,
    /// Wall-clock milliseconds spent fitting and forecasting.
    pub runtime_ms: f64,
    /// Typed failure when the method could not be evaluated.
    pub error: Option<EvalFailure>,
}

impl EvalRecord {
    /// Convenience accessor with NaN for missing metrics.
    pub fn score(&self, metric: &str) -> f64 {
        self.scores.get(metric).copied().unwrap_or(f64::NAN)
    }

    /// True when the evaluation completed.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }

    /// The failure category, when the evaluation failed.
    pub fn failure_kind(&self) -> Option<FailureKind> {
        self.error.as_ref().map(|e| e.kind)
    }
}

/// Evaluates one method on one univariate series under a validated config.
///
/// Model or data failures are reported inside the returned record (see
/// [`EvalRecord::error`]); only configuration errors return `Err`.
pub fn evaluate(
    dataset_id: &str,
    series: &TimeSeries,
    spec: &ModelSpec,
    config: &ValidatedEvalConfig,
    registry: &MetricRegistry,
) -> Result<EvalRecord, EvalError> {
    let config = config.config();
    let mut record = EvalRecord {
        dataset_id: dataset_id.to_string(),
        method: spec.name(),
        family: spec.family().name().to_string(),
        strategy: config.strategy.name().to_string(),
        horizon: config.strategy.horizon(),
        scores: BTreeMap::new(),
        windows: 0,
        runtime_ms: 0.0,
        error: None,
    };

    let mut sp = easytime_obs::span("eval.evaluate");
    sp.attr("dataset", record.dataset_id.as_str());
    sp.attr("method", record.method.as_str());
    match run_windows(series, spec, config, registry) {
        Ok((scores, windows, runtime_ms)) => {
            record.scores = scores;
            record.windows = windows;
            record.runtime_ms = runtime_ms;
            sp.attr_u64("windows", windows as u64);
        }
        Err(e) => {
            easytime_obs::add("eval.model_failures", 1);
            if easytime_obs::enabled() {
                easytime_obs::warn(
                    "eval.pipeline",
                    &format!("{}/{} failed: {e}", record.dataset_id, record.method),
                );
            }
            record.error = Some(EvalFailure::from_error(&e));
        }
    }
    Ok(record)
}

/// Reusable per-job scratch buffers for the incremental window loop: once
/// each buffer has grown to its steady-state capacity, warm windows
/// perform zero heap allocations.
#[derive(Debug, Default)]
struct WindowWorkspace {
    /// Scaled full training prefix (refit fallback path).
    scaled_train: Vec<f64>,
    /// Scaled newly-appended observations (warm path).
    scaled_append: Vec<f64>,
    /// Scaled-space forecast for the current window.
    forecast: Vec<f64>,
    /// Raw-scale predictions for the current window.
    predicted: Vec<f64>,
    /// Carrier series handed to [`Forecaster::update`]; its value buffer
    /// is recycled across windows.
    carrier: Option<TimeSeries>,
}

/// Inner pipeline: returns `(mean scores, window count, runtime ms)`.
fn run_windows(
    series: &TimeSeries,
    spec: &ModelSpec,
    config: &EvalConfig,
    registry: &MetricRegistry,
) -> Result<(BTreeMap<String, f64>, usize, f64), EvalError> {
    let n = series.len();
    // Where the test partition starts: after train + val.
    let split = config.split.split(series)?;
    let test_start = n - split.test.len();
    let windows = config.strategy.windows(n, test_start, config.split.drop_last)?;
    let period = series.frequency().default_period().unwrap_or(1);

    // Resolve metrics once; per-window work indexes this slice instead of
    // hitting the registry per metric per window.
    let resolved: Vec<&Metric> =
        config.metrics.iter().map(|m| registry.get(m)).collect::<Result<_, _>>()?;

    let mut sp = easytime_obs::span("eval.run_windows");
    sp.attr_u64("windows", windows.len() as u64);
    let started = Stopwatch::start();
    let mut sums: Vec<(f64, usize)> = vec![(0.0, 0); resolved.len()];
    match config.refit {
        RefitPolicy::Always => {
            refit_windows(series, spec, config, &windows, period, &resolved, &mut sums)?;
        }
        RefitPolicy::WarmStart => {
            warm_windows(series, spec, config, &windows, period, &resolved, &mut sums)?;
        }
    }
    let runtime_ms = started.elapsed_ms();

    let scores = resolved
        .iter()
        .zip(&sums)
        .map(|(m, &(sum, cnt))| {
            (m.name().to_string(), if cnt > 0 { sum / cnt as f64 } else { f64::NAN })
        })
        .collect();
    Ok((scores, windows.len(), runtime_ms))
}

/// Scores one window into the running per-metric sums.
fn score_window(
    actual: &[f64],
    predicted: &[f64],
    train_raw: &[f64],
    period: usize,
    resolved: &[&Metric],
    sums: &mut [(f64, usize)],
) -> Result<(), EvalError> {
    let _score_sp = easytime_obs::span("eval.score");
    let ctx = MetricContext::new(actual, predicted, train_raw, period)?;
    for (slot, metric) in sums.iter_mut().zip(resolved) {
        let v = metric.compute(&ctx);
        if v.is_finite() {
            slot.0 += v;
            slot.1 += 1;
        }
    }
    Ok(())
}

/// Classical rolling loop: per-window scaler refit + fresh model
/// ([`RefitPolicy::Always`]). Numerics are unchanged from the historical
/// pipeline, keeping default-policy results bit-identical.
fn refit_windows(
    series: &TimeSeries,
    spec: &ModelSpec,
    config: &EvalConfig,
    windows: &[EvalWindow],
    period: usize,
    resolved: &[&Metric],
    sums: &mut [(f64, usize)],
) -> Result<(), EvalError> {
    let raw = series.values();
    for w in windows {
        let mut wsp = easytime_obs::span("eval.window");
        wsp.attr_u64("origin", w.origin as u64);
        wsp.attr_u64("len", w.len as u64);
        // 1–2. training context and scaler (fitted on train only).
        let train_slice = &raw[..w.origin];
        let mut scaler = Scaler::new(config.scaler);
        let train_series = {
            let _scale_sp = easytime_obs::span("eval.scale");
            let scaled_train = scaler.fit_transform(train_slice)?;
            series.with_values(scaled_train)?
        };

        // 3. fresh model per window (rolling refit semantics).
        let mut model = spec.build()?;
        {
            let _fit_sp = easytime_obs::span("eval.fit");
            model.fit(&train_series)?;
        }

        // 4. forecast + inverse transform.
        let predicted = {
            let _forecast_sp = easytime_obs::span("eval.forecast");
            let predicted_scaled: ModelResult<Vec<f64>> = model.forecast(w.len);
            scaler.inverse(&predicted_scaled?)?
        };

        // 5. metrics on the raw scale.
        let actual = &raw[w.origin..w.origin + w.len];
        score_window(actual, &predicted, train_slice, period, resolved, sums)?;
    }
    easytime_obs::add("eval.full_refits", windows.len() as u64);
    Ok(())
}

// lint: hot(steady-state rolling window loop; allocation-free per window once warm, pinned by obs/tests/no_alloc_eval.rs)
/// Incremental rolling loop ([`RefitPolicy::WarmStart`]).
///
/// Scaler statistics stream forward in O(appended) per window
/// ([`Scaler::extend`]); the live model absorbs only the appended
/// observations via [`Forecaster::update`]. The appended values are scaled
/// with the transform the model was *fitted* under (kept in `frozen`), so
/// its internal state stays in one consistent space — warm-startable
/// families are affine-equivariant, which makes their raw-scale forecasts
/// agree with a full refit. When `update` declines (`Ok(false)`), the
/// model is rebuilt on the whole prefix under the current streamed
/// statistics and `frozen` resets.
fn warm_windows(
    series: &TimeSeries,
    spec: &ModelSpec,
    config: &EvalConfig,
    windows: &[EvalWindow],
    period: usize,
    resolved: &[&Metric],
    sums: &mut [(f64, usize)],
) -> Result<(), EvalError> {
    let raw = series.values();
    let mut ws = WindowWorkspace::default();
    let mut scaler = Scaler::new(config.scaler);
    let mut seeded = false;
    // Training-prefix length the scaler statistics currently cover.
    let mut covered = 0usize;
    let mut model: Option<Box<dyn Forecaster>> = None;
    // (shift, scale) the live model was fitted under.
    let mut frozen = (0.0, 1.0);
    let mut warm_starts = 0u64;
    let mut full_refits = 0u64;

    for w in windows {
        // lint: allow(hot-path-alloc) — span records only when tracing is on; the disabled path is allocation-free, pinned by obs/tests/no_alloc.rs
        let mut wsp = easytime_obs::span("eval.window");
        wsp.attr_u64("origin", w.origin as u64);
        wsp.attr_u64("len", w.len as u64);
        let appended = &raw[covered..w.origin];

        // Advance scaler statistics to cover raw[..w.origin].
        {
            // lint: allow(hot-path-alloc) — stage span: records only when tracing is on; the disabled path is allocation-free, pinned by obs/tests/no_alloc.rs
            let _scale_sp = easytime_obs::span("eval.scale");
            if !seeded {
                if !scaler.extend(&raw[..w.origin])? {
                    // lint: allow(hot-path-alloc) — first-window seeding only; every later window takes the streaming extend branch
                    scaler.fit(&raw[..w.origin])?;
                }
                seeded = true;
            } else if !appended.is_empty() && !scaler.extend(appended)? {
                // Non-streamable statistics (robust): rescan the prefix.
                // lint: allow(hot-path-alloc) — cold branch for non-streamable scalers; WarmStart runs use streaming statistics, pinned by obs/tests/no_alloc_eval.rs
                scaler.fit(&raw[..w.origin])?;
            }
        }
        covered = w.origin;

        // Warm path: hand the appended observations — scaled under the
        // model's fit-time transform — to `update`.
        let mut warmed = false;
        if let Some(m) = model.as_mut() {
            if appended.is_empty() {
                warmed = true;
            } else {
                // lint: allow(hot-path-alloc) — stage span: records only when tracing is on; the disabled path is allocation-free, pinned by obs/tests/no_alloc_eval.rs
                let _update_sp = easytime_obs::span("eval.update");
                ws.scaled_append.clear();
                ws.scaled_append.extend(appended.iter().map(|v| (v - frozen.0) / frozen.1));
                match ws.carrier.as_mut() {
                    // lint: allow(hot-path-alloc) — assign_values reuses the carrier's buffer; it only grows while the workspace warms up
                    Some(ts) => ts.assign_values(&ws.scaled_append)?,
                    // lint: allow(hot-path-alloc) — carrier construction happens once, on the first warm window; later windows take the Some arm
                    None => ws.carrier = Some(series.with_values(ws.scaled_append.clone())?),
                }
                let Some(carrier) = ws.carrier.as_ref() else {
                    return Err(EvalError::Internal {
                        reason: "workspace carrier missing after assignment".into(),
                    });
                };
                // lint: allow(hot-path-alloc) — the allocations in update's closure are error-message construction and the traced-only models.update span; the accepting steady-state path is allocation-free, pinned by obs/tests/no_alloc_eval.rs
                warmed = m.update(carrier)?;
            }
        }

        if warmed {
            warm_starts += 1;
        } else {
            // Cold path: rebuild under the current streamed statistics.
            full_refits += 1;
            // lint: allow(hot-path-alloc) — cold full-refit branch: the stage span only records when tracing is on
            let _fit_sp = easytime_obs::span("eval.fit");
            let (shift, scale) = scaler
                .fitted_params()
                .ok_or(EvalError::Data(DataError::ScalerNotFitted))?;
            frozen = (shift, scale);
            scaler.transform_into(&raw[..w.origin], &mut ws.scaled_train)?;
            // lint: allow(hot-path-alloc) — cold full-refit branch: it runs once at seed time under WarmStart (450 extra warm windows cost zero allocations, pinned by obs/tests/no_alloc_eval.rs)
            let train_series = series.with_values(ws.scaled_train.clone())?;
            // lint: allow(hot-path-alloc) — cold full-refit branch: model construction only happens when update declines
            let mut fresh = spec.build()?;
            // lint: allow(hot-path-alloc) — cold full-refit branch: fitting from scratch is the rebuild, not the steady state
            fresh.fit(&train_series)?;
            model = Some(fresh);
        }

        let Some(m) = model.as_ref() else {
            return Err(EvalError::Internal { reason: "no model after refit".into() });
        };
        {
            // lint: allow(hot-path-alloc) — stage span: records only when tracing is on; the disabled path is allocation-free, pinned by obs/tests/no_alloc_eval.rs
            let _forecast_sp = easytime_obs::span("eval.forecast");
            // lint: allow(hot-path-alloc) — forecast_into writes into the reused workspace buffer; the allocating witnesses are the default-impl fallback warm-startable families override and the traced-only models.forecast span
            m.forecast_into(w.len, &mut ws.forecast)?;
            ws.predicted.clear();
            ws.predicted.extend(ws.forecast.iter().map(|v| v * frozen.1 + frozen.0));
        }

        let actual = &raw[w.origin..w.origin + w.len];
        // lint: allow(hot-path-alloc) — score_window's only allocation is its traced-only eval.score span; metric computation itself is allocation-free, pinned by obs/tests/no_alloc_eval.rs
        score_window(actual, &ws.predicted, &raw[..w.origin], period, resolved, sums)?;
    }
    easytime_obs::add("eval.warm_starts", warm_starts);
    easytime_obs::add("eval.full_refits", full_refits);
    Ok(())
}

/// Estimated relative cost of evaluating one method on `dataset`:
/// series length × evaluation window count. The estimate mirrors the
/// split arithmetic of [`SplitSpec::split`] without materializing the
/// split; when the strategy rejects the dataset (too short), the job is
/// a fast failure and costs as a single window.
fn job_cost(dataset: &Dataset, config: &EvalConfig) -> u128 {
    let n = dataset.meta.length;
    let test_start =
        ((n as f64) * (config.split.train_ratio + config.split.val_ratio)).floor() as usize;
    let windows = config
        .strategy
        .windows(n, test_start, config.split.drop_last)
        .map(|w| w.len().max(1))
        .unwrap_or(1);
    n as u128 * windows as u128
}

/// Evaluates every configured method on every dataset, in parallel.
///
/// Multivariate datasets are evaluated channel-independently on their
/// primary series (the univariate protocol TFB applies to UTSF methods);
/// errors are captured per record. Jobs are *dispatched* longest-first
/// (estimated cost: series length × window count) so the heaviest
/// dataset/method pairs never start last and stall the sweep's tail, but
/// each result is written to the slot of its original job index — record
/// order stays deterministic: datasets × methods in input order,
/// bit-identical to in-order dispatch.
pub fn evaluate_corpus(
    datasets: &[Dataset],
    config: &ValidatedEvalConfig,
    registry: &MetricRegistry,
) -> Result<Vec<EvalRecord>, EvalError> {
    let inner = config.config();
    let jobs: Vec<(usize, &Dataset, &ModelSpec)> = datasets
        .iter()
        .flat_map(|d| inner.methods.iter().map(move |m| (d, m)))
        .enumerate()
        .map(|(i, (d, m))| (i, d, m))
        .collect();

    let workers = if inner.threads == 0 {
        std::thread::available_parallelism().map(usize::from).unwrap_or(4)
    } else {
        inner.threads
    }
    .min(jobs.len().max(1));

    let mut sp = easytime_obs::span("eval.corpus");
    sp.attr_u64("jobs", jobs.len() as u64);
    sp.attr_u64("workers", workers as u64);
    if easytime_obs::enabled() {
        // Run manifest: enough provenance to tie metrics.json to its run.
        easytime_obs::manifest_set(
            "config_hash",
            easytime_obs::fnv1a_hex(format!("{inner:?}").as_bytes()),
        );
        let ids: Vec<String> = datasets.iter().map(|d| d.meta.id.clone()).collect();
        easytime_obs::manifest_set_list("dataset_ids", &ids);
        let methods: Vec<String> =
            inner.methods.iter().map(easytime_models::ModelSpec::name).collect();
        easytime_obs::manifest_set_list("methods", &methods);
        easytime_obs::manifest_set("workers", workers);
        easytime_obs::manifest_set("refit_policy", inner.refit.name());
    }

    // Longest-job-first dispatch order: descending estimated cost with the
    // original index as a deterministic tiebreak. Workers pull from this
    // permutation; slot writes below still key on the original index.
    let mut schedule: Vec<usize> = (0..jobs.len()).collect();
    let costs: Vec<u128> = jobs.iter().map(|&(_, d, _)| job_cost(d, inner)).collect();
    schedule.sort_by(|&a, &b| costs[b].cmp(&costs[a]).then(a.cmp(&b)));

    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<EvalRecord>> = vec![None; jobs.len()];
    let slot_refs: Vec<std::sync::Mutex<&mut Option<EvalRecord>>> =
        slots.iter_mut().map(std::sync::Mutex::new).collect();

    std::thread::scope(|scope| -> Result<(), EvalError> {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let jobs = &jobs;
            let schedule = &schedule;
            let next = &next;
            let slot_refs = &slot_refs;
            handles.push(scope.spawn(move || -> Result<(), EvalError> {
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= schedule.len() {
                        return Ok(());
                    }
                    let (idx, dataset, spec) = jobs[schedule[i]];
                    let series = dataset.primary_series();
                    let record = evaluate(&dataset.meta.id, &series, spec, config, registry)?;
                    // Each slot is written by exactly one job; the mutex only
                    // provides Sync access, so poison recovery is safe.
                    **slot_refs[idx]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(record);
                }
            }));
        }
        for h in handles {
            match h.join() {
                Ok(result) => result?,
                Err(_) => {
                    return Err(EvalError::Internal {
                        reason: "evaluation worker panicked".into(),
                    })
                }
            }
        }
        Ok(())
    })?;

    slots
        .into_iter()
        .map(|s| {
            s.ok_or_else(|| EvalError::Internal { reason: "evaluation job left its slot empty".into() })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use easytime_data::synthetic::{build_corpus, CorpusConfig};
    use easytime_data::{Domain, Frequency};
    use std::f64::consts::PI;

    fn seasonal_series(n: usize) -> TimeSeries {
        let values: Vec<f64> = (0..n)
            .map(|t| 10.0 + 0.05 * t as f64 + 4.0 * (2.0 * PI * t as f64 / 12.0).sin())
            .collect();
        TimeSeries::new("seasonal", values, Frequency::Monthly).unwrap()
    }

    fn validated(config: EvalConfig) -> ValidatedEvalConfig {
        config.into_validated(&MetricRegistry::standard()).unwrap()
    }

    #[test]
    fn fixed_evaluation_produces_scores() {
        let series = seasonal_series(120);
        let config = validated(EvalConfig::default());
        let registry = MetricRegistry::standard();
        let rec = evaluate("d1", &series, &ModelSpec::SeasonalNaive(None), &config, &registry)
            .unwrap();
        assert!(rec.is_ok(), "error: {:?}", rec.error);
        assert_eq!(rec.windows, 1);
        assert_eq!(rec.method, "seasonal_naive");
        assert_eq!(rec.strategy, "fixed");
        assert!(rec.score("mae").is_finite());
        assert!(rec.score("mase").is_finite());
        assert!(rec.runtime_ms >= 0.0);
    }

    #[test]
    fn builder_is_fluent_and_validates_once() {
        let registry = MetricRegistry::standard();
        let config = EvalConfig::builder()
            .method(ModelSpec::Naive)
            .method(ModelSpec::Drift)
            .strategy(Strategy::Rolling { horizon: 6, stride: 6, max_windows: Some(4) })
            .scaler(ScalerKind::MinMax)
            .metrics(["mae", "rmse"])
            .threads(2)
            .refit(RefitPolicy::WarmStart)
            .build(&registry)
            .unwrap();
        assert_eq!(config.methods.len(), 2);
        assert_eq!(config.scaler, ScalerKind::MinMax);
        assert_eq!(config.refit, RefitPolicy::WarmStart);
        assert_eq!(config.metrics, vec!["mae".to_string(), "rmse".to_string()]);
        // Round trip through the sealed type.
        let inner = config.clone().into_inner();
        assert_eq!(&inner, config.config());
    }

    #[test]
    fn builder_rejects_invalid_configs() {
        let registry = MetricRegistry::standard();
        // No methods.
        assert!(matches!(
            EvalConfig::builder().build(&registry),
            Err(EvalError::InvalidConfig { .. })
        ));
        // No metrics.
        assert!(matches!(
            EvalConfig::builder()
                .method(ModelSpec::Naive)
                .metrics(Vec::<String>::new())
                .build(&registry),
            Err(EvalError::InvalidConfig { .. })
        ));
        // Unknown metric names fail at build time, not inside the sweep.
        assert!(matches!(
            EvalConfig::builder().method(ModelSpec::Naive).metric("nope").build(&registry),
            Err(EvalError::UnknownMetric { .. })
        ));
        // Bad strategy parameters.
        assert!(EvalConfig::builder()
            .method(ModelSpec::Naive)
            .strategy(Strategy::Fixed { horizon: 0 })
            .build(&registry)
            .is_err());
    }

    #[test]
    fn rolling_scores_multiple_windows() {
        let series = seasonal_series(200);
        let config = validated(EvalConfig {
            strategy: Strategy::Rolling { horizon: 10, stride: 10, max_windows: None },
            ..EvalConfig::default()
        });
        let registry = MetricRegistry::standard();
        let rec =
            evaluate("d1", &series, &ModelSpec::Naive, &config, &registry).unwrap();
        assert!(rec.is_ok());
        assert!(rec.windows >= 3, "windows {}", rec.windows);
    }

    #[test]
    fn good_model_beats_bad_model_on_seasonal_data() {
        let series = seasonal_series(240);
        let config = validated(EvalConfig::default());
        let registry = MetricRegistry::standard();
        let snaive =
            evaluate("d", &series, &ModelSpec::SeasonalNaive(None), &config, &registry).unwrap();
        let mean =
            evaluate("d", &series, &ModelSpec::Mean, &config, &registry).unwrap();
        assert!(
            snaive.score("mae") < mean.score("mae"),
            "seasonal naive {} should beat mean {}",
            snaive.score("mae"),
            mean.score("mae")
        );
    }

    #[test]
    fn model_failures_are_captured_not_propagated() {
        // A 24-point series leaves a 19-point training window — below
        // ARIMA's minimum of 20.
        let series = TimeSeries::new(
            "tiny",
            (0..24).map(|t| t as f64).collect(),
            Frequency::Daily,
        )
        .unwrap();
        let config = validated(EvalConfig {
            strategy: Strategy::Fixed { horizon: 4 },
            ..EvalConfig::default()
        });
        let registry = MetricRegistry::standard();
        let rec =
            evaluate("tiny", &series, &ModelSpec::Arima(2, 1, 1), &config, &registry).unwrap();
        assert!(!rec.is_ok());
        let failure = rec.error.as_ref().unwrap();
        assert!(failure.detail.contains("too short"), "{failure}");
        assert_eq!(failure.kind, FailureKind::DataTooShort);
        assert_eq!(rec.failure_kind(), Some(FailureKind::DataTooShort));
        // Display renders the detail alone (legacy string format).
        assert_eq!(failure.to_string(), failure.detail);
    }

    #[test]
    fn refit_policy_names_round_trip() {
        for p in [RefitPolicy::Always, RefitPolicy::WarmStart] {
            assert_eq!(RefitPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(RefitPolicy::parse("warm-start"), Some(RefitPolicy::WarmStart));
        assert_eq!(RefitPolicy::parse("sometimes"), None);
        assert_eq!(RefitPolicy::default(), RefitPolicy::Always);
    }

    #[test]
    fn warm_start_policy_counts_warm_and_cold_windows() {
        let series = seasonal_series(300);
        let config = validated(EvalConfig {
            strategy: Strategy::Rolling { horizon: 6, stride: 6, max_windows: Some(10) },
            refit: RefitPolicy::WarmStart,
            ..EvalConfig::default()
        });
        let registry = MetricRegistry::standard();
        let rec = evaluate("d", &series, &ModelSpec::Naive, &config, &registry).unwrap();
        assert!(rec.is_ok(), "error: {:?}", rec.error);
        assert_eq!(rec.windows, 10);
        assert!(rec.score("mae").is_finite());
    }

    #[test]
    fn scaling_is_fitted_on_train_only_and_inverted() {
        // With a huge level, un-inverted forecasts would produce absurd MAE.
        let values: Vec<f64> = (0..100).map(|t| 1e6 + (t % 7) as f64).collect();
        let series = TimeSeries::new("lvl", values, Frequency::Daily).unwrap();
        let registry = MetricRegistry::standard();
        for refit in [RefitPolicy::Always, RefitPolicy::WarmStart] {
            let config = validated(EvalConfig {
                scaler: ScalerKind::ZScore,
                strategy: Strategy::Fixed { horizon: 7 },
                refit,
                ..EvalConfig::default()
            });
            let rec =
                evaluate("lvl", &series, &ModelSpec::SeasonalNaive(Some(7)), &config, &registry)
                    .unwrap();
            assert!(rec.is_ok());
            assert!(
                rec.score("mae") < 10.0,
                "{refit:?}: mae {} implies broken inverse transform",
                rec.score("mae")
            );
        }
    }

    #[test]
    fn corpus_sweep_is_parallel_deterministic_and_ordered() {
        let corpus = build_corpus(&CorpusConfig {
            domains: vec![Domain::Nature, Domain::Web],
            per_domain: 3,
            length: 150,
            ..CorpusConfig::default()
        })
        .unwrap();
        let config = validated(EvalConfig {
            methods: vec![ModelSpec::Naive, ModelSpec::SeasonalNaive(None), ModelSpec::Drift],
            threads: 3,
            ..EvalConfig::default()
        });
        let registry = MetricRegistry::standard();
        let mut a = evaluate_corpus(&corpus, &config, &registry).unwrap();
        let mut b = evaluate_corpus(&corpus, &config, &registry).unwrap();
        assert_eq!(a.len(), 6 * 3);
        // Wall-clock differs between runs; everything else must match.
        for r in a.iter_mut().chain(b.iter_mut()) {
            r.runtime_ms = 0.0;
        }
        assert_eq!(a, b, "parallel sweep must be deterministic");
        // Order: dataset-major, method-minor.
        assert_eq!(a[0].dataset_id, corpus[0].meta.id);
        assert_eq!(a[0].method, "naive");
        assert_eq!(a[1].method, "seasonal_naive");
        assert_eq!(a[3].dataset_id, corpus[1].meta.id);
    }

    #[test]
    fn ljf_dispatch_keeps_record_order_across_thread_counts() {
        // Mixed-size corpus so the cost estimates genuinely reorder the
        // dispatch: the 400-point datasets must start before the 90-point
        // ones, yet the records must come back in input order.
        let mut corpus = build_corpus(&CorpusConfig {
            domains: vec![Domain::Nature],
            per_domain: 2,
            length: 90,
            ..CorpusConfig::default()
        })
        .unwrap();
        corpus.extend(
            build_corpus(&CorpusConfig {
                domains: vec![Domain::Web],
                per_domain: 2,
                length: 400,
                ..CorpusConfig::default()
            })
            .unwrap(),
        );
        let registry = MetricRegistry::standard();
        let strategy = Strategy::Rolling { horizon: 8, stride: 8, max_windows: None };
        let methods = vec![ModelSpec::Naive, ModelSpec::Drift];
        let run = |threads: usize| {
            let config = validated(EvalConfig {
                methods: methods.clone(),
                strategy,
                threads,
                ..EvalConfig::default()
            });
            let mut records = evaluate_corpus(&corpus, &config, &registry).unwrap();
            for r in &mut records {
                r.runtime_ms = 0.0;
            }
            records
        };
        let reference = run(1);
        for threads in [3usize, 8] {
            assert_eq!(
                run(threads),
                reference,
                "{threads}-thread sweep must match the single-thread records"
            );
        }
        // Record order is dataset-major, method-minor regardless of the
        // longest-first dispatch permutation.
        for (d, chunk) in reference.chunks(2).enumerate() {
            assert_eq!(chunk[0].dataset_id, corpus[d].meta.id);
            assert_eq!(chunk[0].method, "naive");
            assert_eq!(chunk[1].method, "drift");
        }
    }

    #[test]
    fn empty_config_is_rejected() {
        let registry = MetricRegistry::standard();
        let config = EvalConfig { methods: vec![], ..EvalConfig::default() };
        assert!(config.validate(&registry).is_err());
        let config = EvalConfig { metrics: vec![], ..EvalConfig::default() };
        assert!(config.validate(&registry).is_err());
    }
}
