//! Evaluation layer of EasyTime.
//!
//! Reproduces TFB's *evaluation layer*, *reporting layer*, and *benchmark
//! pipeline* (paper §II-A/B):
//!
//! * [`metrics`] — the metric registry (MAE, MSE, RMSE, MAPE, sMAPE, WAPE,
//!   MASE, R², and user-defined custom metrics).
//! * [`strategy`] — fixed-window and rolling-origin evaluation strategies.
//! * [`pipeline`] — the standardized split → normalize → fit → forecast →
//!   post-process → score pipeline behind one-click evaluation, with a
//!   parallel runner for corpus-scale sweeps.
//! * [`report`] — run records, leaderboards, and ASCII-table rendering
//!   (the stand-in for the web frontend's result panels).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod metrics;
pub mod multivariate;
pub mod pipeline;
pub mod plot;
pub mod report;
pub mod strategy;

pub use error::EvalError;
pub use metrics::{Metric, MetricContext, MetricRegistry};
pub use multivariate::evaluate_multivariate;
pub use pipeline::{
    evaluate, evaluate_corpus, EvalConfig, EvalConfigBuilder, EvalFailure, EvalRecord,
    FailureKind, RefitPolicy, ValidatedEvalConfig,
};
pub use plot::ForecastPlot;
pub use report::{Leaderboard, RunLog};
pub use strategy::Strategy;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, EvalError>;
