//! Multivariate evaluation path.
//!
//! TFB's corpus includes 25 multivariate datasets (paper §II-A); methods
//! that exploit cross-channel correlation (VAR) compete against
//! channel-independent application of univariate methods. This module runs
//! the same standardized pipeline as the univariate path — per-channel
//! scaling fitted on training data only, strategy-driven windows, raw-scale
//! metrics — and averages metric values across channels into one
//! [`EvalRecord`].

use crate::error::EvalError;
use crate::metrics::{Metric, MetricContext, MetricRegistry};
use crate::pipeline::{EvalConfig, EvalFailure, EvalRecord, ValidatedEvalConfig};
use easytime_data::{MultiSeries, Scaler};
use easytime_models::multivariate::MultiModelSpec;
use std::collections::BTreeMap;
use easytime_clock::Stopwatch;

/// Evaluates one multivariate method on one multivariate dataset.
///
/// Mirrors [`crate::pipeline::evaluate`]: model/data failures are captured
/// in the record; configuration errors are ruled out up front by the
/// [`ValidatedEvalConfig`] the caller must construct.
pub fn evaluate_multivariate(
    dataset_id: &str,
    series: &MultiSeries,
    spec: &MultiModelSpec,
    config: &ValidatedEvalConfig,
    registry: &MetricRegistry,
) -> Result<EvalRecord, EvalError> {
    let config = config.config();
    let mut record = EvalRecord {
        dataset_id: dataset_id.to_string(),
        method: spec.name(),
        family: "multivariate".to_string(),
        strategy: config.strategy.name().to_string(),
        horizon: config.strategy.horizon(),
        scores: BTreeMap::new(),
        windows: 0,
        runtime_ms: 0.0,
        error: None,
    };
    let mut sp = easytime_obs::span("eval.multivariate");
    sp.attr("dataset", dataset_id);
    sp.attr("method", record.method.as_str());
    match run(series, spec, config, registry) {
        Ok((scores, windows, runtime_ms)) => {
            record.scores = scores;
            record.windows = windows;
            record.runtime_ms = runtime_ms;
            sp.attr_u64("windows", windows as u64);
        }
        Err(e) => {
            // Failure diagnostics are structured events, not eprintln!
            // (lint R11); the record still captures the message.
            easytime_obs::add("eval.model_failures", 1);
            if easytime_obs::enabled() {
                easytime_obs::warn(
                    "eval.multivariate",
                    &format!("{dataset_id}/{} failed: {e}", record.method),
                );
            }
            record.error = Some(EvalFailure::from_error(&e));
        }
    }
    Ok(record)
}

fn run(
    series: &MultiSeries,
    spec: &MultiModelSpec,
    config: &EvalConfig,
    registry: &MetricRegistry,
) -> Result<(BTreeMap<String, f64>, usize, f64), EvalError> {
    let n = series.len();
    let k = series.num_channels();
    // Split geometry from the primary channel (all channels are aligned).
    let primary = series.to_univariate(0)?;
    let split = config.split.split(&primary)?;
    let test_start = n - split.test.len();
    let windows = config.strategy.windows(n, test_start, config.split.drop_last)?;
    let period = series.frequency().default_period().unwrap_or(1);

    // Resolve metrics once instead of per channel per window.
    let resolved: Vec<&Metric> =
        config.metrics.iter().map(|m| registry.get(m)).collect::<Result<_, _>>()?;

    let started = Stopwatch::start();
    let mut sums: Vec<(f64, usize)> = vec![(0.0, 0); resolved.len()];
    for w in &windows {
        let mut wsp = easytime_obs::span("eval.window");
        wsp.attr_u64("origin", w.origin as u64);
        wsp.attr_u64("len", w.len as u64);
        // Per-channel scaling fitted on each channel's training slice.
        let mut scalers = Vec::with_capacity(k);
        let mut scaled_channels = Vec::with_capacity(k);
        for ch in 0..k {
            let train_slice = &series.channel(ch)[..w.origin];
            let mut scaler = Scaler::new(config.scaler);
            scaled_channels.push(scaler.fit_transform(train_slice)?);
            scalers.push(scaler);
        }
        let train = MultiSeries::new(
            series.name(),
            series.channel_names().to_vec(),
            scaled_channels,
            series.frequency(),
        )?;

        let mut model = spec.build()?;
        model.fit(&train)?;
        let predicted_scaled = model.forecast(w.len)?;

        for ch in 0..k {
            let predicted = scalers[ch].inverse(&predicted_scaled[ch])?;
            let actual = &series.channel(ch)[w.origin..w.origin + w.len];
            let train_raw = &series.channel(ch)[..w.origin];
            let ctx = MetricContext::new(actual, &predicted, train_raw, period)?;
            for (slot, metric) in sums.iter_mut().zip(&resolved) {
                let v = metric.compute(&ctx);
                if v.is_finite() {
                    slot.0 += v;
                    slot.1 += 1;
                }
            }
        }
    }
    let runtime_ms = started.elapsed_ms();
    let scores = resolved
        .iter()
        .zip(&sums)
        .map(|(m, &(sum, cnt))| {
            (m.name().to_string(), if cnt > 0 { sum / cnt as f64 } else { f64::NAN })
        })
        .collect();
    Ok((scores, windows.len(), runtime_ms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use easytime_data::Frequency;
    use easytime_models::ModelSpec;

    fn validated(config: EvalConfig) -> ValidatedEvalConfig {
        config.into_validated(&MetricRegistry::standard()).unwrap()
    }

    /// Channel 1 follows channel 0 with a one-step lag — VAR territory.
    fn coupled(n: usize) -> MultiSeries {
        let driver: Vec<f64> = (0..n).map(|t| ((t as f64) * 0.37).sin() * 3.0 + 10.0).collect();
        let follower: Vec<f64> =
            (0..n).map(|t| if t == 0 { 10.0 } else { driver[t - 1] }).collect();
        MultiSeries::new(
            "coupled",
            vec!["driver".into(), "follower".into()],
            vec![driver, follower],
            Frequency::Hourly,
        )
        .unwrap()
    }

    #[test]
    fn var_beats_channel_independent_naive_on_coupled_channels() {
        let series = coupled(400);
        let registry = MetricRegistry::standard();
        let config = validated(EvalConfig {
            strategy: Strategy::Fixed { horizon: 8 },
            ..EvalConfig::default()
        });
        let var = evaluate_multivariate(
            "c",
            &series,
            &MultiModelSpec::Var { order: 2 },
            &config,
            &registry,
        )
        .unwrap();
        let ci = evaluate_multivariate(
            "c",
            &series,
            &MultiModelSpec::PerChannel(ModelSpec::Naive),
            &config,
            &registry,
        )
        .unwrap();
        assert!(var.is_ok(), "{:?}", var.error);
        assert!(ci.is_ok(), "{:?}", ci.error);
        assert!(
            var.score("mae") < ci.score("mae"),
            "VAR {} should beat channel-independent naive {}",
            var.score("mae"),
            ci.score("mae")
        );
        assert_eq!(var.method, "var_2");
        assert_eq!(ci.method, "ci_naive");
        assert_eq!(var.family, "multivariate");
    }

    #[test]
    fn rolling_strategy_works_on_multivariate() {
        let series = coupled(300);
        let registry = MetricRegistry::standard();
        let config = validated(EvalConfig {
            strategy: Strategy::Rolling { horizon: 10, stride: 10, max_windows: Some(3) },
            ..EvalConfig::default()
        });
        let rec = evaluate_multivariate(
            "c",
            &series,
            &MultiModelSpec::PerChannel(ModelSpec::SeasonalNaive(Some(17))),
            &config,
            &registry,
        )
        .unwrap();
        assert!(rec.is_ok());
        assert_eq!(rec.windows, 3);
        assert!(rec.score("smape").is_finite());
    }

    #[test]
    fn failures_are_captured_in_the_record() {
        let series = coupled(40);
        let registry = MetricRegistry::standard();
        let config = validated(EvalConfig {
            strategy: Strategy::Fixed { horizon: 4 },
            ..EvalConfig::default()
        });
        // VAR(12) over 2 channels needs a 40-point training window; only
        // 32 points are available before the forecast origin.
        let rec = evaluate_multivariate(
            "c",
            &series,
            &MultiModelSpec::Var { order: 12 },
            &config,
            &registry,
        )
        .unwrap();
        assert!(!rec.is_ok());
        let failure = rec.error.as_ref().unwrap();
        assert!(failure.detail.contains("too short"), "{failure}");
        assert_eq!(failure.kind, crate::pipeline::FailureKind::DataTooShort);
    }

    #[test]
    fn unknown_metric_is_rejected_at_validation() {
        let config = EvalConfig { metrics: vec!["nope".into()], ..EvalConfig::default() };
        assert!(matches!(
            config.into_validated(&MetricRegistry::standard()),
            Err(EvalError::UnknownMetric { .. })
        ));
    }
}
