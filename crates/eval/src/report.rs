//! Reporting layer: run logs, leaderboards, and table rendering.
//!
//! Stands in for TFB's reporting layer ("a logging system for tracking
//! experimental information and … visualization of time series inputs and
//! forecasting results", §II-A) and the result panels of the web frontend
//! (Figure 4, labels 9–10). [`RunLog`] accumulates [`EvalRecord`]s;
//! [`Leaderboard`] aggregates them into per-method rankings; both render as
//! fixed-width ASCII tables suitable for terminals and logs.

use crate::pipeline::EvalRecord;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Thread-safe accumulator of evaluation records.
#[derive(Debug, Default)]
pub struct RunLog {
    records: Mutex<Vec<EvalRecord>>,
}

impl RunLog {
    /// Creates an empty log.
    pub fn new() -> RunLog {
        RunLog::default()
    }

    /// Lock guard; a poisoned lock is recovered rather than propagated —
    /// records are append-only values, so no invariant can be torn.
    fn guard(&self) -> MutexGuard<'_, Vec<EvalRecord>> {
        self.records.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends one record.
    pub fn push(&self, record: EvalRecord) {
        self.guard().push(record);
    }

    /// Appends many records.
    pub fn extend(&self, records: impl IntoIterator<Item = EvalRecord>) {
        self.guard().extend(records);
    }

    /// Snapshot of all records.
    pub fn records(&self) -> Vec<EvalRecord> {
        self.guard().clone()
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.guard().len()
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.guard().is_empty()
    }

    /// Number of failed records.
    pub fn failures(&self) -> usize {
        self.guard().iter().filter(|r| !r.is_ok()).count()
    }

    /// Number of failed records of one [`FailureKind`] — typed filtering,
    /// no error-string matching (test diagnostics).
    #[cfg(test)]
    pub(crate) fn failures_of(&self, kind: crate::pipeline::FailureKind) -> usize {
        self.guard().iter().filter(|r| r.failure_kind() == Some(kind)).count()
    }

    /// Builds the leaderboard for one metric.
    pub fn leaderboard(&self, metric: &str, lower_is_better: bool) -> Leaderboard {
        Leaderboard::from_records(&self.guard(), metric, lower_is_better)
    }

    /// Renders the raw records as an ASCII table (one row per record).
    pub fn render_table(&self, metrics: &[&str]) -> String {
        let records = self.guard();
        let mut header: Vec<String> =
            vec!["dataset".into(), "method".into(), "strategy".into(), "h".into()];
        header.extend(metrics.iter().map(|m| m.to_string()));
        header.push("status".into());

        let rows: Vec<Vec<String>> = records
            .iter()
            .map(|r| {
                let mut row = vec![
                    r.dataset_id.clone(),
                    r.method.clone(),
                    r.strategy.clone(),
                    r.horizon.to_string(),
                ];
                for m in metrics {
                    row.push(format_score(r.score(m)));
                }
                row.push(r.error.as_ref().map_or_else(|| "ok".into(), |e| truncate(&e.detail, 28)));
                row
            })
            .collect();
        render_ascii(&header, &rows)
    }
}

/// Aggregated per-method standings for one metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Leaderboard {
    /// Metric the board ranks by.
    pub metric: String,
    /// `(method, mean score, mean rank, wins, datasets evaluated)`,
    /// best method first.
    pub rows: Vec<LeaderboardRow>,
}

/// One method's aggregate standing.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaderboardRow {
    /// Canonical method name.
    pub method: String,
    /// Mean metric value over datasets where the method succeeded.
    pub mean_score: f64,
    /// Mean rank across datasets (1 = best on that dataset).
    pub mean_rank: f64,
    /// Number of datasets where this method ranked first.
    pub wins: usize,
    /// Number of datasets with a finite score.
    pub datasets: usize,
}

impl Leaderboard {
    /// Builds a leaderboard from raw records for `metric`.
    pub fn from_records(records: &[EvalRecord], metric: &str, lower_is_better: bool) -> Leaderboard {
        // Group scores by dataset, then rank methods within each dataset.
        let mut by_dataset: BTreeMap<&str, Vec<(&str, f64)>> = BTreeMap::new();
        for r in records {
            let v = r.score(metric);
            // Typed failure filter: any categorized failure excludes the
            // record, without inspecting error prose.
            if r.failure_kind().is_none() && v.is_finite() {
                by_dataset.entry(&r.dataset_id).or_default().push((&r.method, v));
            }
        }

        #[derive(Default)]
        struct Acc {
            score_sum: f64,
            rank_sum: f64,
            wins: usize,
            n: usize,
        }
        let mut accs: BTreeMap<&str, Acc> = BTreeMap::new();
        for entries in by_dataset.values() {
            let mut sorted: Vec<&(&str, f64)> = entries.iter().collect();
            sorted.sort_by(|a, b| {
                let ord = a.1.total_cmp(&b.1);
                if lower_is_better {
                    ord
                } else {
                    ord.reverse()
                }
            });
            for (rank, (method, score)) in sorted.iter().enumerate() {
                let acc = accs.entry(method).or_default();
                acc.score_sum += score;
                acc.rank_sum += (rank + 1) as f64;
                acc.n += 1;
                if rank == 0 {
                    acc.wins += 1;
                }
            }
        }

        let mut rows: Vec<LeaderboardRow> = accs
            .into_iter()
            .map(|(method, a)| LeaderboardRow {
                method: method.to_string(),
                mean_score: a.score_sum / a.n as f64,
                mean_rank: a.rank_sum / a.n as f64,
                wins: a.wins,
                datasets: a.n,
            })
            .collect();
        rows.sort_by(|a, b| {
            a.mean_rank.total_cmp(&b.mean_rank)
        });
        Leaderboard { metric: metric.to_string(), rows }
    }

    /// The best-ranked method, if any records existed.
    pub fn winner(&self) -> Option<&LeaderboardRow> {
        self.rows.first()
    }

    /// Renders the board as an ASCII table.
    pub fn render(&self) -> String {
        let header = vec![
            "rank".to_string(),
            "method".to_string(),
            format!("mean_{}", self.metric),
            "mean_rank".to_string(),
            "wins".to_string(),
            "datasets".to_string(),
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                vec![
                    (i + 1).to_string(),
                    r.method.clone(),
                    format_score(r.mean_score),
                    format!("{:.2}", r.mean_rank),
                    r.wins.to_string(),
                    r.datasets.to_string(),
                ]
            })
            .collect();
        render_ascii(&header, &rows)
    }
}

/// Formats a score compactly, keeping tables aligned.
fn format_score(v: f64) -> String {
    if v.is_nan() {
        "-".into()
    } else if v.abs() >= 1e5 || (v != 0.0 && v.abs() < 1e-3) {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        format!("{}…", &s[..max.saturating_sub(1)])
    }
}

/// Renders a fixed-width ASCII table.
fn render_ascii(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.extend(std::iter::repeat('-').take(w + 2));
        }
        out.push_str("+\n");
    };
    let render_row = |out: &mut String, cells: &[String]| {
        for (i, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = cells.get(i).unwrap_or(&empty);
            out.push_str("| ");
            out.push_str(cell);
            out.extend(std::iter::repeat(' ').take(w - cell.len() + 1));
        }
        out.push_str("|\n");
    };
    sep(&mut out);
    render_row(&mut out, header);
    sep(&mut out);
    for row in rows {
        render_row(&mut out, row);
    }
    sep(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::FailureKind;

    fn record(dataset: &str, method: &str, mae: f64) -> EvalRecord {
        let mut scores = BTreeMap::new();
        scores.insert("mae".to_string(), mae);
        EvalRecord {
            dataset_id: dataset.into(),
            method: method.into(),
            family: "statistical".into(),
            strategy: "fixed".into(),
            horizon: 12,
            scores,
            windows: 1,
            runtime_ms: 1.0,
            error: None,
        }
    }

    #[test]
    fn log_accumulates_and_counts_failures() {
        let log = RunLog::new();
        assert!(log.is_empty());
        log.push(record("a", "naive", 1.0));
        let mut failed = record("a", "arima_111", f64::NAN);
        failed.error = Some(crate::pipeline::EvalFailure {
            kind: FailureKind::DataTooShort,
            detail: "too short".into(),
        });
        log.push(failed);
        assert_eq!(log.len(), 2);
        assert_eq!(log.failures(), 1);
        assert_eq!(log.failures_of(FailureKind::DataTooShort), 1);
        assert_eq!(log.failures_of(FailureKind::ModelDiverged), 0);
    }

    #[test]
    fn leaderboard_ranks_by_mean_rank() {
        let records = vec![
            record("d1", "a", 1.0),
            record("d1", "b", 2.0),
            record("d2", "a", 1.0),
            record("d2", "b", 0.5),
            record("d3", "a", 1.0),
            record("d3", "b", 3.0),
        ];
        let board = Leaderboard::from_records(&records, "mae", true);
        assert_eq!(board.rows.len(), 2);
        let winner = board.winner().unwrap();
        assert_eq!(winner.method, "a");
        assert_eq!(winner.wins, 2);
        assert_eq!(winner.datasets, 3);
        assert!((winner.mean_rank - 4.0 / 3.0).abs() < 1e-12);
        let b = &board.rows[1];
        assert_eq!(b.wins, 1);
        assert!((b.mean_score - 5.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn leaderboard_respects_direction() {
        let mut r1 = record("d", "low", 0.1);
        r1.scores.insert("r2".into(), 0.2);
        let mut r2 = record("d", "high", 0.9);
        r2.scores.insert("r2".into(), 0.9);
        let board = Leaderboard::from_records(&[r1, r2], "r2", false);
        assert_eq!(board.winner().unwrap().method, "high");
    }

    #[test]
    fn failed_and_nan_records_are_excluded() {
        let mut bad = record("d1", "broken", f64::NAN);
        bad.error = Some(crate::pipeline::EvalFailure {
            kind: FailureKind::Other,
            detail: "boom".into(),
        });
        let records = vec![record("d1", "ok", 1.0), bad];
        let board = Leaderboard::from_records(&records, "mae", true);
        assert_eq!(board.rows.len(), 1);
        assert_eq!(board.rows[0].method, "ok");
    }

    #[test]
    fn tables_render_with_alignment() {
        let log = RunLog::new();
        log.push(record("dataset_with_long_name", "naive", 1.2345));
        let table = log.render_table(&["mae", "rmse"]);
        assert!(table.contains("dataset_with_long_name"));
        assert!(table.contains("| mae"));
        assert!(table.contains("1.2345"));
        assert!(table.contains("ok"));
        // Missing metric renders as '-'.
        assert!(table.contains(" - "));
        // Every line has equal width.
        let widths: Vec<usize> = table.lines().map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "ragged table:\n{table}");

        let board = Leaderboard::from_records(&log.records(), "mae", true);
        let rendered = board.render();
        assert!(rendered.contains("mean_mae"));
        assert!(rendered.contains("naive"));
    }

    #[test]
    fn score_formatting_is_compact() {
        assert_eq!(format_score(f64::NAN), "-");
        assert_eq!(format_score(1.5), "1.5000");
        assert_eq!(format_score(123456.0), "1.235e5");
        assert_eq!(format_score(0.0001), "1.000e-4");
        assert_eq!(format_score(0.0), "0.0000");
    }
}
