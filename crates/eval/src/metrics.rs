//! Forecast accuracy metrics.
//!
//! The paper (Challenge 1) calls for "multiple evaluation metrics to get a
//! nuanced understanding of method performance" and §II-A promises
//! "well-recognized evaluation metrics and … customized metrics". The
//! [`MetricRegistry`] ships the standard set and accepts user closures for
//! custom metrics. All metrics are *lower-is-better* except R², which is
//! negated on request via [`Metric::lower_is_better`].

use crate::error::EvalError;
use easytime_linalg::stats::mean;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Everything a metric may need: forecasts, ground truth, and training
/// context (for scaled errors like MASE).
#[derive(Debug, Clone, Copy)]
pub struct MetricContext<'a> {
    /// Ground-truth test values.
    pub actual: &'a [f64],
    /// Point forecasts aligned with `actual`.
    pub predicted: &'a [f64],
    /// Training values (for scale denominators).
    pub train: &'a [f64],
    /// Seasonal period used by MASE's seasonal-naive denominator
    /// (1 = plain naive).
    pub period: usize,
}

impl<'a> MetricContext<'a> {
    /// Builds a context after validating alignment.
    pub fn new(
        actual: &'a [f64],
        predicted: &'a [f64],
        train: &'a [f64],
        period: usize,
    ) -> Result<Self, EvalError> {
        if actual.len() != predicted.len() {
            return Err(EvalError::LengthMismatch {
                actual: actual.len(),
                predicted: predicted.len(),
            });
        }
        if actual.is_empty() {
            return Err(EvalError::InvalidConfig { reason: "empty evaluation window".into() });
        }
        Ok(MetricContext { actual, predicted, train, period: period.max(1) })
    }

    fn errors(&self) -> impl Iterator<Item = f64> + '_ {
        self.actual.iter().zip(self.predicted).map(|(a, p)| a - p)
    }
}

/// A named forecast-accuracy metric.
#[derive(Clone)]
pub struct Metric {
    name: String,
    lower_is_better: bool,
    f: Arc<dyn Fn(&MetricContext<'_>) -> f64 + Send + Sync>,
}

impl std::fmt::Debug for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metric")
            .field("name", &self.name)
            .field("lower_is_better", &self.lower_is_better)
            .finish()
    }
}

impl Metric {
    /// Creates a custom metric from a closure.
    pub fn custom(
        name: impl Into<String>,
        lower_is_better: bool,
        f: impl Fn(&MetricContext<'_>) -> f64 + Send + Sync + 'static,
    ) -> Metric {
        Metric { name: name.into(), lower_is_better, f: Arc::new(f) }
    }

    /// Metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether smaller values indicate better forecasts.
    pub fn lower_is_better(&self) -> bool {
        self.lower_is_better
    }

    /// Evaluates the metric on a context.
    pub(crate) fn compute(&self, ctx: &MetricContext<'_>) -> f64 {
        (self.f)(ctx)
    }
}

/// Mean absolute error.
pub fn mae(ctx: &MetricContext<'_>) -> f64 {
    // Streaming left fold — same summation order as `mean`, zero allocation
    // (this runs once per metric per evaluation window).
    let sum: f64 = ctx.errors().map(f64::abs).sum();
    sum / ctx.actual.len() as f64
}

/// Mean squared error.
pub fn mse(ctx: &MetricContext<'_>) -> f64 {
    let sum: f64 = ctx.errors().map(|e| e * e).sum();
    sum / ctx.actual.len() as f64
}

/// Root mean squared error.
pub fn rmse(ctx: &MetricContext<'_>) -> f64 {
    mse(ctx).sqrt()
}

/// Mean absolute percentage error (%); near-zero actuals are skipped to
/// avoid division blow-ups, matching common benchmark practice.
pub(crate) fn mape(ctx: &MetricContext<'_>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for (a, p) in ctx.actual.iter().zip(ctx.predicted) {
        if a.abs() > 1e-8 {
            sum += ((a - p) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        100.0 * sum / n as f64
    }
}

/// Symmetric MAPE (%), the M-competition variant bounded by 200.
pub fn smape(ctx: &MetricContext<'_>) -> f64 {
    let mut sum = 0.0;
    for (a, p) in ctx.actual.iter().zip(ctx.predicted) {
        let denom = (a.abs() + p.abs()).max(1e-12);
        sum += 2.0 * (a - p).abs() / denom;
    }
    100.0 * sum / ctx.actual.len() as f64
}

/// Weighted absolute percentage error (%): Σ|e| / Σ|a|.
pub fn wape(ctx: &MetricContext<'_>) -> f64 {
    let num: f64 = ctx.errors().map(f64::abs).sum();
    let den: f64 = ctx.actual.iter().map(|a| a.abs()).sum::<f64>().max(1e-12);
    100.0 * num / den
}

/// Mean absolute scaled error: MAE scaled by the in-sample seasonal-naive
/// MAE (Hyndman & Koehler). Values below 1 beat the naive baseline.
pub fn mase(ctx: &MetricContext<'_>) -> f64 {
    let p = ctx.period.min(ctx.train.len().saturating_sub(1)).max(1);
    if ctx.train.len() <= p {
        return f64::NAN;
    }
    let naive_sum: f64 =
        (p..ctx.train.len()).map(|t| (ctx.train[t] - ctx.train[t - p]).abs()).sum();
    let naive_mae = naive_sum / (ctx.train.len() - p) as f64;
    if naive_mae < 1e-12 {
        return f64::NAN;
    }
    mae(ctx) / naive_mae
}

/// Coefficient of determination (higher is better).
pub fn r2(ctx: &MetricContext<'_>) -> f64 {
    let m = mean(ctx.actual);
    let ss_tot: f64 = ctx.actual.iter().map(|a| (a - m) * (a - m)).sum();
    let ss_res: f64 = ctx.errors().map(|e| e * e).sum();
    if ss_tot < 1e-12 {
        return f64::NAN;
    }
    1.0 - ss_res / ss_tot
}

/// Maximum absolute error over the window.
pub(crate) fn max_error(ctx: &MetricContext<'_>) -> f64 {
    ctx.errors().map(f64::abs).fold(0.0, f64::max)
}

/// Registry of metrics available to the pipeline, keyed by name.
#[derive(Debug, Clone)]
pub struct MetricRegistry {
    metrics: BTreeMap<String, Metric>,
}

impl Default for MetricRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

impl MetricRegistry {
    /// Registry with the standard metric set: `mae`, `mse`, `rmse`, `mape`,
    /// `smape`, `wape`, `mase`, `r2`, `max_error`.
    pub fn standard() -> MetricRegistry {
        let mut reg = MetricRegistry { metrics: BTreeMap::new() };
        reg.register(Metric::custom("mae", true, mae));
        reg.register(Metric::custom("mse", true, mse));
        reg.register(Metric::custom("rmse", true, rmse));
        reg.register(Metric::custom("mape", true, mape));
        reg.register(Metric::custom("smape", true, smape));
        reg.register(Metric::custom("wape", true, wape));
        reg.register(Metric::custom("mase", true, mase));
        reg.register(Metric::custom("r2", false, r2));
        reg.register(Metric::custom("max_error", true, max_error));
        reg
    }

    /// Registers (or replaces) a metric.
    pub fn register(&mut self, metric: Metric) {
        self.metrics.insert(metric.name().to_string(), metric);
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Result<&Metric, EvalError> {
        self.metrics
            .get(&name.trim().to_ascii_lowercase())
            .ok_or_else(|| EvalError::UnknownMetric { name: name.to_string() })
    }

    /// All registered metric names in sorted order.
    pub fn names(&self) -> Vec<String> {
        self.metrics.keys().cloned().collect()
    }

    /// Evaluates the named metrics on a context (test diagnostics).
    #[cfg(test)]
    pub(crate) fn compute_all(
        &self,
        names: &[String],
        ctx: &MetricContext<'_>,
    ) -> Result<BTreeMap<String, f64>, EvalError> {
        let mut out = BTreeMap::new();
        for name in names {
            let metric = self.get(name)?;
            out.insert(metric.name().to_string(), metric.compute(ctx));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(
        actual: &'a [f64],
        predicted: &'a [f64],
        train: &'a [f64],
    ) -> MetricContext<'a> {
        MetricContext::new(actual, predicted, train, 1).unwrap()
    }

    #[test]
    fn perfect_forecast_scores_zero_error() {
        let a = [1.0, 2.0, 3.0];
        let c = ctx(&a, &a, &[0.0, 1.0, 2.0]);
        assert_eq!(mae(&c), 0.0);
        assert_eq!(mse(&c), 0.0);
        assert_eq!(rmse(&c), 0.0);
        assert_eq!(smape(&c), 0.0);
        assert_eq!(wape(&c), 0.0);
        assert_eq!(max_error(&c), 0.0);
        assert_eq!(r2(&c), 1.0);
    }

    #[test]
    fn known_values() {
        let c = ctx(&[2.0, 4.0], &[1.0, 6.0], &[1.0, 2.0, 3.0]);
        assert_eq!(mae(&c), 1.5); // (1 + 2) / 2
        assert_eq!(mse(&c), 2.5); // (1 + 4) / 2
        assert!((rmse(&c) - 2.5f64.sqrt()).abs() < 1e-12);
        // MAPE: (1/2 + 2/4)/2 × 100 = 50.
        assert!((mape(&c) - 50.0).abs() < 1e-12);
        // WAPE: 3 / 6 × 100 = 50.
        assert!((wape(&c) - 50.0).abs() < 1e-12);
        assert_eq!(max_error(&c), 2.0);
    }

    #[test]
    fn mase_scales_by_in_sample_naive() {
        // Train diffs are all 1 → naive MAE = 1, so MASE equals MAE.
        let train = [1.0, 2.0, 3.0, 4.0];
        let c = ctx(&[5.0, 6.0], &[5.5, 6.5], &train);
        assert!((mase(&c) - 0.5).abs() < 1e-12);
        // Constant train → denominator zero → NaN sentinel.
        let c2 = ctx(&[5.0], &[5.0], &[2.0, 2.0, 2.0]);
        assert!(mase(&c2).is_nan());
    }

    #[test]
    fn mase_respects_seasonal_period() {
        let train = [0.0, 10.0, 1.0, 11.0, 2.0, 12.0];
        let actual = [3.0];
        let predicted = [3.0];
        let c1 = MetricContext::new(&actual, &predicted, &train, 1).unwrap();
        let c2 = MetricContext::new(&actual, &predicted, &train, 2).unwrap();
        // Period-1 denominator is large (|10−0| etc.), period-2 is 1.
        assert!(mase(&c1) <= mase(&c2) || (mase(&c1) == 0.0 && mase(&c2) == 0.0));
    }

    #[test]
    fn smape_is_bounded_by_200() {
        let c = ctx(&[1.0, 1.0], &[-1.0, -1.0], &[1.0, 2.0]);
        assert!((smape(&c) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let c = ctx(&[0.0, 2.0], &[1.0, 1.0], &[1.0, 2.0]);
        // Only the second point counts: |2−1|/2 = 0.5 → 50%.
        assert!((mape(&c) - 50.0).abs() < 1e-12);
        let all_zero = ctx(&[0.0], &[1.0], &[1.0, 2.0]);
        assert!(mape(&all_zero).is_nan());
    }

    #[test]
    fn r2_of_mean_forecast_is_zero() {
        let actual = [1.0, 2.0, 3.0, 4.0];
        let predicted = [2.5; 4];
        let c = ctx(&actual, &predicted, &[1.0, 2.0]);
        assert!(r2(&c).abs() < 1e-12);
        let constant = ctx(&[3.0, 3.0], &[3.0, 3.0], &[1.0, 2.0]);
        assert!(r2(&constant).is_nan());
    }

    #[test]
    fn context_validates_inputs() {
        assert!(matches!(
            MetricContext::new(&[1.0], &[1.0, 2.0], &[], 1),
            Err(EvalError::LengthMismatch { actual: 1, predicted: 2 })
        ));
        assert!(MetricContext::new(&[], &[], &[], 1).is_err());
    }

    #[test]
    fn registry_lookup_and_custom_metrics() {
        let mut reg = MetricRegistry::standard();
        assert!(reg.get("mae").is_ok());
        assert!(reg.get("MAE ").is_ok(), "lookup should be case-insensitive");
        assert!(matches!(reg.get("nope"), Err(EvalError::UnknownMetric { .. })));
        assert_eq!(reg.names().len(), 9);

        reg.register(Metric::custom("under_forecast_rate", true, |c| {
            c.actual.iter().zip(c.predicted).filter(|(a, p)| p < a).count() as f64
                / c.actual.len() as f64
        }));
        let c = ctx(&[2.0, 2.0], &[1.0, 3.0], &[1.0, 2.0]);
        let vals = reg
            .compute_all(&["mae".into(), "under_forecast_rate".into()], &c)
            .unwrap();
        assert_eq!(vals["under_forecast_rate"], 0.5);
        assert_eq!(vals["mae"], 1.0);
    }

    #[test]
    fn direction_flags() {
        let reg = MetricRegistry::standard();
        assert!(reg.get("mae").unwrap().lower_is_better());
        assert!(!reg.get("r2").unwrap().lower_is_better());
    }
}
