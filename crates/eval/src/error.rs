//! Error type for the evaluation layer.

use easytime_data::DataError;
use easytime_models::ModelError;
use std::fmt;

/// Errors produced while configuring or running evaluations.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A metric name did not resolve in the registry.
    UnknownMetric {
        /// The unresolved name.
        name: String,
    },
    /// The evaluation configuration is inconsistent.
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
    /// Actual and predicted lengths differ.
    LengthMismatch {
        /// Length of the ground truth.
        actual: usize,
        /// Length of the forecast.
        predicted: usize,
    },
    /// The test partition cannot support the requested strategy.
    InsufficientTestData {
        /// Points required.
        needed: usize,
        /// Points available.
        got: usize,
    },
    /// A data-layer failure.
    Data(DataError),
    /// A model-layer failure.
    Model(ModelError),
    /// An internal invariant was violated (e.g. a worker thread died).
    Internal {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownMetric { name } => write!(f, "unknown metric '{name}'"),
            EvalError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            EvalError::LengthMismatch { actual, predicted } => {
                write!(f, "length mismatch: actual {actual}, predicted {predicted}")
            }
            EvalError::InsufficientTestData { needed, got } => {
                write!(f, "insufficient test data: need {needed}, got {got}")
            }
            EvalError::Data(e) => write!(f, "data error: {e}"),
            EvalError::Model(e) => write!(f, "model error: {e}"),
            EvalError::Internal { reason } => write!(f, "internal error: {reason}"),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Data(e) => Some(e),
            EvalError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for EvalError {
    fn from(e: DataError) -> Self {
        EvalError::Data(e)
    }
}

impl From<ModelError> for EvalError {
    fn from(e: ModelError) -> Self {
        EvalError::Model(e)
    }
}
