//! Equivalence guarantees of the incremental rolling engine.
//!
//! `RefitPolicy::WarmStart` must be an *optimization*, not a different
//! protocol: for warm-startable methods its scores must match
//! `RefitPolicy::Always` bitwise when no scaling is involved, and to within
//! 1e-9 relative tolerance when forecasts round-trip through streamed
//! scaler statistics. Corpus sweeps under the warm policy must stay
//! deterministic regardless of worker count.

use easytime_data::scaler::ScalerKind;
use easytime_data::synthetic::{build_corpus, CorpusConfig};
use easytime_data::{Domain, Frequency, TimeSeries};
use easytime_eval::{
    evaluate, evaluate_corpus, EvalConfig, EvalRecord, MetricRegistry, RefitPolicy, Strategy,
    ValidatedEvalConfig,
};
use easytime_models::ModelSpec;
use std::f64::consts::PI;

/// Trend + two seasonalities + deterministic pseudo-noise.
fn synthetic_series(n: usize) -> TimeSeries {
    let values: Vec<f64> = (0..n)
        .map(|t| {
            let t = t as f64;
            20.0 + 0.03 * t
                + 5.0 * (2.0 * PI * t / 12.0).sin()
                + 1.5 * (2.0 * PI * t / 7.0).cos()
                + 0.4 * (t * 12.9898).sin() * (t * 78.233).cos()
        })
        .collect();
    TimeSeries::new("synthetic", values, Frequency::Monthly).unwrap()
}

/// The families with true O(appended) warm-start implementations.
fn warm_family() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Naive,
        ModelSpec::SeasonalNaive(None),
        ModelSpec::SeasonalNaive(Some(7)),
        ModelSpec::Drift,
        ModelSpec::Mean,
        ModelSpec::WindowAverage(12),
        ModelSpec::SeasonalAverage { period: None, cycles: 3 },
    ]
}

fn config_with(
    scaler: ScalerKind,
    strategy: Strategy,
    refit: RefitPolicy,
) -> ValidatedEvalConfig {
    EvalConfig { scaler, strategy, refit, ..EvalConfig::default() }
        .into_validated(&MetricRegistry::standard())
        .unwrap()
}

fn assert_scores_match(a: &EvalRecord, b: &EvalRecord, tol: f64, label: &str) {
    assert!(a.is_ok(), "{label}: refit failed: {:?}", a.error);
    assert!(b.is_ok(), "{label}: warm failed: {:?}", b.error);
    assert_eq!(a.windows, b.windows, "{label}: window counts diverged");
    assert_eq!(
        a.scores.keys().collect::<Vec<_>>(),
        b.scores.keys().collect::<Vec<_>>(),
        "{label}: metric sets diverged"
    );
    for (metric, &va) in &a.scores {
        let vb = b.score(metric);
        if va.is_nan() && vb.is_nan() {
            continue;
        }
        let err = (va - vb).abs();
        let bound = tol * va.abs().max(1.0);
        assert!(
            err <= bound,
            "{label}/{metric}: refit {va} vs warm {vb} (err {err:.3e} > {bound:.3e})"
        );
    }
}

#[test]
fn warm_start_is_bitwise_identical_without_scaling() {
    // With ScalerKind::None the frozen transform is the identity, so the
    // warm engine must reproduce the classical per-window refit *bitwise*
    // for every warm-startable family, on fixed and rolling strategies —
    // including a stride smaller than the horizon (overlapping windows)
    // and a partial trailing window.
    let series = synthetic_series(400);
    let registry = MetricRegistry::standard();
    let strategies = [
        Strategy::Fixed { horizon: 12 },
        Strategy::Rolling { horizon: 8, stride: 8, max_windows: None },
        Strategy::Rolling { horizon: 8, stride: 3, max_windows: Some(25) },
    ];
    for strategy in strategies {
        for spec in warm_family() {
            let always = config_with(ScalerKind::None, strategy, RefitPolicy::Always);
            let warm = config_with(ScalerKind::None, strategy, RefitPolicy::WarmStart);
            let a = evaluate("d", &series, &spec, &always, &registry).unwrap();
            let b = evaluate("d", &series, &spec, &warm, &registry).unwrap();
            assert_scores_match(&a, &b, 0.0, &format!("{strategy:?}/{}", spec.name()));
        }
    }
}

#[test]
fn warm_start_matches_refit_through_streaming_scalers() {
    // With z-score / min-max scaling the warm model lives in the frozen
    // space of its last refit while the Always policy rescales per window;
    // affine equivariance makes the raw-scale forecasts agree up to float
    // rounding. LinearTrend has no `update` — it exercises the warm
    // engine's per-window refit fallback against streamed statistics.
    let series = synthetic_series(420);
    let registry = MetricRegistry::standard();
    let strategy = Strategy::Rolling { horizon: 6, stride: 6, max_windows: Some(20) };
    let mut specs = warm_family();
    specs.push(ModelSpec::LinearTrend);
    for scaler in [ScalerKind::ZScore, ScalerKind::MinMax] {
        for spec in &specs {
            let always = config_with(scaler, strategy, RefitPolicy::Always);
            let warm = config_with(scaler, strategy, RefitPolicy::WarmStart);
            let a = evaluate("d", &series, spec, &always, &registry).unwrap();
            let b = evaluate("d", &series, spec, &warm, &registry).unwrap();
            assert_scores_match(&a, &b, 1e-9, &format!("{scaler:?}/{}", spec.name()));
        }
    }
}

#[test]
fn warm_start_equivalence_holds_on_a_synthetic_corpus() {
    // End-to-end: a full corpus sweep under each policy produces matching
    // records (bitwise for the unscaled naive family) across domains.
    let corpus = build_corpus(&CorpusConfig {
        domains: vec![Domain::Nature, Domain::Web, Domain::Traffic],
        per_domain: 2,
        length: 260,
        seed: 11,
        ..CorpusConfig::default()
    })
    .unwrap();
    let registry = MetricRegistry::standard();
    let make = |refit| {
        EvalConfig {
            methods: vec![ModelSpec::Naive, ModelSpec::SeasonalNaive(None), ModelSpec::Drift],
            scaler: ScalerKind::None,
            strategy: Strategy::Rolling { horizon: 6, stride: 6, max_windows: None },
            threads: 2,
            refit,
            ..EvalConfig::default()
        }
        .into_validated(&registry)
        .unwrap()
    };
    let always = evaluate_corpus(&corpus, &make(RefitPolicy::Always), &registry).unwrap();
    let warm = evaluate_corpus(&corpus, &make(RefitPolicy::WarmStart), &registry).unwrap();
    assert_eq!(always.len(), warm.len());
    for (a, b) in always.iter().zip(&warm) {
        assert_eq!(a.dataset_id, b.dataset_id);
        assert_eq!(a.method, b.method);
        assert_scores_match(a, b, 0.0, &format!("{}/{}", a.dataset_id, a.method));
    }
}

#[test]
fn warm_start_corpus_sweep_is_deterministic_across_thread_counts() {
    let corpus = build_corpus(&CorpusConfig {
        domains: vec![Domain::Nature, Domain::Stock],
        per_domain: 3,
        length: 220,
        seed: 4,
        ..CorpusConfig::default()
    })
    .unwrap();
    let registry = MetricRegistry::standard();
    let run = |threads: usize| {
        let config = EvalConfig {
            methods: vec![ModelSpec::Naive, ModelSpec::SeasonalNaive(None), ModelSpec::Mean],
            strategy: Strategy::Rolling { horizon: 5, stride: 5, max_windows: Some(8) },
            refit: RefitPolicy::WarmStart,
            threads,
            ..EvalConfig::default()
        }
        .into_validated(&registry)
        .unwrap();
        let mut records = evaluate_corpus(&corpus, &config, &registry).unwrap();
        for r in &mut records {
            r.runtime_ms = 0.0; // wall-clock is the only nondeterministic field
        }
        records
    };
    let base = run(1);
    for threads in [3usize, 8] {
        assert_eq!(base, run(threads), "warm sweep diverged at {threads} threads");
    }
}
