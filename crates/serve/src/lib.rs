//! In-process serving core for EasyTime (the platform tier of the paper).
//!
//! The paper presents EasyTime as an *interactive* platform: users upload
//! series and get forecasts, evaluations, and natural-language answers on
//! demand. This crate turns the batch-oriented facade into that serving
//! shape — std-only, in-process, and typed end to end:
//!
//! * [`api`] — [`Request`] / [`Response`] / [`ServeError`]: the typed
//!   request/response surface (no stringly payloads).
//! * [`config`] — [`ServeConfig`] behind a sealed builder that yields a
//!   [`ValidatedServeConfig`], mirroring the evaluation layer's pattern.
//! * [`fingerprint`] — deterministic series fingerprints (seeded
//!   FNV-1a → SplitMix64) keying the model cache.
//! * [`cache`] — the LRU model cache: repeat tenants warm-start via
//!   `Forecaster::update` under the frozen-transform contract instead of
//!   refitting from scratch.
//! * [`engine`] — [`ServeEngine`]: worker-pool or caller-driven inline
//!   dispatch, cross-request micro-batching of embedding work (one
//!   blocked matmul per tick), and admission control with bounded queues
//!   and per-request deadlines (shed, don't crash).
//!
//! ```no_run
//! use easytime_serve::{Request, ServeConfig, ServeContext, ServeEngine};
//! # fn demo(ctx: ServeContext, series: easytime_data::TimeSeries) {
//! let engine = ServeEngine::start(ctx, ServeConfig::builder().build().expect("valid"));
//! let reply = engine.call(Request::RecommendAndForecast {
//!     series,
//!     top_k: 3,
//!     horizon: 24,
//!     method: None,
//! });
//! # let _ = reply;
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod config;
pub mod engine;
pub mod fingerprint;

pub use api::{Request, Response, ServeError};
pub use config::{ServeConfig, ServeConfigBuilder, ValidatedServeConfig};
pub use engine::{ServeContext, ServeEngine, ServeStats, Ticket};
pub use fingerprint::fingerprint;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, ServeError>;
