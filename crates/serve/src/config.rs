//! Serving-engine configuration behind a sealed builder.
//!
//! Mirrors the evaluation layer's `EvalConfig` → `ValidatedEvalConfig`
//! pattern: [`ServeConfig`] is plain data, [`ServeConfigBuilder::build`]
//! (or [`ServeConfig::into_validated`]) performs the one-and-only
//! validation pass, and [`crate::ServeEngine`] only accepts the sealed
//! [`ValidatedServeConfig`] — so the engine never re-checks bounds ad hoc
//! and degenerate values (zero workers, empty queue, non-finite deadline)
//! are rejected with typed [`ServeError::InvalidConfig`] errors.

use crate::api::ServeError;

/// Tunables of the serving engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Maximum number of fitted models kept in the LRU cache.
    pub cache_capacity: usize,
    /// Worker threads for [`crate::ServeEngine::start`]. Inline engines
    /// ignore this (the caller's thread drives ticks).
    pub workers: usize,
    /// Maximum requests coalesced into one micro-batch per tick; cold
    /// recommendations inside a batch share a single blocked matmul.
    pub batch_max: usize,
    /// Queue-wait deadline per request, in milliseconds. Requests that
    /// waited longer are dropped at dequeue time with
    /// [`ServeError::DeadlineExceeded`].
    pub deadline_ms: f64,
    /// Bounded-queue capacity; submissions beyond it are shed with
    /// [`ServeError::Overloaded`].
    pub queue_bound: usize,
    /// Seed for the series fingerprint hash (cache keying).
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            cache_capacity: 64,
            workers: 2,
            batch_max: 8,
            deadline_ms: 250.0,
            queue_bound: 256,
            seed: 0x5eed_1157_ea51_71e5,
        }
    }
}

impl ServeConfig {
    /// Starts a fluent builder seeded with the defaults.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder::default()
    }

    /// Validates every tunable.
    pub fn validate(&self) -> Result<(), ServeError> {
        fn nonzero(what: &str, v: usize) -> Result<(), ServeError> {
            if v == 0 {
                return Err(ServeError::InvalidConfig {
                    reason: format!("{what} must be at least 1"),
                });
            }
            Ok(())
        }
        nonzero("cache_capacity", self.cache_capacity)?;
        nonzero("workers", self.workers)?;
        nonzero("batch_max", self.batch_max)?;
        nonzero("queue_bound", self.queue_bound)?;
        if !self.deadline_ms.is_finite() || self.deadline_ms <= 0.0 {
            return Err(ServeError::InvalidConfig {
                reason: format!("deadline_ms must be finite and positive, got {}", self.deadline_ms),
            });
        }
        Ok(())
    }

    /// Validates and seals the configuration, the form
    /// [`crate::ServeEngine`] accepts.
    pub fn into_validated(self) -> Result<ValidatedServeConfig, ServeError> {
        self.validate()?;
        Ok(ValidatedServeConfig { config: self })
    }
}

/// Fluent builder for [`ServeConfig`]; [`ServeConfigBuilder::build`] is
/// the single validation point.
#[derive(Debug, Clone, Default)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Sets the model-cache capacity.
    pub fn cache_capacity(mut self, n: usize) -> Self {
        self.config.cache_capacity = n;
        self
    }

    /// Sets the worker-thread count.
    pub fn workers(mut self, n: usize) -> Self {
        self.config.workers = n;
        self
    }

    /// Sets the micro-batch size cap.
    pub fn batch_max(mut self, n: usize) -> Self {
        self.config.batch_max = n;
        self
    }

    /// Sets the per-request queue-wait deadline in milliseconds.
    pub fn deadline_ms(mut self, ms: f64) -> Self {
        self.config.deadline_ms = ms;
        self
    }

    /// Sets the admission-queue bound.
    pub fn queue_bound(mut self, n: usize) -> Self {
        self.config.queue_bound = n;
        self
    }

    /// Sets the fingerprint seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Validates and seals the configuration.
    pub fn build(self) -> Result<ValidatedServeConfig, ServeError> {
        self.config.into_validated()
    }
}

/// A configuration that passed [`ServeConfig::validate`]. Only
/// constructible through the builder / [`ServeConfig::into_validated`],
/// so the engine entry points never re-validate.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidatedServeConfig {
    config: ServeConfig,
}

impl ValidatedServeConfig {
    /// The validated configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Unwraps the inner configuration (e.g. to tweak and re-validate).
    pub fn into_inner(self) -> ServeConfig {
        self.config
    }
}

impl std::ops::Deref for ValidatedServeConfig {
    type Target = ServeConfig;

    fn deref(&self) -> &ServeConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_and_builder_seals() {
        let v = ServeConfig::builder().build().expect("defaults are valid");
        assert_eq!(v.cache_capacity, 64);
        assert_eq!(v.config().workers, 2);
        let inner = v.into_inner();
        assert_eq!(inner, ServeConfig::default());
    }

    #[test]
    fn degenerate_values_are_typed_errors() {
        let cases: Vec<ServeConfigBuilder> = vec![
            ServeConfig::builder().cache_capacity(0),
            ServeConfig::builder().workers(0),
            ServeConfig::builder().batch_max(0),
            ServeConfig::builder().queue_bound(0),
            ServeConfig::builder().deadline_ms(0.0),
            ServeConfig::builder().deadline_ms(-5.0),
            ServeConfig::builder().deadline_ms(f64::NAN),
            ServeConfig::builder().deadline_ms(f64::INFINITY),
        ];
        for b in cases {
            assert!(matches!(b.build(), Err(ServeError::InvalidConfig { .. })));
        }
    }
}
