//! The LRU model cache: fitted forecasters keyed by series fingerprint.
//!
//! Entries carry everything a warm request needs — the fitted model, the
//! frozen `(shift, scale)` transform it was fitted under (the PR-4
//! warm-start contract), the recommendation ranking computed at fit
//! time, and coverage bookkeeping (`covered` raw values absorbed, bit
//! pattern of the last one). A hit is only *valid* when the incoming
//! series extends the covered prefix exactly; anything else (divergent
//! history, truncation, hash collision) downgrades to a cold refit.
//!
//! Storage is a `BTreeMap` with explicit last-used ticks and min-scan
//! eviction: deterministic iteration order, no hash-map randomness, and
//! capacity is small enough (tens of entries) that O(n) eviction scans
//! are irrelevant next to a model fit.

use easytime_automl::Recommendation;
use easytime_models::{Forecaster, ModelSpec};
use std::collections::BTreeMap;

/// One cached tenant model and its warm-start state.
pub(crate) struct CacheEntry {
    /// Ranking computed when the model was (re)fitted; reused verbatim on
    /// warm hits (the "sticky" recommendation).
    pub ranking: Vec<Recommendation>,
    /// Spec of the fitted model.
    pub spec: ModelSpec,
    /// The fitted forecaster.
    pub model: Box<dyn Forecaster>,
    /// The `(shift, scale)` transform frozen at fit time: appended values
    /// are scaled under it before `update`, forecasts inverted through it.
    pub frozen: (f64, f64),
    /// How many raw values the model has absorbed (fit + updates).
    pub covered: usize,
    /// Bit pattern of the last absorbed raw value (coverage validation).
    pub last_value: u64,
}

impl CacheEntry {
    /// True when `values` extends (or equals) the prefix this entry has
    /// absorbed, so the model can warm-start instead of refitting.
    pub(crate) fn covers_prefix_of(&self, values: &[f64]) -> bool {
        self.covered > 0
            && self.covered <= values.len()
            && values[self.covered - 1].to_bits() == self.last_value
    }
}

impl std::fmt::Debug for CacheEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheEntry")
            .field("spec", &self.spec)
            .field("frozen", &self.frozen)
            .field("covered", &self.covered)
            .finish_non_exhaustive()
    }
}

/// Fixed-capacity LRU keyed by [`crate::fingerprint::fingerprint`].
#[derive(Debug)]
pub(crate) struct ModelCache {
    capacity: usize,
    tick: u64,
    entries: BTreeMap<u64, (u64, CacheEntry)>,
    evictions: u64,
}

impl ModelCache {
    /// Creates an empty cache holding at most `capacity` entries.
    pub(crate) fn new(capacity: usize) -> ModelCache {
        ModelCache { capacity, tick: 0, entries: BTreeMap::new(), evictions: 0 }
    }

    /// Number of resident entries.
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Total evictions since construction.
    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Removes and returns the entry for `key`, marking it used. Callers
    /// take the entry out, work on it without holding the cache lock, and
    /// re-insert it when done.
    pub(crate) fn take(&mut self, key: u64) -> Option<CacheEntry> {
        self.tick += 1;
        self.entries.remove(&key).map(|(_, e)| e)
    }

    /// Inserts (or replaces) an entry, evicting the least-recently-used
    /// one when at capacity.
    pub(crate) fn insert(&mut self, key: u64, entry: CacheEntry) {
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            // Min-scan LRU: smallest last-used tick goes. Ties are
            // impossible (ticks are unique), so eviction is deterministic.
            if let Some((&victim, _)) =
                self.entries.iter().min_by_key(|(_, (used, _))| *used)
            {
                self.entries.remove(&victim);
                self.evictions += 1;
            }
        }
        self.entries.insert(key, (self.tick, entry));
    }

    /// Keys ordered by recency, oldest first (tests).
    #[cfg(test)]
    pub fn keys_by_recency(&self) -> Vec<u64> {
        let mut pairs: Vec<(u64, u64)> =
            self.entries.iter().map(|(&k, &(used, _))| (used, k)).collect();
        pairs.sort_unstable();
        pairs.into_iter().map(|(_, k)| k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(covered: usize, last: f64) -> CacheEntry {
        CacheEntry {
            ranking: Vec::new(),
            spec: ModelSpec::Naive,
            model: ModelSpec::Naive.build().expect("naive builds"),
            frozen: (0.0, 1.0),
            covered,
            last_value: last.to_bits(),
        }
    }

    #[test]
    fn eviction_follows_least_recent_use() {
        let mut c = ModelCache::new(2);
        c.insert(1, entry(4, 4.0));
        c.insert(2, entry(4, 4.0));
        // Touch key 1 so key 2 becomes the LRU victim.
        let e = c.take(1).expect("key 1 present");
        c.insert(1, e);
        c.insert(3, entry(4, 4.0));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert!(c.take(2).is_none(), "key 2 was the least recently used");
        assert!(c.take(1).is_some());
        assert!(c.take(3).is_some());
    }

    #[test]
    fn recency_order_tracks_takes_and_inserts() {
        let mut c = ModelCache::new(8);
        for k in [10, 20, 30] {
            c.insert(k, entry(1, 1.0));
        }
        let e = c.take(10).expect("present");
        c.insert(10, e);
        assert_eq!(c.keys_by_recency(), vec![20, 30, 10]);
    }

    #[test]
    fn coverage_validation_rejects_divergent_histories() {
        let e = entry(3, 30.0);
        assert!(e.covers_prefix_of(&[10.0, 20.0, 30.0]));
        assert!(e.covers_prefix_of(&[10.0, 20.0, 30.0, 40.0]));
        assert!(!e.covers_prefix_of(&[10.0, 20.0]), "truncated history");
        assert!(!e.covers_prefix_of(&[10.0, 20.0, 31.0, 40.0]), "divergent history");
    }
}
