//! The typed request/response surface of the serving core.
//!
//! Every interaction with [`crate::ServeEngine`] goes through [`Request`]
//! and comes back as a [`Response`] or a [`ServeError`] — there are no
//! stringly payloads to parse on either side. The three request kinds
//! mirror the platform's interactive buttons (paper Figure 4): method
//! recommendation + forecast, one-click evaluation of a single method,
//! and natural-language Q&A over the benchmark knowledge base.

use easytime_automl::Recommendation;
use easytime_data::{DataError, TimeSeries};
use easytime_eval::{EvalError, EvalRecord};
use easytime_models::{ModelError, ModelSpec};
use easytime_qa::{QaError, QaResponse};
use std::fmt;

/// A unit of work submitted to the serving engine.
#[derive(Debug, Clone)]
pub enum Request {
    /// Recommend methods for a series and forecast with the best one
    /// (or with `method` when the tenant pins a choice).
    RecommendAndForecast {
        /// The tenant's series (training history).
        series: TimeSeries,
        /// How many ranking entries to return (clamped to at least 1).
        top_k: usize,
        /// Forecast horizon in steps.
        horizon: usize,
        /// Optional pinned method; `None` lets the recommender choose.
        method: Option<ModelSpec>,
    },
    /// Run the standardized evaluation pipeline for one method on the
    /// series (strategy/split/scaler/metrics come from the engine's
    /// evaluation context).
    Evaluate {
        /// The series to evaluate on.
        series: TimeSeries,
        /// The method to evaluate.
        method: ModelSpec,
    },
    /// Natural-language question over the benchmark knowledge base.
    Ask {
        /// The question text.
        question: String,
    },
}

impl Request {
    /// Short label for spans and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::RecommendAndForecast { .. } => "recommend_and_forecast",
            Request::Evaluate { .. } => "evaluate",
            Request::Ask { .. } => "ask",
        }
    }
}

/// The typed result of a successfully served [`Request`].
#[derive(Debug, Clone)]
pub enum Response {
    /// Ranking + forecast for [`Request::RecommendAndForecast`].
    RecommendAndForecast {
        /// The top-k method ranking (sticky on cache hits: the ranking
        /// computed at fit time is reused rather than recomputed).
        ranking: Vec<Recommendation>,
        /// Canonical name of the method that produced the forecast.
        chosen: String,
        /// Point forecast in the original (unscaled) units.
        forecast: Vec<f64>,
        /// Whether the model came out of the cache (warm) or was fitted
        /// for this request (cold).
        cache_hit: bool,
    },
    /// Evaluation record for [`Request::Evaluate`].
    Evaluate {
        /// The pipeline's record (scores, windows, runtime, failures).
        record: EvalRecord,
    },
    /// Q&A answer for [`Request::Ask`].
    Ask {
        /// The full Q&A response (intent, SQL, answer, chart, table).
        response: QaResponse,
    },
}

/// Why the serving engine rejected or failed a request. Admission-control
/// outcomes ([`ServeError::Overloaded`], [`ServeError::DeadlineExceeded`],
/// [`ServeError::ShuttingDown`]) are expected under load — callers shed
/// and retry; the remaining kinds wrap the platform's typed errors.
#[derive(Debug)]
pub enum ServeError {
    /// The configuration was rejected by the sealed builder.
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// The request failed structural validation before admission.
    InvalidRequest {
        /// What was wrong.
        reason: String,
    },
    /// The bounded queue was full: the request was shed, not enqueued.
    Overloaded {
        /// Requests already queued at rejection time.
        queued: usize,
        /// The configured queue bound.
        bound: usize,
    },
    /// The request waited in the queue past its deadline and was dropped
    /// at dequeue time without being processed.
    DeadlineExceeded {
        /// How long the request waited, in milliseconds.
        waited_ms: f64,
        /// The configured deadline, in milliseconds.
        deadline_ms: f64,
    },
    /// The engine is shutting down and accepts no new work.
    ShuttingDown,
    /// A data-layer failure (bad series, scaler degeneracy, …).
    Data(DataError),
    /// A model-layer failure (fit/forecast errors).
    Model(ModelError),
    /// An evaluation-pipeline failure.
    Eval(EvalError),
    /// A Q&A failure (unparsable question, knowledge-base errors).
    Qa(QaError),
    /// An engine invariant was violated (always a bug).
    Internal {
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidConfig { reason } => {
                write!(f, "invalid serve configuration: {reason}")
            }
            ServeError::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
            ServeError::Overloaded { queued, bound } => {
                write!(f, "overloaded: {queued} requests queued (bound {bound})")
            }
            ServeError::DeadlineExceeded { waited_ms, deadline_ms } => write!(
                f,
                "deadline exceeded: waited {waited_ms:.1} ms (deadline {deadline_ms:.1} ms)"
            ),
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
            ServeError::Data(e) => write!(f, "data error: {e}"),
            ServeError::Model(e) => write!(f, "model error: {e}"),
            ServeError::Eval(e) => write!(f, "evaluation error: {e}"),
            ServeError::Qa(e) => write!(f, "qa error: {e}"),
            ServeError::Internal { reason } => write!(f, "internal serving error: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<DataError> for ServeError {
    fn from(e: DataError) -> ServeError {
        ServeError::Data(e)
    }
}

impl From<ModelError> for ServeError {
    fn from(e: ModelError) -> ServeError {
        ServeError::Model(e)
    }
}

impl From<EvalError> for ServeError {
    fn from(e: EvalError) -> ServeError {
        ServeError::Eval(e)
    }
}

impl From<QaError> for ServeError {
    fn from(e: QaError) -> ServeError {
        ServeError::Qa(e)
    }
}

impl ServeError {
    /// True for admission-control outcomes a load generator counts as
    /// shed/expired rather than failures.
    pub fn is_rejection(&self) -> bool {
        matches!(
            self,
            ServeError::Overloaded { .. }
                | ServeError::DeadlineExceeded { .. }
                | ServeError::ShuttingDown
        )
    }
}
