//! The serving engine: worker pool, admission control, micro-batching,
//! and the warm/cold forecast paths.
//!
//! Two driving modes share one dispatch core:
//!
//! * [`ServeEngine::start`] spawns a worker pool (real-clock QPS mode);
//!   callers [`ServeEngine::submit`] and block on the returned
//!   [`Ticket`], or use the [`ServeEngine::call`] convenience.
//! * [`ServeEngine::inline`] spawns nothing; the caller drives
//!   [`ServeEngine::tick`], each tick draining one micro-batch. Under a
//!   [`easytime_clock::ManualClock`] this makes the latency distribution
//!   bit-reproducible — the load-generator bench and CI gate rely on it.
//!
//! Admission control is strict *shed, don't crash*: a full queue rejects
//! with [`ServeError::Overloaded`] at submit time, and requests that
//! out-waited their deadline are dropped at dequeue time with
//! [`ServeError::DeadlineExceeded`] — they never consume model time.
//!
//! Within a batch, cold recommendation work is coalesced: every queued
//! auto-method forecast that misses the cache contributes its series to
//! one [`Recommender::recommend_batch`] call, which stacks the embeddings
//! and scores them with a single blocked matmul per tick.

use crate::api::{Request, Response, ServeError};
use crate::cache::{CacheEntry, ModelCache};
use crate::config::ValidatedServeConfig;
use crate::fingerprint::fingerprint;
use easytime::EasyTime;
use easytime_automl::{Recommendation, Recommender};
use easytime_clock::Clock;
use easytime_data::{Scaler, TimeSeries};
use easytime_db::Database;
use easytime_eval::{evaluate, MetricRegistry, ValidatedEvalConfig};
use easytime_models::ModelSpec;
use easytime_obs::Histogram;
use easytime_qa::QaSession;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Everything the handlers need: the pretrained recommender, the metric
/// registry, a knowledge-base snapshot for Q&A, and the evaluation
/// configuration applied to [`Request::Evaluate`].
#[derive(Clone)]
pub struct ServeContext {
    recommender: Recommender,
    metrics: MetricRegistry,
    knowledge: Database,
    eval: ValidatedEvalConfig,
}

impl ServeContext {
    /// Builds a context from parts.
    pub fn new(
        recommender: Recommender,
        metrics: MetricRegistry,
        knowledge: Database,
        eval: ValidatedEvalConfig,
    ) -> ServeContext {
        ServeContext { recommender, metrics, knowledge, eval }
    }

    /// Builds a context from a platform instance: clones its metric
    /// registry and snapshots its knowledge base, so the serving engine
    /// is isolated from later platform writes.
    pub fn from_platform(
        platform: &EasyTime,
        recommender: Recommender,
        eval: ValidatedEvalConfig,
    ) -> ServeContext {
        ServeContext::new(
            recommender,
            platform.metrics().clone(),
            platform.knowledge_snapshot(),
            eval,
        )
    }
}

impl std::fmt::Debug for ServeContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeContext")
            .field("methods", &self.recommender.methods().len())
            .finish_non_exhaustive()
    }
}

/// Counters and the latency histogram, snapshot via [`ServeEngine::stats`].
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests served successfully.
    pub completed: u64,
    /// Requests that failed with a non-admission error.
    pub failed: u64,
    /// Requests shed at submit time (queue full).
    pub shed: u64,
    /// Requests dropped at dequeue time (deadline exceeded).
    pub expired: u64,
    /// Forecast requests served from the model cache.
    pub cache_hits: u64,
    /// Forecast requests that required a cold fit.
    pub cache_misses: u64,
    /// Cache evictions under capacity pressure.
    pub evictions: u64,
    /// Models resident in the cache at snapshot time.
    pub cached_models: u64,
    /// Micro-batches processed.
    pub batches: u64,
    /// Requests processed inside those batches.
    pub batched_requests: u64,
    /// End-to-end latency (enqueue → reply) in nanoseconds, log2 buckets.
    pub latency: Histogram,
}

impl Default for ServeStats {
    fn default() -> Self {
        ServeStats {
            submitted: 0,
            completed: 0,
            failed: 0,
            shed: 0,
            expired: 0,
            cache_hits: 0,
            cache_misses: 0,
            evictions: 0,
            cached_models: 0,
            batches: 0,
            batched_requests: 0,
            latency: Histogram::log2(),
        }
    }
}

impl ServeStats {
    /// Cache hit rate over all forecast requests (0 when none ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }
}

/// A pending reply: block on [`Ticket::wait`] to receive it.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Response, ServeError>>,
}

impl Ticket {
    /// Blocks until the engine replies. In inline mode, only call this
    /// *after* driving enough [`ServeEngine::tick`]s to process the
    /// request — waiting first would deadlock the driving thread.
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(ServeError::Internal { reason: "engine dropped the reply channel".into() })
        })
    }

    /// Non-blocking probe: `None` while the reply is still pending.
    pub fn try_wait(&self) -> Option<Result<Response, ServeError>> {
        match self.rx.try_recv() {
            Ok(reply) => Some(reply),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Internal {
                reason: "engine dropped the reply channel".into(),
            })),
        }
    }
}

struct Pending {
    req: Request,
    enqueued_ns: u64,
    tx: mpsc::Sender<Result<Response, ServeError>>,
}

struct QueueState {
    pending: VecDeque<Pending>,
    shutdown: bool,
}

struct Inner {
    ctx: ServeContext,
    cfg: ValidatedServeConfig,
    clock: Clock,
    queue: Mutex<QueueState>,
    ready: Condvar,
    cache: Mutex<ModelCache>,
    stats: Mutex<ServeStats>,
}

/// The in-process serving engine. See the module docs for the two
/// driving modes.
pub struct ServeEngine {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine").field("workers", &self.workers.len()).finish_non_exhaustive()
    }
}

impl ServeEngine {
    /// Starts a worker-pool engine on the system clock.
    pub fn start(ctx: ServeContext, cfg: ValidatedServeConfig) -> ServeEngine {
        ServeEngine::start_with_clock(ctx, cfg, Clock::system())
    }

    /// Starts a worker-pool engine on an injected clock (latency stamps
    /// and deadlines read it; worker scheduling stays OS-driven).
    pub fn start_with_clock(
        ctx: ServeContext,
        cfg: ValidatedServeConfig,
        clock: Clock,
    ) -> ServeEngine {
        let workers = cfg.workers;
        let inner = Arc::new(Inner::new(ctx, cfg, clock));
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        ServeEngine { inner, workers: handles }
    }

    /// Builds an engine with **no** worker threads: the caller drives
    /// processing via [`ServeEngine::tick`]. With a
    /// [`easytime_clock::ManualClock`] behind `clock`, admission,
    /// batching, and the latency distribution are fully deterministic.
    pub fn inline(ctx: ServeContext, cfg: ValidatedServeConfig, clock: Clock) -> ServeEngine {
        ServeEngine { inner: Arc::new(Inner::new(ctx, cfg, clock)), workers: Vec::new() }
    }

    /// Admission control + enqueue. Returns a [`Ticket`] for the reply,
    /// or a typed rejection ([`ServeError::Overloaded`] /
    /// [`ServeError::ShuttingDown`] / [`ServeError::InvalidRequest`]).
    pub fn submit(&self, req: Request) -> Result<Ticket, ServeError> {
        let mut sp = easytime_obs::span("serve.admit");
        sp.attr("kind", req.kind());
        validate_request(&req)?;
        let enqueued_ns = self.inner.clock.now_nanos();
        let (tx, rx) = mpsc::channel();
        let bound = self.inner.cfg.queue_bound;
        let overloaded = {
            let mut q = lock(&self.inner.queue);
            if q.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if q.pending.len() >= bound {
                Some(q.pending.len())
            } else {
                q.pending.push_back(Pending { req, enqueued_ns, tx });
                None
            }
        };
        if let Some(queued) = overloaded {
            lock(&self.inner.stats).shed += 1;
            easytime_obs::add("serve.shed", 1);
            return Err(ServeError::Overloaded { queued, bound });
        }
        lock(&self.inner.stats).submitted += 1;
        self.inner.ready.notify_one();
        Ok(Ticket { rx })
    }

    /// Submit + wait. Only meaningful on a worker-pool engine; calling
    /// this on an inline engine deadlocks (nothing ticks the queue).
    pub fn call(&self, req: Request) -> Result<Response, ServeError> {
        self.submit(req)?.wait()
    }

    /// Drains and processes one micro-batch (inline mode). Returns how
    /// many requests were taken off the queue this tick.
    pub fn tick(&self) -> usize {
        let batch = {
            let mut q = lock(&self.inner.queue);
            // lint: allow(lock-while-heavy) — moving the owned requests out of the queue is the critical section's purpose; the drain is bounded by batch_max
            drain_batch(&mut q.pending, self.inner.cfg.batch_max)
        };
        if batch.is_empty() {
            return 0;
        }
        let n = batch.len();
        process_batch(&self.inner, batch);
        n
    }

    /// Snapshot of the engine's counters and latency histogram.
    pub fn stats(&self) -> ServeStats {
        let mut stats = lock(&self.inner.stats).clone();
        let cache = lock(&self.inner.cache);
        stats.evictions = cache.evictions();
        stats.cached_models = cache.len() as u64;
        stats
    }

    /// Graceful shutdown: stop admitting, drain the queue, join workers.
    /// Dropping the engine does the same.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        {
            let mut q = lock(&self.inner.queue);
            q.shutdown = true;
        }
        self.inner.ready.notify_all();
        for h in self.workers.drain(..) {
            if h.join().is_err() {
                easytime_obs::add("serve.worker_panic", 1);
            }
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl Inner {
    fn new(ctx: ServeContext, cfg: ValidatedServeConfig, clock: Clock) -> Inner {
        let cache = ModelCache::new(cfg.cache_capacity);
        Inner {
            ctx,
            cfg,
            clock,
            queue: Mutex::new(QueueState { pending: VecDeque::new(), shutdown: false }),
            ready: Condvar::new(),
            cache: Mutex::new(cache),
            stats: Mutex::new(ServeStats::default()),
        }
    }
}

fn validate_request(req: &Request) -> Result<(), ServeError> {
    match req {
        Request::RecommendAndForecast { series, horizon, .. } => {
            if series.is_empty() {
                return Err(ServeError::InvalidRequest { reason: "series is empty".into() });
            }
            if *horizon == 0 {
                return Err(ServeError::InvalidRequest {
                    reason: "horizon must be at least 1".into(),
                });
            }
        }
        Request::Evaluate { series, .. } => {
            if series.is_empty() {
                return Err(ServeError::InvalidRequest { reason: "series is empty".into() });
            }
        }
        Request::Ask { question } => {
            if question.trim().is_empty() {
                return Err(ServeError::InvalidRequest { reason: "question is empty".into() });
            }
        }
    }
    Ok(())
}

fn drain_batch(pending: &mut VecDeque<Pending>, batch_max: usize) -> Vec<Pending> {
    let n = pending.len().min(batch_max);
    pending.drain(..n).collect()
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let batch = {
            let mut q = lock(&inner.queue);
            while q.pending.is_empty() && !q.shutdown {
                q = inner.ready.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
            if q.pending.is_empty() && q.shutdown {
                return;
            }
            // lint: allow(lock-while-heavy) — moving the owned requests out of the queue is the critical section's purpose; the drain is bounded by batch_max
            drain_batch(&mut q.pending, inner.cfg.batch_max)
        };
        process_batch(inner, batch);
    }
}

/// A forecast request mid-flight through a batch.
struct ForecastJob {
    series: TimeSeries,
    top_k: usize,
    horizon: usize,
    method: Option<ModelSpec>,
    key: u64,
    entry: Option<CacheEntry>,
    ranking: Option<Vec<Recommendation>>,
    enqueued_ns: u64,
    tx: mpsc::Sender<Result<Response, ServeError>>,
}

fn reply(
    inner: &Inner,
    tx: &mpsc::Sender<Result<Response, ServeError>>,
    enqueued_ns: u64,
    result: Result<Response, ServeError>,
) {
    let latency = inner.clock.now_nanos().saturating_sub(enqueued_ns);
    {
        let mut stats = lock(&inner.stats);
        // lint: allow(lock-while-heavy) — Histogram::record is a fixed-bucket increment, alloc-free; the report conflates it with a same-named test helper
        stats.latency.record(latency as f64);
        match &result {
            Ok(_) => stats.completed += 1,
            Err(e) if e.is_rejection() => {}
            Err(_) => stats.failed += 1,
        }
    }
    if tx.send(result).is_err() {
        // The caller dropped its ticket; nothing to deliver to.
        easytime_obs::add("serve.reply_dropped", 1);
    }
}

fn process_batch(inner: &Inner, batch: Vec<Pending>) {
    let mut bsp = easytime_obs::span("serve.batch");
    bsp.attr_u64("size", batch.len() as u64);
    let deadline_ns = (inner.cfg.deadline_ms * 1_000_000.0) as u64;
    let now = inner.clock.now_nanos();
    {
        let mut stats = lock(&inner.stats);
        stats.batches += 1;
        stats.batched_requests += batch.len() as u64;
    }

    let mut forecasts: Vec<ForecastJob> = Vec::new();
    for p in batch {
        let waited = now.saturating_sub(p.enqueued_ns);
        if waited > deadline_ns {
            lock(&inner.stats).expired += 1;
            easytime_obs::add("serve.expired", 1);
            reply(
                inner,
                &p.tx,
                p.enqueued_ns,
                Err(ServeError::DeadlineExceeded {
                    waited_ms: waited as f64 / 1_000_000.0,
                    deadline_ms: inner.cfg.deadline_ms,
                }),
            );
            continue;
        }
        let mut rsp = easytime_obs::span("serve.request");
        rsp.attr("kind", p.req.kind());
        match p.req {
            Request::RecommendAndForecast { series, top_k, horizon, method } => {
                let key = fingerprint(&series, method.as_ref(), inner.cfg.seed);
                let entry = lock(&inner.cache)
                    .take(key)
                    .filter(|e| e.covers_prefix_of(series.values()));
                forecasts.push(ForecastJob {
                    series,
                    top_k,
                    horizon,
                    method,
                    key,
                    entry,
                    ranking: None,
                    enqueued_ns: p.enqueued_ns,
                    tx: p.tx,
                });
            }
            Request::Evaluate { series, method } => {
                let result = evaluate(
                    series.name(),
                    &series,
                    &method,
                    &inner.ctx.eval,
                    &inner.ctx.metrics,
                )
                .map(|record| Response::Evaluate { record })
                .map_err(ServeError::Eval);
                reply(inner, &p.tx, p.enqueued_ns, result);
            }
            Request::Ask { question } => {
                let result = QaSession::new(inner.ctx.knowledge.clone())
                    .and_then(|mut session| session.ask(&question))
                    .map(|response| Response::Ask { response })
                    .map_err(ServeError::Qa);
                reply(inner, &p.tx, p.enqueued_ns, result);
            }
        }
    }

    // Coalesce the cold auto-method recommendations: one embedding stack,
    // one blocked matmul, regardless of how many tenants queued up.
    let cold_auto: Vec<usize> = forecasts
        .iter()
        .enumerate()
        .filter(|(_, j)| j.entry.is_none() && j.method.is_none())
        .map(|(i, _)| i)
        .collect();
    if !cold_auto.is_empty() {
        let series_refs: Vec<&TimeSeries> =
            cold_auto.iter().map(|&i| &forecasts[i].series).collect();
        let rankings = inner.ctx.recommender.recommend_batch(&series_refs);
        for (&i, ranking) in cold_auto.iter().zip(rankings) {
            forecasts[i].ranking = Some(ranking);
        }
    }

    for job in forecasts {
        let ForecastJob { series, top_k, horizon, method, key, entry, ranking, enqueued_ns, tx } =
            job;
        let result =
            serve_forecast(inner, &series, top_k, horizon, method, key, entry, ranking);
        reply(inner, &tx, enqueued_ns, result);
    }
}

/// The warm/cold forecast path for one request. `entry` is a validated
/// cache hit (already removed from the cache); `ranking` is the batch
/// recommendation for cold auto requests.
#[allow(clippy::too_many_arguments)]
fn serve_forecast(
    inner: &Inner,
    series: &TimeSeries,
    top_k: usize,
    horizon: usize,
    method: Option<ModelSpec>,
    key: u64,
    entry: Option<CacheEntry>,
    ranking: Option<Vec<Recommendation>>,
) -> Result<Response, ServeError> {
    let raw = series.values();

    // Warm path: scale the appended observations under the entry's frozen
    // transform and hand them to `update` (the PR-4 warm-start contract).
    if let Some(mut entry) = entry {
        let mut hsp = easytime_obs::span("serve.cache_hit");
        hsp.attr_u64("covered", entry.covered as u64);
        lock(&inner.stats).cache_hits += 1;
        easytime_obs::add("serve.cache_hits", 1);
        let appended = &raw[entry.covered..];
        let mut warmed = true;
        if !appended.is_empty() {
            let (shift, scale) = entry.frozen;
            let scaled: Vec<f64> = appended.iter().map(|v| (v - shift) / scale).collect();
            let carrier = series.with_values(scaled)?;
            warmed = entry.model.update(&carrier)?;
        }
        if warmed {
            entry.covered = raw.len();
            entry.last_value = raw[raw.len() - 1].to_bits();
            let forecast = forecast_inverse(&entry, horizon)?;
            let ranking = truncated(&entry.ranking, top_k);
            let chosen = entry.spec.name();
            lock(&inner.cache).insert(key, entry);
            return Ok(Response::RecommendAndForecast {
                ranking,
                chosen,
                forecast,
                cache_hit: true,
            });
        }
        // `update` declined (`Ok(false)` leaves the model unchanged):
        // rebuild cold, but keep the sticky ranking — no re-embedding.
        let sticky = entry.ranking;
        return fit_and_respond(inner, series, top_k, horizon, method, key, sticky, true);
    }

    lock(&inner.stats).cache_misses += 1;
    easytime_obs::add("serve.cache_misses", 1);
    let ranking = match (&method, ranking) {
        (Some(spec), _) => vec![Recommendation { method: spec.name(), score: 1.0, rank: 0 }],
        (None, Some(r)) => r,
        // A lone cold request outside any batch pre-pass (defensive).
        (None, None) => inner.ctx.recommender.recommend(series),
    };
    fit_and_respond(inner, series, top_k, horizon, method, key, ranking, false)
}

/// Cold path: freeze the scaler on the full history, fit the chosen
/// method in scaled space, forecast, inverse-transform, cache the model.
#[allow(clippy::too_many_arguments)]
fn fit_and_respond(
    inner: &Inner,
    series: &TimeSeries,
    top_k: usize,
    horizon: usize,
    method: Option<ModelSpec>,
    key: u64,
    ranking: Vec<Recommendation>,
    was_hit: bool,
) -> Result<Response, ServeError> {
    let spec = match method {
        Some(spec) => spec,
        None => {
            let best = ranking.first().ok_or_else(|| ServeError::Internal {
                reason: "recommender returned an empty ranking".into(),
            })?;
            ModelSpec::parse(&best.method)?
        }
    };

    let _fsp = easytime_obs::span("serve.forecast");
    let raw = series.values();
    let mut scaler = Scaler::new(inner.ctx.eval.scaler);
    // Seed via the streaming path where the kind supports it, falling
    // back to a plain fit (robust scaling needs full-order statistics).
    if !scaler.extend(raw)? {
        scaler.fit(raw)?;
    }
    let frozen = scaler
        .fitted_params()
        .ok_or_else(|| ServeError::Internal { reason: "scaler fitted no parameters".into() })?;
    let scaled = scaler.transform(raw)?;
    let train = series.with_values(scaled)?;
    let mut model = spec.build()?;
    model.fit(&train)?;

    let entry = CacheEntry {
        ranking,
        spec,
        model,
        frozen,
        covered: raw.len(),
        last_value: raw[raw.len() - 1].to_bits(),
    };
    let forecast = forecast_inverse(&entry, horizon)?;
    let ranking = truncated(&entry.ranking, top_k);
    let chosen = entry.spec.name();
    lock(&inner.cache).insert(key, entry);
    Ok(Response::RecommendAndForecast { ranking, chosen, forecast, cache_hit: was_hit })
}

fn forecast_inverse(entry: &CacheEntry, horizon: usize) -> Result<Vec<f64>, ServeError> {
    let (shift, scale) = entry.frozen;
    let mut forecast = entry.model.forecast(horizon)?;
    for v in &mut forecast {
        *v = *v * scale + shift;
    }
    Ok(forecast)
}

fn truncated(ranking: &[Recommendation], top_k: usize) -> Vec<Recommendation> {
    ranking.iter().take(top_k.max(1)).cloned().collect()
}
