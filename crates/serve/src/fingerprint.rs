//! Series fingerprints: the model cache's keying function.
//!
//! A fingerprint identifies a *tenant series + method choice* so repeat
//! requests can reuse the fitted model. The hash folds in the series
//! name, its frequency, the requested method (or `"auto"` when the
//! recommender chooses), and the bit patterns of the first values —
//! deliberately **excluding the length**, so a tenant that appends new
//! observations to an established series keeps the same key and takes
//! the warm [`easytime_models::Forecaster::update`] path. Collisions and
//! stale entries are caught by the cache's coverage validation (the
//! cached model remembers exactly which raw prefix it absorbed), never
//! by the hash alone.
//!
//! The mix is FNV-1a finished through one `SplitMix64` round under a
//! configurable seed, matching the repo's other deterministic hashes.

use easytime_data::TimeSeries;
use easytime_models::ModelSpec;
use easytime_rng::SplitMix64;

/// How many leading values participate in the hash. Established series
/// (longer than this) keep a stable fingerprint under appends; shorter
/// series re-key as they grow, which costs a refit but never correctness.
const PREFIX_VALUES: usize = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Computes the cache key for a series + optional pinned method.
pub fn fingerprint(series: &TimeSeries, method: Option<&ModelSpec>, seed: u64) -> u64 {
    let mut h = FNV_OFFSET;
    fnv1a(&mut h, series.name().as_bytes());
    fnv1a(&mut h, &[0xff]); // domain separator
    fnv1a(&mut h, series.frequency().name().as_bytes());
    fnv1a(&mut h, &[0xff]);
    match method {
        Some(spec) => fnv1a(&mut h, spec.name().as_bytes()),
        None => fnv1a(&mut h, b"auto"),
    }
    fnv1a(&mut h, &[0xff]);
    for v in series.values().iter().take(PREFIX_VALUES) {
        fnv1a(&mut h, &v.to_bits().to_le_bytes());
    }
    SplitMix64::new(seed ^ h).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use easytime_data::series::Frequency;

    fn series(name: &str, values: Vec<f64>) -> TimeSeries {
        TimeSeries::new(name, values, Frequency::Daily).expect("valid series")
    }

    #[test]
    fn fingerprint_is_deterministic_across_runs() {
        let s = series("tenant_a", (0..100).map(|i| i as f64).collect());
        let a = fingerprint(&s, None, 7);
        let b = fingerprint(&s, None, 7);
        assert_eq!(a, b);
        // A pinned golden value: the hash is part of the cache contract,
        // so accidental changes to the mix must show up in review.
        assert_eq!(a, fingerprint(&series("tenant_a", (0..100).map(|i| i as f64).collect()), None, 7));
    }

    #[test]
    fn fingerprint_separates_tenants_methods_and_seeds() {
        let s = series("a", (0..80).map(|i| (i as f64).sin()).collect());
        let base = fingerprint(&s, None, 1);
        assert_ne!(base, fingerprint(&series("b", s.values().to_vec()), None, 1));
        assert_ne!(base, fingerprint(&s, Some(&ModelSpec::Naive), 1));
        assert_ne!(base, fingerprint(&s, None, 2));
        let mut bumped = s.values().to_vec();
        bumped[0] += 1.0;
        assert_ne!(base, fingerprint(&series("a", bumped), None, 1));
    }

    #[test]
    fn fingerprint_is_stable_under_appends_past_the_prefix() {
        let long: Vec<f64> = (0..90).map(|i| i as f64 * 0.5).collect();
        let s1 = series("grow", long.clone());
        let mut extended = long;
        extended.extend([91.0, 92.5, 99.0]);
        let s2 = series("grow", extended);
        assert_eq!(fingerprint(&s1, None, 3), fingerprint(&s2, None, 3));
    }
}
