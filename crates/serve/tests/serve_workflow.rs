//! End-to-end serving semantics: cache warm/cold equivalence, eviction
//! order, admission control under saturating load, micro-batched
//! recommendations, and the evaluate/ask request kinds.

use easytime::{CorpusConfig, Domain, EasyTime, ModelSpec};
use easytime_automl::recommender::{Recommender, RecommenderConfig};
use easytime_clock::ManualClock;
use easytime_data::synthetic::{build_corpus, domain_spec, generate};
use easytime_data::TimeSeries;
use easytime_eval::{EvalConfig, MetricRegistry, Strategy, ValidatedEvalConfig};
use easytime_serve::{
    Request, Response, ServeConfig, ServeContext, ServeEngine, ServeError, ValidatedServeConfig,
};

fn small_recommender() -> Recommender {
    let corpus = build_corpus(&CorpusConfig {
        domains: vec![Domain::Nature, Domain::Stock],
        per_domain: 5,
        length: 160,
        seed: 9,
        ..CorpusConfig::default()
    })
    .expect("corpus builds");
    let config = RecommenderConfig {
        methods: vec![ModelSpec::Naive, ModelSpec::Drift, ModelSpec::Mean],
        strategy: Strategy::Fixed { horizon: 12 },
        ..RecommenderConfig::default()
    };
    Recommender::pretrain(&corpus, &config).expect("pretraining succeeds").0
}

fn eval_config(registry: &MetricRegistry) -> ValidatedEvalConfig {
    EvalConfig::builder()
        .method(ModelSpec::Naive)
        .strategy(Strategy::Fixed { horizon: 12 })
        .build(registry)
        .expect("eval config is valid")
}

fn context() -> ServeContext {
    let registry = MetricRegistry::standard();
    let eval = eval_config(&registry);
    ServeContext::new(small_recommender(), registry, easytime_db::Database::new(), eval)
}

fn serve_config() -> ValidatedServeConfig {
    ServeConfig::builder().build().expect("defaults valid")
}

fn tenant_series(name: &str, len: usize, seed: u64) -> TimeSeries {
    generate(name, &domain_spec(Domain::Electricity, 1, len), seed).expect("series generates")
}

fn forecast_of(resp: Response) -> (Vec<f64>, bool, String) {
    match resp {
        Response::RecommendAndForecast { forecast, cache_hit, chosen, .. } => {
            (forecast, cache_hit, chosen)
        }
        other => panic!("expected a forecast response, got {other:?}"),
    }
}

fn run_one(engine: &ServeEngine, req: Request) -> Result<Response, ServeError> {
    let ticket = engine.submit(req)?;
    while engine.tick() > 0 {}
    ticket.wait()
}

#[test]
fn warm_hits_match_cold_refits_within_tolerance() {
    let manual = ManualClock::new();
    let engine = ServeEngine::inline(context(), serve_config(), manual.clock());
    let fresh = ServeEngine::inline(context(), serve_config(), manual.clock());

    for spec in [ModelSpec::Naive, ModelSpec::Drift, ModelSpec::Mean] {
        let history = tenant_series("tenant", 240, 17);
        let full = tenant_series("tenant", 260, 17);
        let req = |series: TimeSeries| Request::RecommendAndForecast {
            series,
            top_k: 3,
            horizon: 12,
            method: Some(spec.clone()),
        };

        // Prime the cache on the short history, then request the grown
        // series: the engine must warm-start via `update`.
        let (_, cold_hit, _) =
            forecast_of(run_one(&engine, req(history)).expect("cold request serves"));
        assert!(!cold_hit);
        let (warm, warm_hit, _) =
            forecast_of(run_one(&engine, req(full.clone())).expect("warm request serves"));
        assert!(warm_hit, "{} should warm-start", spec.name());

        // A fresh engine refits from scratch on the same full series.
        let (cold, refit_hit, _) =
            forecast_of(run_one(&fresh, req(full)).expect("refit request serves"));
        assert!(!refit_hit);
        assert_eq!(warm.len(), cold.len());
        for (w, c) in warm.iter().zip(&cold) {
            assert!(
                (w - c).abs() <= 1e-9,
                "{}: warm {w} vs cold {c} differ past 1e-9",
                spec.name()
            );
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.cache_hits, 3);
    assert_eq!(stats.cache_misses, 3);
    assert!(stats.hit_rate() > 0.49 && stats.hit_rate() < 0.51);
}

#[test]
fn identical_resubmission_is_a_pure_hit_with_identical_forecast() {
    let manual = ManualClock::new();
    let engine = ServeEngine::inline(context(), serve_config(), manual.clock());
    let series = tenant_series("repeat", 200, 4);
    let req = || Request::RecommendAndForecast {
        series: series.clone(),
        top_k: 2,
        horizon: 8,
        method: None,
    };
    let (first, hit1, chosen1) = forecast_of(run_one(&engine, req()).expect("serves"));
    let (second, hit2, chosen2) = forecast_of(run_one(&engine, req()).expect("serves"));
    assert!(!hit1);
    assert!(hit2, "identical resubmission must hit the cache");
    assert_eq!(chosen1, chosen2, "the cached recommendation is sticky");
    assert_eq!(first, second, "pure hits are bit-identical");
}

#[test]
fn eviction_follows_lru_under_capacity_pressure() {
    let manual = ManualClock::new();
    let cfg = ServeConfig::builder().cache_capacity(2).build().expect("valid");
    let engine = ServeEngine::inline(context(), cfg, manual.clock());
    let req = |name: &str, seed: u64| Request::RecommendAndForecast {
        series: tenant_series(name, 180, seed),
        top_k: 1,
        horizon: 6,
        method: Some(ModelSpec::Naive),
    };

    // Fill: A, B. Insert C → A (least recently used) is evicted.
    for (name, seed) in [("a", 1), ("b", 2), ("c", 3)] {
        let (_, hit, _) = forecast_of(run_one(&engine, req(name, seed)).expect("serves"));
        assert!(!hit);
    }
    let stats = engine.stats();
    assert_eq!(stats.evictions, 1);
    assert_eq!(stats.cached_models, 2);

    // C and B are resident; A was evicted and refits cold.
    let (_, hit_c, _) = forecast_of(run_one(&engine, req("c", 3)).expect("serves"));
    assert!(hit_c, "most recent entry survives");
    let (_, hit_b, _) = forecast_of(run_one(&engine, req("b", 2)).expect("serves"));
    assert!(hit_b, "second entry survives");
    let (_, hit_a, _) = forecast_of(run_one(&engine, req("a", 1)).expect("serves"));
    assert!(!hit_a, "evicted entry refits cold");
}

#[test]
fn overload_sheds_with_typed_errors_and_deadlines_expire() {
    let manual = ManualClock::new();
    let cfg = ServeConfig::builder()
        .queue_bound(4)
        .batch_max(4)
        .deadline_ms(10.0)
        .build()
        .expect("valid");
    let engine = ServeEngine::inline(context(), cfg, manual.clock());
    let req = |i: u64| Request::RecommendAndForecast {
        series: tenant_series("flood", 160, i),
        top_k: 1,
        horizon: 4,
        method: Some(ModelSpec::Naive),
    };

    // Flood far past the queue bound before any tick runs.
    let mut tickets = Vec::new();
    let mut shed = 0usize;
    for i in 0..10 {
        match engine.submit(req(i)) {
            Ok(t) => tickets.push(t),
            Err(err @ ServeError::Overloaded { .. }) => {
                assert!(err.is_rejection(), "shedding is a rejection, not a failure");
                let ServeError::Overloaded { queued, bound } = err else { unreachable!() };
                assert_eq!(bound, 4);
                assert!(queued >= bound);
                shed += 1;
            }
            Err(other) => panic!("expected Overloaded, got {other}"),
        }
    }
    assert_eq!(shed, 6, "everything past the bound is shed");
    assert_eq!(engine.stats().shed, 6);

    // Let the queued requests out-wait their 10 ms deadline, then drain:
    // they must be dropped with DeadlineExceeded, not processed.
    manual.advance_millis(50);
    while engine.tick() > 0 {}
    let mut expired = 0usize;
    for t in tickets {
        match t.wait() {
            Err(ServeError::DeadlineExceeded { waited_ms, deadline_ms }) => {
                assert!(waited_ms >= deadline_ms);
                expired += 1;
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }
    assert_eq!(expired, 4);
    let stats = engine.stats();
    assert_eq!(stats.expired, 4);
    assert_eq!(stats.completed, 0);
    assert_eq!(stats.cache_misses, 0, "expired requests never reach the model");
}

#[test]
fn batched_auto_recommendations_match_solo_requests() {
    let manual = ManualClock::new();
    let cfg = ServeConfig::builder().batch_max(8).build().expect("valid");
    let batched = ServeEngine::inline(context(), cfg, manual.clock());
    let solo = ServeEngine::inline(context(), serve_config(), manual.clock());

    let req = |i: u64| Request::RecommendAndForecast {
        series: tenant_series(&format!("t{i}"), 190 + (i as usize) * 7, 40 + i),
        top_k: 3,
        horizon: 6,
        method: None,
    };

    // Four cold auto requests in one tick share a single batched
    // recommendation; results must equal the one-at-a-time path.
    let tickets: Vec<_> =
        (0..4).map(|i| batched.submit(req(i)).expect("admitted")).collect();
    for ticket in &tickets {
        assert!(ticket.try_wait().is_none(), "no reply before the engine ticks");
    }
    assert_eq!(batched.tick(), 4, "one tick drains the whole batch");
    for (i, ticket) in tickets.into_iter().enumerate() {
        let got = ticket.wait().expect("batched request serves");
        let want = run_one(&solo, req(i as u64)).expect("solo request serves");
        let (bf, _, b_chosen) = forecast_of(got);
        let (sf, _, s_chosen) = forecast_of(want);
        assert_eq!(b_chosen, s_chosen, "request {i}: batched choice differs");
        assert_eq!(bf, sf, "request {i}: batched forecast differs");
    }
    assert_eq!(batched.stats().batches, 1);
}

#[test]
fn evaluate_and_ask_serve_through_the_worker_pool() {
    let platform = EasyTime::with_benchmark(&CorpusConfig {
        domains: vec![Domain::Nature],
        per_domain: 3,
        length: 160,
        seed: 21,
        ..CorpusConfig::default()
    })
    .expect("platform builds");
    platform
        .one_click_json(
            r#"{"methods": ["naive", "drift"],
                "strategy": {"type": "fixed", "horizon": 12},
                "metrics": ["smape", "mae"]}"#,
        )
        .expect("one-click seeds the knowledge base");
    let eval = eval_config(platform.metrics());
    let ctx = ServeContext::from_platform(&platform, small_recommender(), eval);
    let engine = ServeEngine::start(ctx, serve_config());

    let series = tenant_series("fresh_eval", 200, 77);
    match engine
        .call(Request::Evaluate { series, method: ModelSpec::Drift })
        .expect("evaluate serves")
    {
        Response::Evaluate { record } => {
            assert_eq!(record.method, "drift");
            assert!(record.is_ok(), "evaluation completes: {:?}", record.error);
            assert!(record.score("smape").is_finite());
        }
        other => panic!("expected Evaluate response, got {other:?}"),
    }

    match engine
        .call(Request::Ask { question: "which method is best on average?".into() })
        .expect("ask serves")
    {
        Response::Ask { response } => {
            assert!(!response.answer.is_empty());
        }
        other => panic!("expected Ask response, got {other:?}"),
    }

    // Typed validation failures come back before admission.
    let empty = Request::Ask { question: "   ".into() };
    assert!(matches!(engine.call(empty), Err(ServeError::InvalidRequest { .. })));
    engine.shutdown();
}

#[test]
fn fingerprints_key_tenants_and_survive_appends() {
    let seed = 0xf1f0;
    let short = tenant_series("tenant", 200, 3);
    let grown = tenant_series("tenant", 230, 3);
    let other = tenant_series("other", 200, 3);
    let auto = easytime_serve::fingerprint(&short, None, seed);
    assert_eq!(
        auto,
        easytime_serve::fingerprint(&grown, None, seed),
        "appending past the fingerprint prefix must keep the cache key"
    );
    assert_ne!(auto, easytime_serve::fingerprint(&other, None, seed), "tenants separate");
    assert_ne!(
        auto,
        easytime_serve::fingerprint(&short, Some(&ModelSpec::Naive), seed),
        "a pinned method gets its own cache line"
    );
    assert_ne!(auto, easytime_serve::fingerprint(&short, None, seed + 1), "seeds separate");
}

#[test]
fn serving_spans_are_recorded() {
    easytime_obs::set_enabled(true);
    let _ = easytime_obs::drain();
    let manual = ManualClock::new();
    let engine = ServeEngine::inline(context(), serve_config(), manual.clock());
    let series = tenant_series("traced", 180, 5);
    run_one(
        &engine,
        Request::RecommendAndForecast { series, top_k: 1, horizon: 4, method: None },
    )
    .expect("serves");
    let trace = easytime_obs::drain();
    easytime_obs::set_enabled(false);
    let stages = trace.stages();
    for span in ["serve.admit", "serve.batch", "serve.request", "serve.forecast"] {
        assert!(stages.contains_key(span), "missing span {span}; have {:?}", stages.keys());
    }
}
