#!/usr/bin/env bash
# Fail-fast CI gate: build, test, lint. Everything runs offline — the
# workspace has no external dependencies (enforced by easytime-lint R2).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== build (release, all targets) ==="
cargo build --release --all-targets

echo "=== test ==="
cargo test -q --release

echo "=== lint ==="
# Machine-readable report for CI artifacts; the committed baseline
# (empty: the workspace lints clean) means any *new* violation fails the
# build. Regenerate deliberately with:
#   cargo run -p easytime-lint -- --write-baseline scripts/lint-baseline.txt
mkdir -p results
cargo run --release -q -p easytime-lint -- \
  --format json \
  --baseline scripts/lint-baseline.txt \
  --out results/lint.json
cat results/lint.json

echo "=== rolling throughput regression gate ==="
# Times the rolling sweep under both refit policies, writes
# results/BENCH_rolling.json, and exits nonzero if warm-start is slower
# than per-window refit on any warm-startable method.
EASYTIME_BENCH_FAST=1 cargo run --release -q -p easytime-bench --bin exp_rolling_throughput

echo "=== compute-kernel regression gate ==="
# Times the blocked kernels against naive textbook references at ridge-fit
# shapes, writes results/BENCH_kernels.json, and exits nonzero if any
# blocked kernel is slower than its naive reference.
EASYTIME_BENCH_FAST=1 cargo run --release -q -p easytime-bench --bin exp_kernels

echo "=== traced smoke evaluation ==="
# obs_smoke runs a small traced evaluate_corpus, writes
# results/{trace.jsonl,metrics.json}, and exits nonzero if the metrics
# schema drifted (missing stage keys, wrong schema_version, low span
# coverage).
EASYTIME_TRACE=1 EASYTIME_BENCH_FAST=1 cargo run --release -q -p easytime-bench --bin obs_smoke

echo "ci: OK"
