#!/usr/bin/env bash
# Fail-fast CI gate: build, test, lint. Everything runs offline — the
# workspace has no external dependencies (enforced by easytime-lint R2).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== build (release, all targets) ==="
cargo build --release --all-targets

echo "=== test ==="
cargo test -q --release

echo "=== lint ==="
cargo run --release -q -p easytime-lint

echo "ci: OK"
