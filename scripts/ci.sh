#!/usr/bin/env bash
# Fail-fast CI gate: build, test, lint. Everything runs offline — the
# workspace has no external dependencies (enforced by easytime-lint R2).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== build (release, all targets) ==="
cargo build --release --all-targets

echo "=== test ==="
cargo test -q --release

echo "=== lint ==="
# Machine-readable report for CI artifacts; the committed baseline
# (empty: the workspace lints clean) means any *new* violation fails the
# build. Regenerate deliberately with:
#   cargo run -p easytime-lint -- --write-baseline scripts/lint-baseline.txt
mkdir -p results
cargo run --release -q -p easytime-lint -- \
  --format json \
  --baseline scripts/lint-baseline.txt \
  --out results/lint.json
cat results/lint.json

echo "=== semantic lint (workspace model: R14-R17, effects: R18-R20) ==="
# The semantic pass gates the public-API snapshot (R14), crate layering
# (R15), lock discipline (R16), dead exports (R17), and the effect rules
# (R18 hot-path-alloc, R19 swallowed-result, R20 lock-while-heavy). The
# committed API baseline is the reviewed pub surface; regenerate
# deliberately with:
#   cargo run -p easytime-lint -- --write-api-baseline scripts/api-baseline.txt
#
# Self-check: the committed baseline must be canonically ordered
# (byte-sorted, duplicate-free) so diffs stay reviewable.
grep -v '^#' scripts/api-baseline.txt | LC_ALL=C sort -c -u
cargo run --release -q -p easytime-lint -- \
  --format json \
  --baseline scripts/lint-baseline.txt \
  --api-baseline scripts/api-baseline.txt \
  --semantic-out results/lint_semantic.json \
  --effects-out results/lint_effects.json \
  --out results/lint_full.json
# Determinism: a second run must produce byte-identical semantic stats
# and a byte-identical effect table.
cargo run --release -q -p easytime-lint -- \
  --format json \
  --baseline scripts/lint-baseline.txt \
  --api-baseline scripts/api-baseline.txt \
  --semantic-out results/lint_semantic.2.json \
  --effects-out results/lint_effects.2.json \
  --out /dev/null
cmp results/lint_semantic.json results/lint_semantic.2.json
cmp results/lint_effects.json results/lint_effects.2.json
rm -f results/lint_semantic.2.json results/lint_effects.2.json
cat results/lint_semantic.json

echo "=== linter throughput regression gate ==="
# Times discovery, phase 1, the semantic+effect pass, and effect-table
# serialization over the real tree; writes results/BENCH_lint.json and
# exits nonzero if the whole run blows the wall-clock budget.
EASYTIME_BENCH_FAST=1 cargo run --release -q -p easytime-lint --bin exp_lint

echo "=== rolling throughput regression gate ==="
# Times the rolling sweep under both refit policies, writes
# results/BENCH_rolling.json, and exits nonzero if warm-start is slower
# than per-window refit on any warm-startable method.
EASYTIME_BENCH_FAST=1 cargo run --release -q -p easytime-bench --bin exp_rolling_throughput

echo "=== compute-kernel regression gate ==="
# Times the blocked kernels against naive textbook references at ridge-fit
# shapes, writes results/BENCH_kernels.json, and exits nonzero if any
# blocked kernel is slower than its naive reference.
EASYTIME_BENCH_FAST=1 cargo run --release -q -p easytime-bench --bin exp_kernels

echo "=== serving regression gate ==="
# Load-generates against the serving engine: cold refits vs cache-hit
# warm requests (gate: warm QPS >= 2x cold), plus an overload segment
# that must shed with typed errors only. Writes results/BENCH_serving.json.
EASYTIME_BENCH_FAST=1 cargo run --release -q -p easytime-bench --bin exp_serving
# Determinism: the ManualClock-driven load script must produce a
# byte-identical latency distribution and counter set on a second run.
EASYTIME_BENCH_FAST=1 cargo run --release -q -p easytime-bench --bin exp_serving -- \
  --deterministic --out results/serving_det_a.json
EASYTIME_BENCH_FAST=1 cargo run --release -q -p easytime-bench --bin exp_serving -- \
  --deterministic --out results/serving_det_b.json
cmp results/serving_det_a.json results/serving_det_b.json
rm -f results/serving_det_a.json results/serving_det_b.json

echo "=== query-planner regression gate ==="
# Builds a seeded knowledge base and times the cost-based planner against
# the full-scan oracle on point/range/join/group/ordered-limit queries.
# Checks bit-identical results, byte-stable explains, and the expected
# plan shapes (index seeks, index probe, sort elision), then gates the
# speedups. Writes results/BENCH_db.json.
EASYTIME_BENCH_FAST=1 cargo run --release -q -p easytime-bench --bin exp_db

echo "=== traced smoke evaluation ==="
# obs_smoke runs a small traced evaluate_corpus, writes
# results/{trace.jsonl,metrics.json,PROFILE.json,profile.txt}, and exits
# nonzero if the metrics or profile schema drifted (missing stage keys,
# wrong schema_version, low span coverage, broken self-time partition).
EASYTIME_TRACE=1 EASYTIME_BENCH_FAST=1 cargo run --release -q -p easytime-bench --bin obs_smoke

echo "=== profile determinism gate ==="
# Two identical traced sweeps under the never-advancing manual clock must
# render byte-identical PROFILE.json + profile.txt (allocation counting
# on), and the rendered profile must be invariant to the worker-thread
# count (allocation counting off — per-thread warmup allocations land on
# different spans by design).
rm -rf results/profile_ci
EASYTIME_BENCH_FAST=1 cargo run --release -q -p easytime-bench --bin exp_profile -- \
  --deterministic --threads 1 --out-dir results/profile_ci/a
EASYTIME_BENCH_FAST=1 cargo run --release -q -p easytime-bench --bin exp_profile -- \
  --deterministic --threads 1 --out-dir results/profile_ci/b
cmp results/profile_ci/a/PROFILE.json results/profile_ci/b/PROFILE.json
cmp results/profile_ci/a/profile.txt results/profile_ci/b/profile.txt
for t in 3 8; do
  EASYTIME_PROF_ALLOC=0 EASYTIME_BENCH_FAST=1 cargo run --release -q -p easytime-bench --bin exp_profile -- \
    --deterministic --threads "$t" --out-dir "results/profile_ci/t$t"
done
EASYTIME_PROF_ALLOC=0 EASYTIME_BENCH_FAST=1 cargo run --release -q -p easytime-bench --bin exp_profile -- \
  --deterministic --threads 1 --out-dir results/profile_ci/t1
cmp results/profile_ci/t1/PROFILE.json results/profile_ci/t3/PROFILE.json
cmp results/profile_ci/t1/PROFILE.json results/profile_ci/t8/PROFILE.json
cmp results/profile_ci/t1/profile.txt results/profile_ci/t3/profile.txt
cmp results/profile_ci/t1/profile.txt results/profile_ci/t8/profile.txt
rm -rf results/profile_ci

echo "=== perf trajectory + regression gate ==="
# Real-clock profiled sweep into results/, then compare every numeric
# series in PROFILE.json + BENCH_*.json against the committed baseline.
# Regenerate deliberately after an intentional perf change with:
#   cargo run --release -p easytime-bench --bin perf_report -- --write-perf-baseline
EASYTIME_BENCH_FAST=1 cargo run --release -q -p easytime-bench --bin exp_profile
EASYTIME_BENCH_FAST=1 cargo run --release -q -p easytime-bench --bin perf_report
# Self-test: an absurd injected baseline must make the gate fail; a gate
# that cannot fail is not a gate.
if cargo run --release -q -p easytime-bench --bin perf_report -- \
  --inject kernels.kernels.0.speedup=1000000000 --no-trajectory >/dev/null 2>&1; then
  echo "perf_report failed to catch an injected regression" >&2
  exit 1
fi

echo "ci: OK"
