#!/usr/bin/env bash
# Regenerates every experiment in EXPERIMENTS.md into results/.
set -euo pipefail
cd "$(dirname "$0")/.."

# Gate the experiment run on a clean build/test/lint pass.
scripts/ci.sh

mkdir -p results
cargo build --release -p easytime-bench --bins

run() {
    local name="$1"; shift
    echo "=== $name ==="
    "./target/release/$name" "$@" | tee "results/$name${2:+_$2}.txt"
}

run exp_leaderboard --per-domain 4 --length 300
run exp_ensemble --per-domain 6 --length 280 --k 3
run exp_recommend --per-domain 6 --length 280
run exp_qa --per-domain 3
run exp_throughput --length 300
run exp_multivariate --n 8
./target/release/exp_ablation all | tee results/exp_ablation.txt
